//! A sharded cache front-end serving skewed (Zipfian) traffic.
//!
//! Models the serving tier of a production system: requests arrive in
//! batches of mixed GETs with occasional refills/invalidations, keys follow
//! the YCSB Zipfian(0.99) popularity curve, and the cache is a
//! [`ShardedMap`] over independent ASCYLIB structures. Sharded deployments
//! serve their GET batches through [`ShardedMap::multi_get`], which groups
//! the batch by shard before dispatch.
//!
//! Two comparisons against a single-instance deployment under the identical
//! request stream show *when* sharding pays:
//!
//! * **Harris list shards** — the structure's cost grows with its size, so
//!   splitting one list of `N` into `S` lists of `N/S` cuts every parse
//!   phase by ~`S×`. This wins even on a single core.
//! * **CLHT shards** — the structure is already O(1); sharding splits the
//!   coherence domain, which pays once multiple cores contend (on a single
//!   core only the routing overhead is visible).
//!
//! The per-shard histogram at the end shows the hash router spreading the
//! Zipfian head: the per-key load is extremely skewed, the per-shard load is
//! not.
//!
//! Run with: `cargo run --release --example sharded_cache`

use std::sync::Arc;
use std::time::Instant;

use ascylib::api::ConcurrentMap;
use ascylib::hashtable::ClhtLb;
use ascylib::list::HarrisList;
use ascylib_harness::dist::{KeyDist, KeySampler};
use ascylib_harness::report::histogram;
use ascylib_shard::ShardedMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 8;
const BATCH: usize = 16;

/// 95% batched GETs, 5% refill/invalidate pairs, keys ~ zipf(0.99);
/// `get_batch` is the deployment's way of answering a GET batch. Returns
/// Mops/s.
fn drive<M: ConcurrentMap + 'static>(
    name: &str,
    map: &Arc<M>,
    get_batch: &(impl Fn(&M, &[u64]) + Sync),
    threads: usize,
    key_range: u64,
    batches_per_thread: usize,
) -> f64 {
    let sampler = KeySampler::new(KeyDist::Zipfian { theta: 0.99 }, key_range);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let map = Arc::clone(map);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xCAC4E ^ ((t + 1) * 0x9E37_79B9));
                let mut keys = [0u64; BATCH];
                for _ in 0..batches_per_thread {
                    for slot in keys.iter_mut() {
                        *slot = sampler.sample(&mut rng);
                    }
                    if rng.random_range(0..100u32) < 95 {
                        get_batch(&map, &keys);
                    } else {
                        for &k in &keys[..BATCH / 2] {
                            map.insert(k, k ^ 0xDEAD_BEEF);
                        }
                        for &k in &keys[BATCH / 2..] {
                            map.remove(k);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let total_ops = (threads * batches_per_thread * BATCH) as f64;
    let mops = total_ops / elapsed.as_secs_f64() / 1e6;
    println!("{name:>14}: {mops:>7.2} Mops/s");
    mops
}

/// GET batch against a single instance: a plain loop of searches.
fn serial_gets<M: ConcurrentMap>(map: &M, keys: &[u64]) {
    for &k in keys {
        let _ = map.search(k);
    }
}

/// GET batch against a sharded deployment: grouped dispatch, answers in
/// request order.
fn batched_gets<M: ConcurrentMap>(map: &ShardedMap<M>, keys: &[u64]) {
    let answers = map.multi_get(keys);
    debug_assert_eq!(answers.len(), keys.len());
}

fn warm(map: &dyn ConcurrentMap, items: u64) {
    for k in 1..=items {
        map.insert(k, k ^ 0xDEAD_BEEF);
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    println!("Sharded cache demo — zipf(0.99), batches of {BATCH}, {threads} thread(s)\n");

    // Tier 1: Harris-list shards. One list of 2048 vs 8 lists of ~256 —
    // every GET's traversal shrinks ~8x, so sharding wins on any core count.
    let list_items = 2_048u64;
    let list_batches = 2_000usize;
    println!("memtable tier (lock-free Harris lists, {list_items} resident keys):");
    let single_list = Arc::new(HarrisList::new());
    warm(&*single_list, list_items);
    let single =
        drive("single list", &single_list, &serial_gets, threads, 2 * list_items, list_batches);
    let sharded_list = Arc::new(ShardedMap::new(SHARDS, |_| HarrisList::new()));
    warm(&*sharded_list, list_items);
    let sharded =
        drive("sharded x8", &sharded_list, &batched_gets, threads, 2 * list_items, list_batches);
    println!("{:>14}  {:.2}x\n", "speedup:", sharded / single.max(f64::MIN_POSITIVE));

    // Tier 2: CLHT shards. O(1) either way — sharding here buys a split
    // coherence domain (visible with >1 core) and per-shard observability.
    let ht_items = 16_384u64;
    let ht_batches = 8_000usize;
    println!("cache tier (CLHT, {ht_items} resident keys):");
    let single_ht = Arc::new(ClhtLb::with_capacity(2 * ht_items as usize));
    warm(&*single_ht, ht_items);
    let single =
        drive("single clht", &single_ht, &serial_gets, threads, 2 * ht_items, ht_batches);
    let sharded_ht = Arc::new(ShardedMap::new(SHARDS, |_| {
        ClhtLb::with_capacity(2 * ht_items as usize / SHARDS)
    }));
    warm(&*sharded_ht, ht_items);
    let sharded =
        drive("sharded x8", &sharded_ht, &batched_gets, threads, 2 * ht_items, ht_batches);
    println!(
        "{:>14}  {:.2}x  (routing overhead on 1 core; the split coherence domain pays with more)\n",
        "speedup:",
        sharded / single.max(f64::MIN_POSITIVE)
    );

    // Where did the skewed traffic land? The head of the Zipfian (keys 1, 2,
    // 3, ...) is hashed apart, so per-shard load stays balanced even though
    // per-key load is extremely skewed.
    let entries: Vec<(String, f64)> = sharded_ht
        .shard_stats()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (format!("shard-{i} (hit {:>4.1}%)", 100.0 * s.hit_rate()), s.operations() as f64)
        })
        .collect();
    print!("{}", histogram("requests per shard under zipf(0.99)", &entries, 40));

    let total = sharded_ht.total_stats();
    println!(
        "\ntotals: {} ops, {} resident entries across {} shards (sizes {:?})",
        total.operations(),
        sharded_ht.size(),
        sharded_ht.shard_count(),
        sharded_ht.shard_sizes(),
    );
}
