//! Quickstart: create a CLHT hash table, use it from several threads, and
//! print throughput plus the coherence-traffic instrumentation.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use ascylib::api::ConcurrentMap;
use ascylib::hashtable::ClhtLb;
use ascylib_harness::{run_benchmark, WorkloadBuilder};

fn main() {
    // 1. Basic single-threaded usage of the ConcurrentMap interface.
    let map = ClhtLb::with_capacity(1024);
    assert!(map.insert(1, 100));
    assert!(map.insert(2, 200));
    assert_eq!(map.search(1), Some(100));
    assert_eq!(map.remove(2), Some(200));
    println!("single-threaded: size after ops = {}", map.size());

    // 2. Shared usage across threads: every structure in ASCYLIB-RS is a
    //    `ConcurrentMap`, so it can be dropped behind an `Arc` and hammered
    //    from as many threads as you like.
    let shared: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(4096));
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    let mut handles = Vec::new();
    for t in 0..threads as u64 {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            for i in 0..50_000u64 {
                let key = 1 + (i * 31 + t * 7919) % 4096;
                match i % 10 {
                    0 => {
                        shared.insert(key, i);
                    }
                    1 => {
                        shared.remove(key);
                    }
                    _ => {
                        shared.search(key);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!("concurrent: final size = {} (threads = {threads})", shared.size());

    // 3. The harness runs a paper-style workload (keys in [1, 2N], a given
    //    update percentage) and reports throughput, latencies and the
    //    coherence-traffic estimate.
    let workload = WorkloadBuilder::new()
        .initial_size(4096)
        .update_percent(10)
        .threads(threads)
        .duration_ms(200)
        .build();
    let result = run_benchmark(Arc::new(ClhtLb::with_capacity(8192)), workload);
    println!(
        "harness: {:.2} Mops/s on {} threads, {:.2} cache-line transfers/op, search p50 = {} ns",
        result.mops, threads, result.transfers_per_op(), result.search_latency.p50
    );
}
