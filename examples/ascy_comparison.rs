//! Demonstrates the ASCY patterns end to end: runs the original and the
//! ASCY-re-engineered variant of two algorithms side by side and prints the
//! throughput and coherence-traffic difference, plus the gap to the
//! asynchronized upper bound (the paper's headline claims: re-engineered
//! algorithms gain up to ~30%, the best CSDSs are within ~10% of async).
//!
//! Run with: `cargo run --release --example ascy_comparison`

use std::sync::Arc;

use ascylib::api::ConcurrentMap;
use ascylib::list::{AsyncList, HarrisList, HarrisOptList};
use ascylib::skiplist::{AsyncSkipList, FraserOptSkipList, FraserSkipList};
use ascylib_harness::{run_benchmark, WorkloadBuilder};

fn measure(map: Arc<dyn ConcurrentMap>, size: usize, updates: u32, threads: usize) -> (f64, f64) {
    let w = WorkloadBuilder::new()
        .initial_size(size)
        .update_percent(updates)
        .threads(threads)
        .duration_ms(250)
        .build();
    let r = run_benchmark(map, w);
    (r.mops, r.transfers_per_op())
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);

    println!("ASCY1/2 on Harris's linked list (1024 elements, 5% updates, {threads} threads)");
    let (async_mops, _) = measure(Arc::new(AsyncList::new()), 1024, 5, threads);
    let (harris, harris_x) = measure(Arc::new(HarrisList::new()), 1024, 5, threads);
    let (opt, opt_x) = measure(Arc::new(HarrisOptList::new()), 1024, 5, threads);
    println!("  async      : {async_mops:6.2} Mops/s (upper bound)");
    println!("  harris     : {harris:6.2} Mops/s  {harris_x:5.2} transfers/op");
    println!(
        "  harris-opt : {opt:6.2} Mops/s  {opt_x:5.2} transfers/op  ({:+.1}% vs harris, {:.0}% of async)",
        (opt / harris - 1.0) * 100.0,
        opt / async_mops * 100.0
    );

    println!();
    println!("ASCY1/2 on Fraser's skip list (1024 elements, 20% updates, {threads} threads)");
    let (async_mops, _) = measure(Arc::new(AsyncSkipList::new()), 1024, 20, threads);
    let (fraser, fraser_x) = measure(Arc::new(FraserSkipList::new()), 1024, 20, threads);
    let (opt, opt_x) = measure(Arc::new(FraserOptSkipList::new()), 1024, 20, threads);
    println!("  async      : {async_mops:6.2} Mops/s (upper bound)");
    println!("  fraser     : {fraser:6.2} Mops/s  {fraser_x:5.2} transfers/op");
    println!(
        "  fraser-opt : {opt:6.2} Mops/s  {opt_x:5.2} transfers/op  ({:+.1}% vs fraser, {:.0}% of async)",
        (opt / fraser - 1.0) * 100.0,
        opt / async_mops * 100.0
    );
}
