//! A RocksDB-style memtable built on a concurrent ordered map.
//!
//! The paper's introduction points out that skip lists are the backbone of
//! LSM key/value stores such as RocksDB: writers insert new versions into a
//! sorted in-memory table, readers do point lookups *and short range
//! iterations* (RocksDB's `Seek` + `Next`), and a flusher periodically
//! drains the table in key order into an SSTable. The range half of that
//! pattern is exactly what the `OrderedMap` layer provides:
//!
//! * readers issue `scan(key, 16)` iterator reads alongside point `search`es;
//! * the flusher walks the table with a `scan` cursor and drains the keys it
//!   returns — key-ordered, like a real SSTable write — instead of probing
//!   the whole key space for resident keys.
//!
//! Runs the same mix on the ASCY-compliant `fraser-opt` skip list, the
//! lock-based `herlihy` skip list, and BST-TK as an ordered-index
//! alternative.
//!
//! Run with: `cargo run --release --example memtable`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ascylib::api::ConcurrentMap;
use ascylib::bst::BstTk;
use ascylib::ordered::OrderedMap;
use ascylib::skiplist::{FraserOptSkipList, HerlihySkipList};

const KEYSPACE: u64 = 64 * 1024;
const OPS_PER_THREAD: u64 = 100_000;
const FLUSH_THRESHOLD: usize = 16 * 1024;
const FLUSH_CHUNK: usize = 256;
const SCAN_LEN: usize = 16;

fn run_memtable(name: &str, table: Arc<dyn OrderedMap>, threads: usize) {
    let flushes = Arc::new(AtomicU64::new(0));
    let flushed_keys = Arc::new(AtomicU64::new(0));
    let scanned_keys = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads as u64 {
        let table = Arc::clone(&table);
        let flushes = Arc::clone(&flushes);
        let flushed_keys = Arc::clone(&flushed_keys);
        let scanned_keys = Arc::clone(&scanned_keys);
        handles.push(std::thread::spawn(move || {
            let mut state = (t + 1) * 0xA24B_AED4;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            // The flusher's cursor walks the key space in order and wraps.
            let mut flush_cursor = 1u64;
            for i in 0..OPS_PER_THREAD {
                let key = 1 + rng() % KEYSPACE;
                match rng() % 100 {
                    // 50% writes: insert a new version (value = sequence no).
                    0..=49 => {
                        if !table.insert(key, i) {
                            // Key already present: emulate an overwrite by
                            // remove + insert (the CSDS interface is a set).
                            table.remove(key);
                            table.insert(key, i);
                        }
                    }
                    // 25% point lookups.
                    50..=74 => {
                        table.search(key);
                    }
                    // 15% iterator reads: Seek(key) + up to 16 Next()s.
                    75..=89 => {
                        let got = table.scan(key, SCAN_LEN);
                        scanned_keys.fetch_add(got.len() as u64, Ordering::Relaxed);
                    }
                    // 10% deletes (tombstones applied immediately).
                    _ => {
                        table.remove(key);
                    }
                }
                // Thread 0 plays the flusher: when the memtable grows past
                // the threshold, drain a chunk *in key order* (simulating a
                // flush to an SSTable) by iterating the table itself.
                if t == 0 && i % 4096 == 0 && table.size() > FLUSH_THRESHOLD {
                    let mut drained = 0usize;
                    while drained < FLUSH_THRESHOLD / 2 {
                        let batch = table.scan(flush_cursor, FLUSH_CHUNK);
                        match batch.last() {
                            Some(&(last_key, _)) => {
                                for &(k, _) in &batch {
                                    if table.remove(k).is_some() {
                                        drained += 1;
                                    }
                                }
                                flush_cursor = last_key + 1;
                            }
                            // Cursor ran off the top of the table: wrap.
                            None => {
                                if flush_cursor == 1 {
                                    break; // table momentarily empty
                                }
                                flush_cursor = 1;
                            }
                        }
                    }
                    flushed_keys.fetch_add(drained as u64, Ordering::Relaxed);
                    flushes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let total = threads as u64 * OPS_PER_THREAD;
    println!(
        "{name:>12}: {:>7.2} Mops/s  final size {:>6}  flushes {:>3} ({:>6} keys drained in order)  {:>8} keys iterated  ({threads} threads)",
        total as f64 / elapsed.as_secs_f64() / 1e6,
        table.size(),
        flushes.load(Ordering::Relaxed),
        flushed_keys.load(Ordering::Relaxed),
        scanned_keys.load(Ordering::Relaxed),
    );
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    println!(
        "RocksDB-style memtable workload (50% write / 25% read / 15% iterate / 10% delete + ordered flusher)"
    );
    run_memtable("fraser-opt", Arc::new(FraserOptSkipList::new()), threads);
    run_memtable("herlihy", Arc::new(HerlihySkipList::new()), threads);
    run_memtable("bst-tk", Arc::new(BstTk::new()), threads);

    // One explicit range query to close the loop: everything currently in
    // the fraser-opt table between two keys, in order.
    let table = FraserOptSkipList::new();
    for k in [10u64, 40, 20, 35, 50, 15] {
        table.insert(k, k * 100);
    }
    let mut window = Vec::new();
    table.range_search(15, 40, &mut window);
    println!("range_search(15, 40) over a fresh table -> {window:?}");
}
