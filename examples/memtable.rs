//! A RocksDB-style memtable built on a concurrent skip list.
//!
//! The paper's introduction points out that skip lists are the backbone of
//! LSM key/value stores such as RocksDB: writers insert new versions into a
//! sorted in-memory table while readers look up the latest version, and the
//! table is periodically "flushed" (drained). This example models that
//! write-heavy pattern on the ASCY-compliant `fraser-opt` skip list and the
//! lock-based `herlihy` skip list, and also demonstrates BST-TK as an
//! ordered-index alternative.
//!
//! Run with: `cargo run --release --example memtable`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ascylib::api::ConcurrentMap;
use ascylib::bst::BstTk;
use ascylib::skiplist::{FraserOptSkipList, HerlihySkipList};

const KEYSPACE: u64 = 64 * 1024;
const OPS_PER_THREAD: u64 = 100_000;
const FLUSH_THRESHOLD: usize = 32 * 1024;

fn run_memtable(name: &str, table: Arc<dyn ConcurrentMap>, threads: usize) {
    let flushes = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads as u64 {
        let table = Arc::clone(&table);
        let flushes = Arc::clone(&flushes);
        handles.push(std::thread::spawn(move || {
            let mut state = (t + 1) * 0xA24B_AED4;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 0..OPS_PER_THREAD {
                let key = 1 + rng() % KEYSPACE;
                match rng() % 100 {
                    // 50% writes: insert a new version (value = sequence no).
                    0..=49 => {
                        if !table.insert(key, i) {
                            // Key already present: emulate an overwrite by
                            // remove + insert (the CSDS interface is a set).
                            table.remove(key);
                            table.insert(key, i);
                        }
                    }
                    // 40% point lookups.
                    50..=89 => {
                        table.search(key);
                    }
                    // 10% deletes (tombstones applied immediately).
                    _ => {
                        table.remove(key);
                    }
                }
                // Thread 0 plays the flusher: when the memtable grows past
                // the threshold, drain a chunk of it (simulating a flush to
                // an SSTable).
                if t == 0 && i % 4096 == 0 && table.size() > FLUSH_THRESHOLD {
                    let mut drained = 0;
                    for key in 1..=KEYSPACE {
                        if table.remove(key).is_some() {
                            drained += 1;
                            if drained >= FLUSH_THRESHOLD / 2 {
                                break;
                            }
                        }
                    }
                    flushes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let total = threads as u64 * OPS_PER_THREAD;
    println!(
        "{name:>12}: {:>7.2} Mops/s  final size {:>6}  flushes {}  ({threads} threads)",
        total as f64 / elapsed.as_secs_f64() / 1e6,
        table.size(),
        flushes.load(Ordering::Relaxed),
    );
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    println!("RocksDB-style memtable workload (50% write / 40% read / 10% delete + flusher)");
    run_memtable("fraser-opt", Arc::new(FraserOptSkipList::new()), threads);
    run_memtable("herlihy", Arc::new(HerlihySkipList::new()), threads);
    run_memtable("bst-tk", Arc::new(BstTk::new()), threads);
}
