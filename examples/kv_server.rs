//! A standalone key-value server speaking the ASCY wire protocol (v2:
//! binary bulk values).
//!
//! Serves a blob-valued sharded Fraser skip list (ordered, so `SCAN`
//! works; values are arbitrary byte strings up to 64 KiB stored in
//! per-shard ssmem arenas). Two modes:
//!
//! * **serve** (default): bind `ASCYLIB_ADDR` (default `127.0.0.1:7878`)
//!   and serve until killed (or for `ASCYLIB_SERVE_MILLIS` milliseconds if
//!   set — handy for scripted runs). Drive it with
//!   `cargo run --release --example kv_loadgen`, or by hand:
//!
//!   ```text
//!   $ nc 127.0.0.1 7878
//!   SET 7 5
//!   hello
//!   :1
//!   GET 7
//!   $5
//!   hello
//!   SCAN 1 4
//!   *1
//!   =7 5
//!   hello
//!   QUIT
//!   +BYE
//!   ```
//!
//! * **`--demo`**: bind an ephemeral port, run the in-process closed-loop
//!   load generator against it for a short burst (pipelined and
//!   unpipelined), print both reports — payload bandwidth included — then
//!   scrape the observability surfaces (`INFO
//!   latency`/`commands`/`concurrency`/`memory`, `METRICS`, `SLOWLOG`, the
//!   threshold forced to zero so the slow log fills), wait out one
//!   telemetry window so the second scrape carries live rates, and run a
//!   2-second `MONITOR` watch that must see at least one trace event
//!   before its subscriber disconnects cleanly. Exits non-zero if the
//!   burst served nothing or a scrape fails to validate — CI uses this as
//!   the serving smoke test.
//!
//! Environment: `ASCYLIB_ADDR`, `ASCYLIB_SHARDS` (default 4),
//! `ASCYLIB_WORKERS` (default 8; the event-driven tier serves any number
//! of connections on them), `ASCYLIB_IDLE_MS` (idle-connection eviction
//! timeout, default 60000; 0 disables), `ASCYLIB_SLOW_US` (slow-op log
//! threshold in microseconds, default 10000; serve mode only — the demo
//! pins it to 0), `ASCYLIB_SERVE_MILLIS` (0 = forever),
//! `ASCYLIB_BENCH_MILLIS` (demo burst length, default 300),
//! `ASCYLIB_VALUES` (value-size spec: `fixed:64`, `uniform:16,4096`, or
//! `bimodal:16,256,10`; demo default `bimodal:16,256,10`),
//! `ASCYLIB_HOTKEYS` (hot-key engine front-cache size `k`, default 16;
//! 0 disables the engine), `ASCYLIB_DIST` (demo key distribution:
//! `uniform`, `zipf:<theta>`, or `hotspot:<frac>:<prob>`; default
//! `zipf:0.99`), `ASCYLIB_BUDGET` (cache-tier byte budget: `64mb`,
//! `512kb`, a bare byte count, or `off`; default unbounded — the demo
//! applies 256 KiB if nothing is set so eviction is observable), and
//! `ASCYLIB_TTL` (default TTL stamped on plain `SET`s: `500ms`, `30s`,
//! `5m`, `2h`, or `off`; default none). The `--budget <spec>` and
//! `--ttl <spec>` flags override the corresponding variables per run.

use std::sync::Arc;
use std::time::Duration;

use ascylib::skiplist::FraserOptSkipList;
use ascylib_harness::{arg_value, bench_millis, env_or, KeyDist, OpMix};
use ascylib_server::loadgen::{self, LoadGenConfig, LoadGenResult};
use ascylib_server::{BlobOrderedStore, Client, Server, ServerConfig, ServerHandle, ValueSize};
use ascylib_shard::{BlobMap, CacheConfig, HotKeyConfig};

fn start(
    addr: &str,
    shards: usize,
    workers: usize,
    slowlog: Duration,
    cache: CacheConfig,
) -> ServerHandle {
    let hot = HotKeyConfig::from_env();
    let policy = cache.describe();
    let map = Arc::new(BlobMap::with_config(shards, hot, cache, |_| FraserOptSkipList::new()));
    let hotkeys = match map.hotkey_engine() {
        Some(engine) => format!("hot-key engine k={}", engine.k()),
        None => "hot-key engine off".to_string(),
    };
    let idle_timeout = match env_or("ASCYLIB_IDLE_MS", 60_000) {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    };
    let config = ServerConfig {
        workers,
        idle_timeout,
        slowlog_threshold: slowlog,
        ..ServerConfig::default()
    };
    let server = Server::start(addr, BlobOrderedStore::new(map), config)
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    println!(
        "kv_server: serving {shards}-shard blob-valued fraser-opt skip list on {} \
         ({workers} workers, event-driven, {hotkeys}, cache tier: {policy}, \
         idle timeout {:?})",
        server.addr(),
        config.idle_timeout
    );
    server
}

fn print_result(label: &str, r: &LoadGenResult) {
    println!(
        "{label:>14}: {:.2} Mops/s  ({} ops: {} get / {} set / {} del / {} scan, \
         hit rate {:.0}%, p50 rtt {:.1} us, p99 {:.1} us)",
        r.mops,
        r.total_ops,
        r.gets,
        r.sets,
        r.dels,
        r.scans,
        100.0 * r.hit_rate(),
        r.batch_rtt.p50 as f64 / 1e3,
        r.batch_rtt.p99 as f64 / 1e3,
    );
    println!(
        "{:>14}  payload: read {:.2} MB/s, wrote {:.2} MB/s",
        "", r.read_mbps(), r.write_mbps()
    );
}

fn demo(shards: usize, workers: usize, cache: CacheConfig) {
    // The demo is also the CI smoke test for the cache tier, so it needs a
    // budget small enough that its churn burst visibly evicts: apply a
    // 256 KiB default when neither the environment nor the flags set one.
    let cache = if cache.budget_bytes.is_none() { cache.with_budget(256 * 1024) } else { cache };
    // Threshold zero so the burst is guaranteed to populate the slow-op
    // log — the demo shows the mechanism, not a tuned production cutoff.
    let server = start("127.0.0.1:0", shards, workers, Duration::ZERO, cache);
    let addr = server.addr();
    let key_range = 8192u64;
    let vsize = ValueSize::from_env();
    let inserted =
        loadgen::prefill(addr, key_range / 2, key_range, vsize, 0xDE30).expect("prefill");
    println!("kv_server: prefilled {inserted} keys over the wire ({vsize} values)");

    // YCSB-B-flavoured point mix plus a dash of scans, skewed keys — the
    // full protocol surface in one burst.
    let mix = OpMix { read: 85, insert: 5, remove: 5, scan: 5, scan_len: 16 };
    let dist = KeyDist::from_env();
    println!("kv_server: demo key distribution {dist}");
    let base = LoadGenConfig {
        connections: 4,
        duration_ms: bench_millis(),
        mix,
        dist,
        key_range,
        value_size: vsize,
        pipeline_depth: 1,
        ..LoadGenConfig::default()
    };
    let unpipelined = loadgen::run(addr, &base).expect("unpipelined burst");
    print_result("depth 1", &unpipelined);
    let pipelined =
        loadgen::run(addr, &LoadGenConfig { pipeline_depth: 16, ..base }).expect("pipelined burst");
    print_result("depth 16", &pipelined);
    println!(
        "{:>14}  {:.2}x",
        "pipelining:",
        pipelined.mops / unpipelined.mops.max(f64::MIN_POSITIVE)
    );
    if let Some(sl) = pipelined.server_latency {
        println!(
            "{:>14}  server-side service time: p50 {} ns, p99 {} ns, max {} ns over {} requests",
            "", sl.p50_ns, sl.p99_ns, sl.max_ns, sl.count
        );
    }

    // The observability surfaces, scraped over the same wire protocol the
    // data path uses (see PROTOCOL.md and README "Observing a running
    // server").
    let mut probe = Client::connect(addr).expect("observability probe connects");
    let latency = probe.info(Some("latency")).expect("INFO latency");
    let commands = probe.info(Some("commands")).expect("INFO commands");
    println!("kv_server: INFO latency ->");
    for line in latency.lines().take(8) {
        println!("    {line}");
    }
    println!("kv_server: INFO commands ->");
    for line in commands.lines().filter(|l| l.contains("_ops:")) {
        println!("    {line}");
    }
    let hotkeys = probe.info(Some("hotkeys")).expect("INFO hotkeys");
    println!("kv_server: INFO hotkeys ->");
    for line in hotkeys.lines().take(8) {
        println!("    {line}");
    }
    // Structure-level concurrency counters (paper §4: coherence traffic is
    // what scalability is made of) and the ssmem allocator totals, both on
    // the wire now.
    let concurrency = probe.info(Some("concurrency")).expect("INFO concurrency");
    println!("kv_server: INFO concurrency ->");
    for line in concurrency.lines().take(13) {
        println!("    {line}");
    }
    let memory = probe.info(Some("memory")).expect("INFO memory");
    // Two scrapes far enough apart rotate the telemetry window, so the
    // second one carries live rates (ops_per_sec and friends).
    std::thread::sleep(Duration::from_millis(1_200));
    let concurrency2 = probe.info(Some("concurrency")).expect("second INFO concurrency");
    for line in concurrency2.lines().filter(|l| l.contains("per_sec")).take(3) {
        println!("    {line}");
    }
    let metrics = probe.metrics().expect("METRICS");
    ascylib_telemetry::expo::validate(&metrics).expect("METRICS body is valid exposition text");
    println!(
        "kv_server: METRICS -> {} lines of valid Prometheus text exposition",
        metrics.lines().count()
    );
    let slow_len = probe.slowlog_len().expect("SLOWLOG LEN");
    let slowlog = probe.slowlog_get().expect("SLOWLOG GET");
    println!("kv_server: SLOWLOG -> {slow_len} ops at/over threshold; most recent:");
    for line in slowlog.lines().take(3) {
        println!("    {line}");
    }
    probe.quit().expect("probe quits");

    // MONITOR smoke: one connection subscribes to the live trace stream,
    // another drives traffic, and at least one sampled event must arrive
    // within a 2-second watch before the subscriber disconnects cleanly.
    let mut watcher = Client::connect(addr).expect("monitor subscriber connects");
    watcher.monitor(None).expect("MONITOR subscribes");
    watcher.set_timeout(Some(Duration::from_millis(100))).expect("watch timeout");
    let mut feeder = Client::connect(addr).expect("monitor feeder connects");
    let watch_deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut trace = None;
    let mut fed = 0u64;
    while trace.is_none() && std::time::Instant::now() < watch_deadline {
        for k in 1..=64u64 {
            feeder.set(k, b"monitored").expect("feeder SET");
            fed += 1;
        }
        match watcher.monitor_next() {
            Ok(line) => trace = Some(line),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("monitor stream failed: {e}"),
        }
    }
    let trace = trace.expect("a 2-second MONITOR watch must see at least one event");
    println!("kv_server: MONITOR -> {trace} (after {fed} fed ops)");
    watcher.set_timeout(None).expect("clear watch timeout");
    feeder.quit().expect("feeder quits");
    watcher.quit().expect("monitor subscriber disconnects cleanly");
    let mut after = Client::connect(addr).expect("post-monitor probe connects");
    after.ping().expect("server stays live after the monitor watch");
    after.quit().expect("post-monitor probe quits");

    // Cache-tier churn burst: write far past the byte budget, lease a key,
    // then scrape the cache surfaces while the evictions are fresh.
    let mut churn = Client::connect(addr).expect("cache churn connects");
    let payload = vec![0x5A; 256];
    for k in 1..=4096u64 {
        churn.set(k, &payload).expect("churn SET");
    }
    churn.set_ex(4097, b"leased", 60).expect("churn SETEX");
    let lease = churn.ttl(4097).expect("churn TTL");
    assert!(
        matches!(lease, Some(Some(1..=60))),
        "a fresh 60 s lease must count down from 60, got {lease:?}"
    );
    let cache_info = churn.info(Some("cache")).expect("INFO cache");
    println!("kv_server: INFO cache (after a 1 MiB churn burst) ->");
    for line in cache_info.lines().take(12) {
        println!("    {line}");
    }
    let cache_metrics = churn.metrics().expect("METRICS after churn");
    ascylib_telemetry::expo::validate(&cache_metrics).expect("post-churn METRICS validates");
    churn.quit().expect("churn client quits");

    let stats = server.join();
    println!(
        "kv_server: clean shutdown after {} conns, {} frames, {} ops, {} errors",
        stats.connections, stats.frames, stats.ops, stats.errors
    );
    // The demo doubles as the CI smoke test: a silent zero-op "success"
    // must fail loudly.
    assert!(unpipelined.total_ops > 0, "unpipelined burst served nothing");
    assert!(pipelined.total_ops > 0, "pipelined burst served nothing");
    assert_eq!(unpipelined.errors + pipelined.errors, 0, "bursts must be error-free");
    assert!(
        pipelined.payload_bytes_written > 0 && pipelined.payload_bytes_read > 0,
        "the burst must move real payload bytes"
    );
    assert!(stats.frames > 0 && stats.connections > 0);
    // Observability contract: the latency section reflects the burst, and
    // with a zero threshold the slow log cannot be empty.
    assert!(
        pipelined.server_latency.is_some_and(|sl| sl.count > 0),
        "server-side latency must be scraped after the burst"
    );
    assert!(latency.contains("request_p99_ns:"), "INFO latency must expose percentiles");
    assert!(slow_len > 0, "zero-threshold slow log must capture ops");
    // The stock demo server carries the hot-key engine (ASCYLIB_HOTKEYS=0
    // turns it off); either way the INFO section must say which.
    assert!(
        hotkeys.contains("hotkey_engine:on") || hotkeys.contains("hotkey_engine:off"),
        "INFO hotkeys must report the engine state"
    );
    // Coherence counters must have registered the burst, the ssmem totals
    // must be on the wire, and the second scrape's rotated window must
    // carry live rates.
    let field = |body: &str, name: &str| -> Option<u64> {
        body.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.strip_prefix(':')))
            .and_then(|v| v.trim().parse().ok())
    };
    assert!(
        field(&concurrency, "coherence_operations").unwrap_or(0) > 0,
        "the burst must register structure-level operations:\n{concurrency}"
    );
    assert!(
        memory.contains("ssmem_allocations:") && memory.contains("ssmem_pending:"),
        "INFO memory must carry the ssmem allocator totals:\n{memory}"
    );
    assert!(
        concurrency2.contains("ops_per_sec:"),
        "a rotated window must render live rates:\n{concurrency2}"
    );
    assert!(
        metrics.contains("ascy_coherence_operations_total")
            && metrics.contains("ascy_ssmem_allocations_total")
            && metrics.contains("ascy_monitor_subscribers"),
        "METRICS must export the coherence, ssmem, and monitor families"
    );
    // Cache-tier contract after the churn burst: the budget held, the
    // eviction counter moved, and the families reached the exporter.
    assert!(
        cache_info.contains("cache_tier:on") && cache_info.contains("cache_budget:on"),
        "the demo store must carry a bounded cache tier:\n{cache_info}"
    );
    let budget = field(&cache_info, "cache_budget_bytes").unwrap_or(0);
    let live = field(&cache_info, "cache_live_bytes").unwrap_or(u64::MAX);
    assert!(budget > 0 && live <= budget, "budget gauges incoherent:\n{cache_info}");
    assert!(
        field(&cache_info, "cache_evictions").unwrap_or(0) > 0,
        "a 1 MiB churn against a 256 KiB budget must evict:\n{cache_info}"
    );
    assert!(
        field(&cache_info, "cache_ttl_live").unwrap_or(0) > 0,
        "the leased key must register on the TTL gauge:\n{cache_info}"
    );
    assert!(
        cache_metrics.contains("ascy_cache_evictions_total")
            && cache_metrics.contains("ascy_cache_budget_bytes")
            && cache_metrics.contains("ascy_cache_live_bytes"),
        "METRICS must export the cache families after the churn"
    );
}

fn main() {
    let shards = env_or("ASCYLIB_SHARDS", 4) as usize;
    let workers = env_or("ASCYLIB_WORKERS", 8) as usize;
    let cache = CacheConfig::resolve(arg_value("--budget").as_deref(), arg_value("--ttl").as_deref());
    if std::env::args().any(|a| a == "--demo") {
        demo(shards, workers, cache);
        return;
    }

    let addr = std::env::var("ASCYLIB_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let slowlog = Duration::from_micros(env_or("ASCYLIB_SLOW_US", 10_000));
    let server = start(&addr, shards, workers, slowlog, cache);
    println!(
        "kv_server: protocol GET/SET/DEL/MGET/MSET/SCAN/PING/STATS/QUIT with bulk values, \
         expiry via SET .. EX / EXPIRE / TTL / PERSIST, \
         plus INFO/SLOWLOG/METRICS observability (see PROTOCOL.md);\n\
         kv_server: drive with `cargo run --release --example kv_loadgen` or `nc {}`",
        server.addr()
    );
    let serve_millis = env_or("ASCYLIB_SERVE_MILLIS", 0);
    if serve_millis == 0 {
        // Serve until killed. The acceptor and workers own their threads;
        // park the main thread forever.
        loop {
            std::thread::park();
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(serve_millis));
    let stats = server.join();
    println!(
        "kv_server: served {} conns / {} frames / {} ops in {serve_millis} ms",
        stats.connections, stats.frames, stats.ops
    );
}
