//! Drives a `kv_server` with the load generator — closed-loop (pipelined
//! request/response) or open-loop (scheduled arrivals, coordinated-
//! omission-free latency) — moving real payload bytes.
//!
//! Start the server in one terminal, the load in another:
//!
//! ```text
//! $ cargo run --release --example kv_server
//! $ cargo run --release --example kv_loadgen
//! ```
//!
//! Or let the load generator host its own in-process server on an
//! ephemeral port (the CI smoke-test mode — no second terminal needed):
//!
//! ```text
//! $ cargo run --release --example kv_loadgen -- --self
//! ```
//!
//! Flags: `--mode closed|open:<rate>[:poisson|:fixed]`, `--conns <n>`, and
//! `--dist uniform|zipf:<theta>|hotspot:<frac>:<prob>` override the
//! corresponding environment knobs per run; `--budget <spec>` and
//! `--ttl <spec>` (only meaningful with `--self`) bound the in-process
//! server's cache tier, overriding `ASCYLIB_BUDGET` / `ASCYLIB_TTL`; `--progress <secs>` prints a
//! live status line to stderr that often while the burst runs (ops so far,
//! current ops/s, errors, and the interval's latency quantiles) — the way
//! to watch a multi-minute run without waiting for the final report.
//!
//! Environment knobs:
//!
//! * `ASCYLIB_ADDR` — server address (default `127.0.0.1:7878`; ignored
//!   with `--self`);
//! * `ASCYLIB_MODE` — driving discipline: `closed` (default) or
//!   `open:<rate>` aggregate ops/s (`:poisson` arrivals unless `:fixed`);
//!   open-loop runs report latency from each operation's *intended* send
//!   time, so server stalls surface in the tail percentiles;
//! * `ASCYLIB_CONNS` — concurrent connections (default 4; the event-driven
//!   server no longer caps capacity at its worker count);
//! * `ASCYLIB_BENCH_MILLIS` — burst duration (default 300);
//! * `ASCYLIB_DEPTH` — pipeline depth (default 16; 1 = strict
//!   request/response);
//! * `ASCYLIB_MIX` — `a`, `b`, `c`, `e` (YCSB presets) or an update
//!   percentage like `20` (default `b`);
//! * `ASCYLIB_DIST` — key distribution: `uniform`, `zipf:<theta>`, or
//!   `hotspot:<hot_fraction>:<hot_prob>` (default `zipf:0.99`, the YCSB
//!   skew);
//! * `ASCYLIB_VALUES` — value-size spec: `fixed:64`, `uniform:16,4096`, or
//!   `bimodal:16,256,10` (default `bimodal:16,256,10` — mostly-small
//!   values with a 256 B tail);
//! * `ASCYLIB_PREFILL` — keys to MSET before the burst (default 4096;
//!   0 skips);
//! * `ASCYLIB_BUDGET` / `ASCYLIB_TTL` — cache-tier byte budget
//!   (`64mb`, `512kb`, a bare count, `off`) and default TTL (`500ms`,
//!   `30s`, `5m`, `off`) for the `--self` server (default: both off).

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use ascylib_harness::{arg_value, bench_millis, env_or, KeyDist, OpMix};
use ascylib_server::loadgen::{self, LoadGenConfig};
use ascylib_server::{
    BlobOrderedStore, Client, LoadMode, Server, ServerConfig, ServerHandle, ValueSize,
};
use ascylib_shard::{BlobMap, CacheConfig, HotKeyConfig};

fn resolve(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .unwrap_or_else(|e| panic!("cannot resolve {addr}: {e}"))
        .next()
        .unwrap_or_else(|| panic!("{addr} resolved to nothing"))
}

fn mix_from_env() -> (String, OpMix) {
    let raw = std::env::var("ASCYLIB_MIX").unwrap_or_else(|_| "b".to_string());
    let mix = match raw.as_str() {
        "a" => OpMix::ycsb_a(),
        "b" => OpMix::ycsb_b(),
        "c" => OpMix::ycsb_c(),
        // YCSB-E needs an ordered store (the stock kv_server serves one).
        "e" => OpMix::ycsb_e(),
        pct => OpMix::update(pct.parse().unwrap_or(10)),
    };
    (raw, mix)
}

fn main() {
    let conns = arg_value("--conns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(env_or("ASCYLIB_CONNS", 4) as usize);
    let mode = match arg_value("--mode") {
        Some(spec) => LoadMode::parse(&spec)
            .unwrap_or_else(|| panic!("bad --mode spec {spec:?} (closed | open:<rate>[:poisson|:fixed])")),
        None => LoadMode::from_env(),
    };
    let dist = match arg_value("--dist") {
        Some(spec) => KeyDist::parse(&spec).unwrap_or_else(|| {
            panic!("bad --dist spec {spec:?} (uniform | zipf:<theta> | hotspot:<frac>:<prob>)")
        }),
        None => KeyDist::from_env(),
    };
    let progress = arg_value("--progress").map(|secs| {
        let s: f64 = secs
            .parse()
            .ok()
            .filter(|s: &f64| s.is_finite() && *s > 0.0)
            .unwrap_or_else(|| panic!("bad --progress interval {secs:?} (positive seconds)"));
        Duration::from_secs_f64(s)
    });
    // `--self`: host an in-process server on an ephemeral port, so one
    // command exercises the whole serving stack (CI smoke test).
    let self_serve: Option<ServerHandle> = if std::env::args().any(|a| a == "--self") {
        let cache =
            CacheConfig::resolve(arg_value("--budget").as_deref(), arg_value("--ttl").as_deref());
        let policy = cache.describe();
        let map = Arc::new(BlobMap::with_config(4, HotKeyConfig::from_env(), cache, |_| {
            ascylib::skiplist::FraserOptSkipList::new()
        }));
        let hotkeys = match map.hotkey_engine() {
            Some(engine) => format!("hot-key engine k={}", engine.k()),
            None => "hot-key engine off".to_string(),
        };
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(map),
            ServerConfig::for_connections(conns),
        )
        .expect("bind ephemeral self-serve port");
        println!(
            "kv_loadgen: self-serving a 4-shard blob skip list on {} ({hotkeys}, \
             cache tier: {policy})",
            server.addr()
        );
        Some(server)
    } else {
        None
    };
    let addr = match &self_serve {
        Some(server) => server.addr(),
        None => resolve(&std::env::var("ASCYLIB_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".into())),
    };

    let (mix_name, mix) = mix_from_env();
    let values = ValueSize::from_env();
    let prefill = env_or("ASCYLIB_PREFILL", 4096);
    let key_range = (prefill * 2).max(1024);
    if prefill > 0 {
        let inserted = loadgen::prefill(addr, prefill, key_range, values, 0x10AD)
            .unwrap_or_else(|e| panic!("prefill against {addr} failed (is kv_server up?): {e}"));
        println!("kv_loadgen: prefilled {inserted} new keys (of {prefill} sent, {values} values)");
    }
    let cfg = LoadGenConfig {
        connections: conns,
        duration_ms: bench_millis(),
        mode,
        mix,
        dist,
        key_range,
        value_size: values,
        pipeline_depth: env_or("ASCYLIB_DEPTH", 16) as usize,
        progress,
        ..LoadGenConfig::default()
    };
    println!(
        "kv_loadgen: {} conns ({mode}) x depth {} against {addr}, mix={mix_name}, \
         {dist}, values={values}, {} ms",
        cfg.connections, cfg.pipeline_depth, cfg.duration_ms
    );
    let r = loadgen::run(addr, &cfg)
        .unwrap_or_else(|e| panic!("load run against {addr} failed: {e}"));
    println!(
        "kv_loadgen: {:.2} Mops/s ({} ops: {} get / {} set / {} del / {} scan)",
        r.mops, r.total_ops, r.gets, r.sets, r.dels, r.scans
    );
    println!(
        "kv_loadgen: hit rate {:.0}%, {} scan keys returned, {} error replies",
        100.0 * r.hit_rate(),
        r.scan_keys_returned,
        r.errors
    );
    println!(
        "kv_loadgen: payload read {:.2} MB/s ({} B), wrote {:.2} MB/s ({} B)",
        r.read_mbps(),
        r.payload_bytes_read,
        r.write_mbps(),
        r.payload_bytes_written
    );
    match mode {
        LoadMode::Closed => println!(
            "kv_loadgen: batch rtt p1={} p50={} p99={} us (depth {} per round trip)",
            r.batch_rtt.p1 / 1000,
            r.batch_rtt.p50 / 1000,
            r.batch_rtt.p99 / 1000,
            cfg.pipeline_depth
        ),
        LoadMode::Open { .. } => {
            println!(
                "kv_loadgen: scheduled {} ops, answered {}, unanswered {}",
                r.scheduled_ops, r.total_ops, r.unanswered
            );
            println!(
                "kv_loadgen: CO-free latency p50={} p99={} p999={} max={} us \
                 (from intended send times; p999 {})",
                r.latency.p50 / 1000,
                r.latency.p99 / 1000,
                r.latency.p999 / 1000,
                r.latency.max / 1000,
                if r.latency.resolves(0.999) { "resolved" } else { "under-sampled" }
            );
        }
    }
    // Client-side RTT above includes the wire and the batching; the
    // server-side view (scraped from INFO latency after the burst) is
    // per-request service time alone.
    match r.server_latency {
        Some(sl) => println!(
            "kv_loadgen: server-side service time p50={} p99={} p999={} max={} ns \
             over {} requests",
            sl.p50_ns, sl.p99_ns, sl.p999_ns, sl.max_ns, sl.count
        ),
        None => println!("kv_loadgen: no server-side latency (telemetry off or scrape failed)"),
    }
    if let Some(server) = self_serve {
        // Scrape the hot-key section while the server is still up; the CI
        // skew smoke (`--self --dist zipf:1.2`) asserts the engine saw the
        // traffic it was built for.
        let mut probe = Client::connect(server.addr()).expect("hotkey probe connects");
        let hotkeys = probe.info(Some("hotkeys")).expect("INFO hotkeys");
        let _ = probe.quit();
        println!("kv_loadgen: INFO hotkeys ->");
        for line in hotkeys.lines().take(6) {
            println!("    {line}");
        }
        let field = |name: &str| -> u64 {
            hotkeys
                .lines()
                .find_map(|l| l.strip_prefix(name).and_then(|v| v.strip_prefix(':')))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0)
        };
        if hotkeys.contains("hotkey_engine:on") {
            assert!(field("hotkey_sampled") > 0, "engine on but nothing sampled:\n{hotkeys}");
            if matches!(dist, KeyDist::Zipfian { theta } if theta >= 1.0) {
                assert!(
                    field("hotkey_promotions") > 0 && field("hotkey_front_hits") > 0,
                    "zipf({dist}) burst must promote and front-hit hot keys:\n{hotkeys}"
                );
            }
        }
        let stats = server.join();
        println!(
            "kv_loadgen: self-serve shutdown after {} conns, {} frames, {} errors",
            stats.connections, stats.frames, stats.errors
        );
        // Smoke-test contract: traffic was served, nothing errored, and
        // real payload bytes moved in both directions.
        assert!(r.total_ops > 0, "self-serve burst served nothing");
        assert_eq!(r.errors, 0, "self-serve burst must be error-free");
        assert!(
            r.payload_bytes_written > 0 && r.payload_bytes_read > 0,
            "self-serve burst must move payload bytes"
        );
    }
}
