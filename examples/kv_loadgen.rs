//! Drives a running `kv_server` with the closed-loop load generator.
//!
//! Start the server in one terminal, the load in another:
//!
//! ```text
//! $ cargo run --release --example kv_server
//! $ cargo run --release --example kv_loadgen
//! ```
//!
//! Environment knobs:
//!
//! * `ASCYLIB_ADDR` — server address (default `127.0.0.1:7878`);
//! * `ASCYLIB_CONNS` — concurrent connections (default 4; keep at or below
//!   the server's worker count);
//! * `ASCYLIB_BENCH_MILLIS` — burst duration (default 300);
//! * `ASCYLIB_DEPTH` — pipeline depth (default 16; 1 = strict
//!   request/response);
//! * `ASCYLIB_MIX` — `a`, `b`, `c`, `e` (YCSB presets) or an update
//!   percentage like `20` (default `b`);
//! * `ASCYLIB_PREFILL` — keys to MSET before the burst (default 4096;
//!   0 skips).

use std::net::{SocketAddr, ToSocketAddrs};

use ascylib_harness::{bench_millis, env_or, KeyDist, OpMix};
use ascylib_server::loadgen::{self, LoadGenConfig};

fn resolve(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .unwrap_or_else(|e| panic!("cannot resolve {addr}: {e}"))
        .next()
        .unwrap_or_else(|| panic!("{addr} resolved to nothing"))
}

fn mix_from_env() -> (String, OpMix) {
    let raw = std::env::var("ASCYLIB_MIX").unwrap_or_else(|_| "b".to_string());
    let mix = match raw.as_str() {
        "a" => OpMix::ycsb_a(),
        "b" => OpMix::ycsb_b(),
        "c" => OpMix::ycsb_c(),
        // YCSB-E needs an ordered store (the stock kv_server serves one).
        "e" => OpMix::ycsb_e(),
        pct => OpMix::update(pct.parse().unwrap_or(10)),
    };
    (raw, mix)
}

fn main() {
    let addr = resolve(&std::env::var("ASCYLIB_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".into()));
    let (mix_name, mix) = mix_from_env();
    let prefill = env_or("ASCYLIB_PREFILL", 4096);
    let key_range = (prefill * 2).max(1024);
    if prefill > 0 {
        let inserted = loadgen::prefill(addr, prefill, key_range)
            .unwrap_or_else(|e| panic!("prefill against {addr} failed (is kv_server up?): {e}"));
        println!("kv_loadgen: prefilled {inserted} new keys (of {prefill} sent)");
    }
    let cfg = LoadGenConfig {
        connections: env_or("ASCYLIB_CONNS", 4) as usize,
        duration_ms: bench_millis(),
        mix,
        dist: KeyDist::Zipfian { theta: 0.99 },
        key_range,
        pipeline_depth: env_or("ASCYLIB_DEPTH", 16) as usize,
        ..LoadGenConfig::default()
    };
    println!(
        "kv_loadgen: {} conns x depth {} against {addr}, mix={mix_name}, zipf(0.99), {} ms",
        cfg.connections, cfg.pipeline_depth, cfg.duration_ms
    );
    let r = loadgen::run(addr, &cfg)
        .unwrap_or_else(|e| panic!("load run against {addr} failed: {e}"));
    println!(
        "kv_loadgen: {:.2} Mops/s ({} ops: {} get / {} set / {} del / {} scan)",
        r.mops, r.total_ops, r.gets, r.sets, r.dels, r.scans
    );
    println!(
        "kv_loadgen: hit rate {:.0}%, {} scan keys returned, {} error replies",
        100.0 * r.hit_rate(),
        r.scan_keys_returned,
        r.errors
    );
    println!(
        "kv_loadgen: batch rtt p1={} p50={} p99={} us (depth {} per round trip)",
        r.batch_rtt.p1 / 1000,
        r.batch_rtt.p50 / 1000,
        r.batch_rtt.p99 / 1000,
        cfg.pipeline_depth
    );
}
