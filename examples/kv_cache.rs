//! A Memcached-style key/value cache built on CLHT.
//!
//! The paper motivates CSDSs with systems like Memcached, whose hash table
//! became a scalability bottleneck. This example models that workload: a
//! cache of `u64 → u64` entries serving a read-mostly request mix with
//! occasional invalidations and refills, plus a comparison between a
//! lock-striped table (`java`) and CLHT under the same load.
//!
//! Run with: `cargo run --release --example kv_cache`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ascylib::api::ConcurrentMap;
use ascylib::hashtable::{ClhtLb, JavaHashTable};

const ITEMS: u64 = 16_384;
const OPS_PER_THREAD: u64 = 200_000;

/// 90% GET, 5% SET (refill), 5% DELETE (invalidate) — a typical cache mix.
fn run_cache(name: &str, cache: Arc<dyn ConcurrentMap>, threads: usize) {
    // Warm the cache.
    for k in 1..=ITEMS {
        cache.insert(k, k ^ 0xDEAD_BEEF);
    }
    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads as u64 {
        let cache = Arc::clone(&cache);
        let hits = Arc::clone(&hits);
        let misses = Arc::clone(&misses);
        handles.push(std::thread::spawn(move || {
            let mut state = t * 0x9E37_79B9 + 1;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..OPS_PER_THREAD {
                let key = 1 + rng() % (2 * ITEMS);
                match rng() % 100 {
                    0..=89 => {
                        if cache.search(key).is_some() {
                            hits.fetch_add(1, Ordering::Relaxed);
                        } else {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    90..=94 => {
                        cache.insert(key, key ^ 0xDEAD_BEEF);
                    }
                    _ => {
                        cache.remove(key);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let total = threads as u64 * OPS_PER_THREAD;
    println!(
        "{name:>10}: {:>7.2} Mops/s  hit-rate {:>5.1}%  ({} entries, {threads} threads)",
        total as f64 / elapsed.as_secs_f64() / 1e6,
        100.0 * hits.load(Ordering::Relaxed) as f64
            / (hits.load(Ordering::Relaxed) + misses.load(Ordering::Relaxed)).max(1) as f64,
        cache.size(),
    );
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    println!("Memcached-style cache workload (90% GET / 5% SET / 5% DELETE)");
    run_cache("java", Arc::new(JavaHashTable::with_capacity(2 * ITEMS as usize)), threads);
    run_cache("clht-lb", Arc::new(ClhtLb::with_capacity(2 * ITEMS as usize)), threads);
}
