//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset the `micro_ops` benchmark uses: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function`, a timing [`Bencher`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. There is no statistical
//! analysis: each benchmark reports the mean and best per-iteration time over
//! the configured samples.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so user code can call `criterion::black_box`.
pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, as the real
    /// criterion does inside `criterion_main!`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(300),
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration (split across the samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its per-iteration timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up: run until the warm-up budget is spent, growing the
        // iteration count so the timing loop dominates the overhead.
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            if bencher.elapsed < Duration::from_millis(1) {
                bencher.iters = (bencher.iters * 2).min(1 << 20);
            }
        }

        let per_sample = self.measurement_time / self.sample_size as u32;
        let mut mean_sum = 0f64;
        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            let mut iters = 0u64;
            let mut elapsed = Duration::ZERO;
            while sample_start.elapsed() < per_sample {
                f(&mut bencher);
                iters += bencher.iters;
                elapsed += bencher.elapsed;
            }
            let nanos = elapsed.as_nanos() as f64 / iters.max(1) as f64;
            mean_sum += nanos;
            best = best.min(nanos);
        }
        let mean = mean_sum / self.sample_size as f64;
        println!("{}/{id:<24} {mean:>10.1} ns/iter (best {best:.1})", self.name);
        self
    }

    /// Ends the group (the stand-in has no per-group report to flush).
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a runnable group, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut count = 0u64;
        group.bench_function("add", |b| b.iter(|| count = count.wrapping_add(1)));
        group.finish();
        assert!(count > 0);
    }
}
