//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset the ASCYLIB-RS integration tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, [`prelude::any`],
//! tuple strategies, and [`collection::vec`]. Inputs are generated from a
//! deterministic per-test seed; on failure the offending case index and seed
//! are printed so the case can be replayed. There is **no shrinking** — a
//! failing input is reported as generated.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

/// Deterministic generator handed to strategies (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (zero is mapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        TestRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`" (see [`prelude::any`]).
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any(std::marker::PhantomData)
    }
}

/// Types with a canonical [`Any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec length range must be non-empty");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases to run and other knobs (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

thread_local! {
    static CURRENT_CASE: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

/// Records the seed/case about to run (used by the failure reporter).
pub fn set_current_case(seed: u64, case: u32) {
    CURRENT_CASE.with(|c| c.set((seed, case)));
}

/// Prints the failing seed/case; called from the macro's panic hook path.
pub fn report_failure() {
    let (seed, case) = CURRENT_CASE.with(|c| c.get());
    eprintln!("proptest (offline stand-in): failing case {case} for seed {seed:#x}; rerun is deterministic");
}

/// Derives a per-test seed from its name (FNV-1a), so every property gets a
/// distinct but reproducible input stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Range strategies: `0..10u64` works as a strategy for `u64`.
impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end);
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end);
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// The property-test macro. Supports the common form used in this repo:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(xs in collection::vec(any::<u8>(), 1..10)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::seed_from_name(stringify!($name));
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..config.cases {
                    $crate::set_current_case(seed, case);
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut rng);
                    )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(panic) = result {
                        $crate::report_failure();
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

pub mod prelude {
    //! The items a `use proptest::prelude::*` is expected to bring in.

    pub use crate::collection;
    pub use crate::proptest;
    pub use crate::{Any, Arbitrary, ProptestConfig, Strategy, TestRng};

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(xs in collection::vec(any::<u8>(), 3..7)) {
            assert!((3..7).contains(&xs.len()));
        }

        #[test]
        fn tuples_generate_both_sides(pair in (any::<u8>(), any::<u64>())) {
            let (_a, _b): (u8, u64) = pair;
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_from_name("a"), super::seed_from_name("b"));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = collection::vec(any::<u64>(), 1..50);
        let a = Strategy::generate(&s, &mut TestRng::new(9));
        let b = Strategy::generate(&s, &mut TestRng::new(9));
        assert_eq!(a, b);
    }
}
