//! Offline stand-in for a readiness-polling crate (in the spirit of
//! `mio`/`polling`): a minimal, dependency-free **oneshot** readiness API
//! over thin libc-style FFI declarations.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the ASCYLIB-RS event-driven serving tier
//! needs:
//!
//! * [`Poller`] — registers file descriptors with a `u64` token and an
//!   [`Interest`] (readable / writable), and delivers [`Event`]s from
//!   [`Poller::wait`]. Registration is **oneshot**: once an event for a
//!   descriptor is delivered, that descriptor is disarmed until
//!   [`Poller::rearm`] is called. Oneshot semantics make a
//!   multi-threaded dispatch loop race-free by construction — two workers
//!   can never be woken for the same connection at once.
//! * Two backends behind one API: **epoll** on Linux
//!   (`EPOLLONESHOT`-based, O(ready) dispatch) and a portable **poll(2)**
//!   fallback that emulates oneshot delivery in user space. Select
//!   explicitly with [`Poller::with_backend`] or take the platform default
//!   from [`Poller::new`].
//! * [`Poller::notify`] — a self-pipe waker: any thread can interrupt a
//!   blocked [`Poller::wait`] (used for shutdown and for re-arming under
//!   the poll(2) backend).
//! * [`fd_limit`] / [`raise_fd_limit`] — `RLIMIT_NOFILE` helpers, so
//!   connection-sweep benchmarks can size themselves to the descriptor
//!   budget instead of dying on `EMFILE`.
//!
//! Thread-safety contract: `register`/`rearm`/`deregister`/`notify` may be
//! called from any thread; `wait` is designed for a **single** waiting
//! thread (the event loop).
//!
//! Everything is implemented with `std` plus a handful of `extern "C"`
//! declarations (`sys` module) — no external crates, following the same
//! offline stand-in pattern as `vendor/rand` and `vendor/criterion`.

#![warn(missing_docs)]

#[cfg(not(unix))]
compile_error!("vendor/polling supports Unix targets only (epoll on Linux, poll(2) elsewhere)");

mod sys;

#[cfg(target_os = "linux")]
mod epoll;
mod pollbk;

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Token value reserved for the internal self-pipe waker; user
/// registrations must not use it.
pub(crate) const NOTIFY_TOKEN: u64 = u64::MAX;

/// The readiness directions a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the descriptor has bytes to read (or hung up).
    pub const READABLE: Interest = Interest(1);
    /// Wake when the descriptor can accept writes.
    pub const WRITABLE: Interest = Interest(2);
    /// Wake for either direction.
    pub const BOTH: Interest = Interest(3);

    /// Does this interest include readability?
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Does this interest include writability?
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// The union of two interests.
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable. Also set on hangup/error so consumers
    /// always make read progress and observe EOF in-band.
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; a read will surface the
    /// exact condition (EOF or an error).
    pub hangup: bool,
}

/// Reusable event buffer for [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    events: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates the events delivered by the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the last `wait` delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.events.clear();
    }

    pub(crate) fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// Which readiness implementation backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` with `EPOLLONESHOT` (the default on Linux).
    Epoll,
    /// Portable `poll(2)` with user-space oneshot emulation.
    Poll,
}

/// The platform's preferred backend.
pub fn default_backend() -> Backend {
    if cfg!(target_os = "linux") {
        Backend::Epoll
    } else {
        Backend::Poll
    }
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollbk::PollBackend),
}

/// A oneshot readiness poller (see the crate docs for the contract).
pub struct Poller {
    imp: Imp,
}

impl Poller {
    /// A poller on the platform's default backend.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(default_backend())
    }

    /// A poller on an explicit backend. Requesting [`Backend::Epoll`] off
    /// Linux fails with [`io::ErrorKind::Unsupported`].
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poller { imp: Imp::Epoll(epoll::Epoll::new()?) }),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                Err(io::Error::new(io::ErrorKind::Unsupported, "epoll requires Linux"))
            }
            Backend::Poll => Ok(Poller { imp: Imp::Poll(pollbk::PollBackend::new()?) }),
        }
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => Backend::Epoll,
            Imp::Poll(_) => Backend::Poll,
        }
    }

    /// Arms `fd` once for `interest`, tagging its events with `token`.
    /// The descriptor is disarmed after its first delivered event; call
    /// [`rearm`](Self::rearm) to arm it again.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if token == NOTIFY_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the internal waker",
            ));
        }
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.register(fd, token, interest),
            Imp::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Re-arms an already-registered descriptor (possibly changing its
    /// token or interest). Readiness is level-checked at arm time: if the
    /// condition already holds, the event is delivered by the next `wait`.
    pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if token == NOTIFY_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the internal waker",
            ));
        }
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.rearm(fd, token, interest),
            Imp::Poll(p) => p.rearm(fd, token, interest),
        }
    }

    /// Removes a descriptor entirely (no further events, armed or not).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.deregister(fd),
            Imp::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one armed descriptor is ready, the timeout
    /// elapses (`None` = forever), or another thread calls
    /// [`notify`](Self::notify). Returns the number of events delivered
    /// into `events` (0 on timeout/notify). `EINTR` surfaces as `Ok(0)`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.wait(events, timeout),
            Imp::Poll(p) => p.wait(events, timeout),
        }
    }

    /// Wakes the thread blocked in [`wait`](Self::wait), if any (the wakeup
    /// is sticky: a `notify` with no waiter makes the next `wait` return
    /// immediately).
    pub fn notify(&self) -> io::Result<()> {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(p) => p.notify(),
            Imp::Poll(p) => p.notify(),
        }
    }
}

/// Converts an optional timeout to the millisecond argument `epoll_wait` /
/// `poll` expect: `-1` blocks forever, sub-millisecond nonzero waits round
/// up to 1 ms so they do not busy-spin.
pub(crate) fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                let ms = d.as_millis().clamp(1, i32::MAX as u128);
                ms as i32
            }
        }
    }
}

/// The process's `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn fd_limit() -> io::Result<(u64, u64)> {
    sys::fd_limit()
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns the new
/// soft limit. Idempotent; useful before opening tens of thousands of
/// sockets.
pub fn raise_fd_limit() -> io::Result<u64> {
    sys::raise_fd_limit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::with_backend(Backend::Poll).expect("poll backend")];
        if cfg!(target_os = "linux") {
            v.push(Poller::with_backend(Backend::Epoll).expect("epoll backend"));
        }
        v
    }

    fn pair() -> (UnixStream, UnixStream) {
        UnixStream::pair().expect("socketpair")
    }

    #[test]
    fn readable_events_are_oneshot_until_rearmed() {
        for poller in backends() {
            let (a, mut b) = pair();
            poller.register(a.as_raw_fd(), 7, Interest::READABLE).unwrap();
            let mut events = Events::new();
            // Nothing to read yet: timeout.
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "{:?}", poller.backend());

            b.write_all(b"x").unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1, "{:?}", poller.backend());
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.token, 7);
            assert!(ev.readable);

            // Oneshot: the byte is still unread, but the fd is disarmed.
            let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
            assert_eq!(n, 0, "{:?} must not redeliver before rearm", poller.backend());

            // Rearm while the byte is still pending: level-checked, so the
            // event comes right back.
            poller.rearm(a.as_raw_fd(), 8, Interest::READABLE).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1);
            assert_eq!(events.iter().next().unwrap().token, 8, "rearm can retag the token");
        }
    }

    #[test]
    fn writable_is_immediate_on_an_empty_socket_buffer() {
        for poller in backends() {
            let (a, _b) = pair();
            poller.register(a.as_raw_fd(), 1, Interest::WRITABLE).unwrap();
            let mut events = Events::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1, "{:?}", poller.backend());
            assert!(events.iter().next().unwrap().writable);
        }
    }

    #[test]
    fn both_interests_deliver_read_and_write_readiness_together() {
        for poller in backends() {
            let (a, mut b) = pair();
            b.write_all(b"hi").unwrap();
            poller.register(a.as_raw_fd(), 3, Interest::BOTH).unwrap();
            let mut events = Events::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1);
            let ev = events.iter().next().unwrap();
            assert!(ev.readable && ev.writable, "{ev:?}");
        }
    }

    #[test]
    fn deregistered_descriptors_stay_silent() {
        for poller in backends() {
            let (a, mut b) = pair();
            poller.register(a.as_raw_fd(), 9, Interest::READABLE).unwrap();
            poller.deregister(a.as_raw_fd()).unwrap();
            b.write_all(b"x").unwrap();
            let mut events = Events::new();
            let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
            assert_eq!(n, 0, "{:?}", poller.backend());
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for poller in backends() {
            let poller = std::sync::Arc::new(poller);
            let waker = std::sync::Arc::clone(&poller);
            let start = Instant::now();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Events::new();
            // Block "forever"; only the notify can end this before the test
            // harness times out.
            let n = poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
            assert_eq!(n, 0);
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{:?} wait must be interrupted by notify",
                poller.backend()
            );
            t.join().unwrap();
        }
    }

    #[test]
    fn sticky_notify_makes_the_next_wait_return_immediately() {
        for poller in backends() {
            poller.notify().unwrap();
            let mut events = Events::new();
            let start = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            assert_eq!(n, 0);
            assert!(start.elapsed() < Duration::from_secs(5));
            // The wakeup is consumed: the next wait times out normally.
            let start = Instant::now();
            poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert!(start.elapsed() >= Duration::from_millis(5), "{:?}", poller.backend());
        }
    }

    #[test]
    fn hangup_is_delivered_as_readable() {
        for poller in backends() {
            let (mut a, b) = pair();
            poller.register(a.as_raw_fd(), 4, Interest::READABLE).unwrap();
            drop(b);
            let mut events = Events::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1, "{:?}", poller.backend());
            let ev = *events.iter().next().unwrap();
            assert!(ev.readable, "hangup must force read progress: {ev:?}");
            let mut buf = [0u8; 8];
            assert_eq!(a.read(&mut buf).unwrap(), 0, "the read observes EOF");
        }
    }

    #[test]
    fn distinct_tokens_route_to_their_descriptors() {
        for poller in backends() {
            let (a, mut a_peer) = pair();
            let (b, mut b_peer) = pair();
            poller.register(a.as_raw_fd(), 100, Interest::READABLE).unwrap();
            poller.register(b.as_raw_fd(), 200, Interest::READABLE).unwrap();
            a_peer.write_all(b"x").unwrap();
            b_peer.write_all(b"y").unwrap();
            let mut events = Events::new();
            let mut seen = Vec::new();
            while seen.len() < 2 {
                poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
                seen.extend(events.iter().map(|e| e.token));
                if events.is_empty() {
                    break;
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![100, 200], "{:?}", poller.backend());
        }
    }

    #[test]
    fn reserved_token_is_rejected() {
        for poller in backends() {
            let (a, _b) = pair();
            let err = poller.register(a.as_raw_fd(), u64::MAX, Interest::READABLE).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        }
    }

    #[test]
    fn fd_limit_helpers_report_and_raise() {
        let (soft, hard) = fd_limit().expect("getrlimit");
        assert!(soft > 0 && hard >= soft, "soft={soft} hard={hard}");
        let raised = raise_fd_limit().expect("setrlimit");
        assert_eq!(raised, hard, "soft limit raised to the hard limit");
        assert_eq!(fd_limit().unwrap().0, hard);
    }

    #[test]
    fn timeout_ms_rounds_up_submillisecond_waits() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(10))), 1, "no busy-spin");
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
    }
}
