//! The portable `poll(2)` backend: an interest table consulted on every
//! `wait`, with oneshot delivery emulated by clearing a descriptor's
//! interest when an event for it fires. Registration changes from other
//! threads take effect immediately because every mutation tickles the
//! self-pipe, interrupting an in-flight `poll`.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

use crate::sys::{self, cvt, PollFd};
use crate::{timeout_ms, Event, Events, Interest};

#[derive(Clone, Copy)]
struct Entry {
    token: u64,
    /// `None` = disarmed (oneshot already delivered, awaiting rearm).
    armed: Option<Interest>,
}

pub(crate) struct PollBackend {
    table: Mutex<HashMap<RawFd, Entry>>,
    notify_r: Mutex<UnixStream>,
    notify_w: Mutex<UnixStream>,
}

impl PollBackend {
    pub(crate) fn new() -> io::Result<PollBackend> {
        let (notify_r, notify_w) = UnixStream::pair()?;
        notify_r.set_nonblocking(true)?;
        notify_w.set_nonblocking(true)?;
        Ok(PollBackend {
            table: Mutex::new(HashMap::new()),
            notify_r: Mutex::new(notify_r),
            notify_w: Mutex::new(notify_w),
        })
    }

    pub(crate) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut table = self.table.lock().expect("poll table poisoned");
        if table.insert(fd, Entry { token, armed: Some(interest) }).is_some() {
            // Match epoll: double-registration is an error (use rearm).
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "descriptor already registered",
            ));
        }
        drop(table);
        self.notify()
    }

    pub(crate) fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut table = self.table.lock().expect("poll table poisoned");
        match table.get_mut(&fd) {
            Some(entry) => {
                *entry = Entry { token, armed: Some(interest) };
                drop(table);
                self.notify()
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "descriptor not registered")),
        }
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut table = self.table.lock().expect("poll table poisoned");
        match table.remove(&fd) {
            Some(_) => {
                drop(table);
                self.notify()
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "descriptor not registered")),
        }
    }

    pub(crate) fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        // Snapshot the armed set; the table lock is NOT held across poll().
        let notify_fd = self.notify_r.lock().expect("notify pipe poisoned").as_raw_fd();
        let mut fds: Vec<PollFd> = vec![PollFd { fd: notify_fd, events: sys::POLLIN, revents: 0 }];
        {
            let table = self.table.lock().expect("poll table poisoned");
            for (&fd, entry) in table.iter() {
                let Some(interest) = entry.armed else { continue };
                let mut mask = 0i16;
                if interest.is_readable() {
                    mask |= sys::POLLIN;
                }
                if interest.is_writable() {
                    mask |= sys::POLLOUT;
                }
                fds.push(PollFd { fd, events: mask, revents: 0 });
            }
        }
        // SAFETY: `fds` is a valid pollfd array of the stated length.
        match cvt(unsafe { sys::poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) }) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(0),
            Err(e) => return Err(e),
        }
        if fds[0].revents != 0 {
            let mut drain = [0u8; 64];
            let mut pipe = self.notify_r.lock().expect("notify pipe poisoned");
            while matches!(pipe.read(&mut drain), Ok(n) if n > 0) {}
        }
        let mut table = self.table.lock().expect("poll table poisoned");
        for pfd in &fds[1..] {
            if pfd.revents == 0 {
                continue;
            }
            // The entry may have been deregistered or retagged while poll()
            // ran; only the current table state is authoritative.
            let Some(entry) = table.get_mut(&pfd.fd) else { continue };
            if entry.armed.is_none() {
                continue;
            }
            entry.armed = None; // oneshot delivery
            let hangup = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            events.push(Event {
                token: entry.token,
                readable: pfd.revents & sys::POLLIN != 0 || hangup,
                writable: pfd.revents & sys::POLLOUT != 0,
                hangup,
            });
        }
        Ok(events.len())
    }

    pub(crate) fn notify(&self) -> io::Result<()> {
        let mut pipe = self.notify_w.lock().expect("notify pipe poisoned");
        match pipe.write(&[1]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}
