//! Thin libc-style FFI declarations — the only unsafe surface of the
//! crate. Only the handful of calls the two backends need are declared;
//! constants are the Linux/POSIX values.

use std::io;

pub(crate) type CInt = i32;

// --- poll(2) ---------------------------------------------------------------

/// `struct pollfd` (POSIX layout).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    pub fd: CInt,
    pub events: i16,
    pub revents: i16,
}

pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;
pub(crate) const POLLERR: i16 = 0x008;
pub(crate) const POLLHUP: i16 = 0x010;

extern "C" {
    // `nfds_t` is `unsigned long`, which matches `usize` on the supported
    // LP64/ILP32 Unix targets.
    pub(crate) fn poll(fds: *mut PollFd, nfds: usize, timeout: CInt) -> CInt;
}

// --- epoll (Linux) ---------------------------------------------------------

#[cfg(target_os = "linux")]
pub(crate) use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use super::CInt;

    /// `struct epoll_event`. The kernel ABI packs it on x86 so 32- and
    /// 64-bit layouts agree; other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Debug, Clone, Copy)]
    pub(crate) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub(crate) const EPOLL_CLOEXEC: CInt = 0o2000000;
    pub(crate) const EPOLL_CTL_ADD: CInt = 1;
    pub(crate) const EPOLL_CTL_DEL: CInt = 2;
    pub(crate) const EPOLL_CTL_MOD: CInt = 3;

    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;
    pub(crate) const EPOLLONESHOT: u32 = 1 << 30;

    extern "C" {
        pub(crate) fn epoll_create1(flags: CInt) -> CInt;
        pub(crate) fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
        pub(crate) fn epoll_wait(
            epfd: CInt,
            events: *mut EpollEvent,
            maxevents: CInt,
            timeout: CInt,
        ) -> CInt;
        pub(crate) fn close(fd: CInt) -> CInt;
    }
}

// --- RLIMIT_NOFILE ---------------------------------------------------------

/// `struct rlimit`. `rlim_t` is 64-bit on every supported target (glibc,
/// musl, and the BSDs use a 64-bit `rlim_t` on LP64; 32-bit Linux with
/// large-file support likewise).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct Rlimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: CInt = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: CInt = 8; // the BSD/macOS value

extern "C" {
    fn getrlimit(resource: CInt, rlim: *mut Rlimit) -> CInt;
    fn setrlimit(resource: CInt, rlim: *const Rlimit) -> CInt;
}

pub(crate) fn fd_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid, writable rlimit struct.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((lim.cur, lim.max))
}

pub(crate) fn raise_fd_limit() -> io::Result<u64> {
    let (soft, hard) = fd_limit()?;
    if soft >= hard {
        return Ok(soft);
    }
    let lim = Rlimit { cur: hard, max: hard };
    // SAFETY: `lim` is a valid, initialized rlimit struct.
    if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(hard)
}

/// `Ok` for a zero return, `last_os_error` otherwise — the return-code
/// convention shared by every call declared here.
pub(crate) fn cvt(ret: CInt) -> io::Result<CInt> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}
