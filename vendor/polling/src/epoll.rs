//! The Linux epoll backend: `EPOLLONESHOT` registrations, a nonblocking
//! socketpair as the self-pipe waker, O(ready) event dispatch.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

use crate::sys::{self, cvt, EpollEvent};
use crate::{timeout_ms, Event, Events, Interest, NOTIFY_TOKEN};

/// Most events drained per `epoll_wait` call; more ready descriptors are
/// simply delivered by the next call.
const MAX_EVENTS: usize = 256;

pub(crate) struct Epoll {
    epfd: RawFd,
    /// Self-pipe read side, registered level-triggered (not oneshot) under
    /// [`NOTIFY_TOKEN`]; `wait` drains it and never reports it.
    notify_r: Mutex<UnixStream>,
    notify_w: Mutex<UnixStream>,
}

fn interest_flags(interest: Interest) -> u32 {
    let mut flags = sys::EPOLLONESHOT | sys::EPOLLRDHUP;
    if interest.is_readable() {
        flags |= sys::EPOLLIN;
    }
    if interest.is_writable() {
        flags |= sys::EPOLLOUT;
    }
    flags
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        let (notify_r, notify_w) = UnixStream::pair()?;
        notify_r.set_nonblocking(true)?;
        notify_w.set_nonblocking(true)?;
        let mut ev = EpollEvent { events: sys::EPOLLIN, data: NOTIFY_TOKEN };
        // SAFETY: `ev` is valid for the duration of the call.
        if let Err(e) =
            cvt(unsafe { sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, notify_r.as_raw_fd(), &mut ev) })
        {
            // SAFETY: epfd came from epoll_create1 above.
            unsafe { sys::close(epfd) };
            return Err(e);
        }
        Ok(Epoll { epfd, notify_r: Mutex::new(notify_r), notify_w: Mutex::new(notify_w) })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest_flags(interest), data: token };
        // SAFETY: `ev` is valid for the duration of the call.
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    pub(crate) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    pub(crate) fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        // A dummy event keeps pre-2.6.9 kernels happy (they reject NULL).
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: `ev` is valid for the duration of the call.
        cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    pub(crate) fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: `raw` is a valid buffer of MAX_EVENTS entries.
        let n = match cvt(unsafe {
            sys::epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms(timeout))
        }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(0),
            Err(e) => return Err(e),
        };
        for ev in &raw[..n] {
            // Copy out of the (packed on x86) struct before use.
            let (flags, token) = (ev.events, ev.data);
            if token == NOTIFY_TOKEN {
                let mut drain = [0u8; 64];
                let mut pipe = self.notify_r.lock().expect("notify pipe poisoned");
                while matches!(pipe.read(&mut drain), Ok(n) if n > 0) {}
                continue;
            }
            let hangup = flags & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            events.push(Event {
                token,
                readable: flags & sys::EPOLLIN != 0 || hangup,
                writable: flags & sys::EPOLLOUT != 0,
                hangup,
            });
        }
        Ok(events.len())
    }

    pub(crate) fn notify(&self) -> io::Result<()> {
        let mut pipe = self.notify_w.lock().expect("notify pipe poisoned");
        match pipe.write(&[1]) {
            Ok(_) => Ok(()),
            // A full pipe already guarantees a pending wakeup.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is closed exactly once.
        unsafe { sys::close(self.epfd) };
    }
}
