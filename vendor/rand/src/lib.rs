//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the small subset the ASCYLIB-RS harness uses: [`SeedableRng`],
//! [`Rng::random_range`] over integer ranges, and [`rngs::SmallRng`] (an
//! xoshiro256++ generator, the same family the real `SmallRng` uses on
//! 64-bit platforms). It is *not* a cryptographic RNG.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (the little-endian byte stream of
    /// successive [`next_u64`](Self::next_u64) words, as the real
    /// `rand_core` does), so payload generators don't hand-roll byte loops.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
    }
}

/// A random number generator seedable from a `u64` (subset of the real
/// trait: the harness only ever uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Maps a uniform `u64` onto `[0, span)` with Lemire's multiply-shift
/// reduction (no modulo bias worth worrying about for benchmarking).
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

/// Types with a canonical "standard" uniform distribution, samplable through
/// [`Rng::random`] (the stand-in for the real crate's `StandardUniform`
/// distribution): floats are uniform in `[0, 1)`, integers over their full
/// domain, `bool` is a fair coin.
pub trait StandardSample: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits (the full mantissa width),
    /// so every value is an exact multiple of 2⁻⁵³ and 1.0 is unreachable.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits (the `f32` mantissa width).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a value from the type's standard distribution
    /// (`rng.random::<f64>()` is uniform in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a value uniformly sampled from the given range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns a random boolean.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), matching
    /// the algorithm family of the real `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the real rand_core does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let a = rng.random_range(1..=100u64);
            assert!((1..=100).contains(&a));
            let b = rng.random_range(0..100u32);
            assert!(b < 100);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (
            a.random_range(0..u64::MAX),
            b.random_range(0..u64::MAX),
            c.random_range(0..u64::MAX),
        );
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_deterministic() {
        let mut a = SmallRng::seed_from_u64(0xF00D);
        let mut b = SmallRng::seed_from_u64(0xF00D);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = a.random();
            assert!((0.0..1.0).contains(&x), "f64 sample out of [0,1): {x}");
            assert_eq!(x, b.random::<f64>(), "same seed must give same stream");
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "f64 mean far from 0.5: {mean}");
    }

    #[test]
    fn f32_samples_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x), "f32 sample out of [0,1): {x}");
        }
    }

    #[test]
    fn standard_bool_hits_both_values() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut trues = 0;
        for _ in 0..1_000 {
            if rng.random::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "bool heavily biased: {trues}/1000");
    }

    #[test]
    fn fill_bytes_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(0xB10B);
        let mut b = SmallRng::seed_from_u64(0xB10B);
        let mut c = SmallRng::seed_from_u64(0xB10C);
        let (mut x, mut y, mut z) = ([0u8; 64], [0u8; 64], [0u8; 64]);
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        c.fill_bytes(&mut z);
        assert_eq!(x, y, "same seed must give the same byte stream");
        assert_ne!(x, z, "different seeds must diverge");
    }

    #[test]
    fn fill_bytes_matches_the_u64_stream_at_every_length() {
        // The byte stream is the little-endian serialization of next_u64
        // words, including a partial trailing word — for all tail lengths.
        for len in 0..=17usize {
            let mut bytes_rng = SmallRng::seed_from_u64(7);
            let mut word_rng = SmallRng::seed_from_u64(7);
            let mut buf = vec![0u8; len];
            bytes_rng.fill_bytes(&mut buf);
            let mut expected = Vec::with_capacity(len + 8);
            while expected.len() < len {
                expected.extend_from_slice(&word_rng.next_u64().to_le_bytes());
            }
            expected.truncate(len);
            assert_eq!(buf, expected, "length {len}");
            // After a partial word the two streams resynchronize: the next
            // word drawn from each generator is identical.
            assert_eq!(bytes_rng.next_u64(), word_rng.next_u64(), "length {len}");
        }
    }

    #[test]
    fn fill_bytes_covers_all_byte_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut buf = vec![0u8; 64 * 1024];
        rng.fill_bytes(&mut buf);
        let mut seen = [false; 256];
        for &b in &buf {
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 KiB of random bytes must hit every value");
        // NUL and newline bytes do appear — the payloads the wire tests
        // round-trip are genuinely binary.
        assert!(buf.contains(&0) && buf.contains(&b'\n') && buf.contains(&b'\r'));
    }

    #[test]
    fn fill_bytes_of_empty_slice_is_a_noop() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        a.fill_bytes(&mut []);
        assert_eq!(a.next_u64(), b.next_u64(), "empty fill must not consume words");
    }

    #[test]
    fn range_samples_cover_the_space_roughly_uniformly() {
        let mut rng = SmallRng::seed_from_u64(123);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10u32) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "bucket {i} undersampled: {c}");
        }
    }
}
