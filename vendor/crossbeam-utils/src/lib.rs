//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the one item ASCYLIB-RS uses: [`CachePadded`], with the same
//! alignment strategy as the real crate (128 bytes on x86_64/aarch64 to cover
//! adjacent-line prefetchers, 64 elsewhere).

#![warn(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing false
/// sharing between adjacent values.
#[derive(Clone, Copy, Default, Hash, PartialEq, Eq)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "aarch64")), repr(align(64)))]
pub struct CachePadded<T> {
    value: T,
}

// Same auto-trait surface as the real crate.
unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded").field("value", &self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_do_not_share_cache_lines() {
        let pair = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 64, "padding too small: {}", b - a);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
