//! Workspace façade for the ASCYLIB-RS reproduction of *"Asynchronized
//! Concurrency: The Secret to Scaling Concurrent Search Data Structures"*
//! (ASPLOS 2015).
//!
//! This crate only re-exports the member crates; see [`ascylib`] for the
//! data structures, [`ascylib_harness`] for the evaluation harness, and the
//! `examples/` directory for runnable end-to-end scenarios.

pub use ascylib;
pub use ascylib_harness;
pub use ascylib_server;
pub use ascylib_shard;
pub use ascylib_ssmem;
pub use ascylib_sync;
