//! Workspace integration tests: exercise every registered algorithm through
//! the public API, across crates (core + harness + shard), including
//! property-based tests with proptest.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use ascylib::api::{ConcurrentMap, StructureKind};
use ascylib::ordered::OrderedMap;
use ascylib::registry;
use ascylib_harness::{run_benchmark, run_benchmark_ordered, KeyDist, OpMix, WorkloadBuilder};
use ascylib_shard::ShardedMap;

/// Every registered algorithm passes the shared concurrent test battery.
#[test]
fn all_linearizable_algorithms_pass_partitioned_concurrency() {
    for entry in registry::all_algorithms() {
        if entry.asynchronized {
            continue;
        }
        let map = (entry.construct)(512);
        let name = entry.name;
        let threads = 4;
        let keys_per_thread = 48u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let map = Arc::clone(&map);
            handles.push(std::thread::spawn(move || {
                let base = t as u64 * keys_per_thread + 1;
                for k in base..base + keys_per_thread {
                    assert!(map.insert(k, k * 2), "{name}: insert({k})");
                }
                for k in (base..base + keys_per_thread).step_by(2) {
                    assert_eq!(map.remove(k), Some(k * 2));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut expected = 0;
        for t in 0..threads {
            let base = t as u64 * keys_per_thread + 1;
            for k in base..base + keys_per_thread {
                let present = (k - base) % 2 == 1;
                assert_eq!(
                    map.search(k).is_some(),
                    present,
                    "{}: final state of {k}",
                    entry.name
                );
                if present {
                    expected += 1;
                }
            }
        }
        assert_eq!(map.size(), expected, "{}", entry.name);
    }
}

/// The harness produces sane results for one algorithm per structure family.
#[test]
fn harness_runs_each_structure_family() {
    for (name, size) in [
        ("ll-lazy", 128usize),
        ("ht-clht-lb", 1024),
        ("sl-fraser-opt", 1024),
        ("bst-tk", 1024),
    ] {
        let entry = registry::by_name(name).unwrap();
        let w = WorkloadBuilder::new()
            .initial_size(size)
            .update_percent(20)
            .threads(2)
            .duration_ms(40)
            .build();
        let r = run_benchmark((entry.construct)(size * 2), w);
        assert!(r.total_ops > 0, "{name}");
        let delta = r.successful_inserts as i64 - r.successful_removes as i64;
        assert_eq!(r.final_size as i64, size as i64 + delta, "{name}: size bookkeeping");
    }
}

/// A sharded deployment of a registry algorithm runs through the full
/// harness measurement loop under skewed traffic, with intact size
/// bookkeeping (the sharded `size` composes the shard views).
#[test]
fn harness_drives_sharded_maps_under_skew() {
    for dist in [
        KeyDist::Uniform,
        KeyDist::Zipfian { theta: 0.99 },
        KeyDist::Hotspot { hot_fraction: 0.1, hot_prob: 0.9 },
    ] {
        let entry = registry::by_name("ht-clht-lb").unwrap();
        let map = ShardedMap::from_registry(&entry, 4, 1024);
        let w = WorkloadBuilder::new()
            .initial_size(512)
            .update_percent(20)
            .threads(2)
            .duration_ms(40)
            .key_dist(dist)
            .build();
        let r = run_benchmark(Arc::new(map), w);
        assert!(r.total_ops > 0, "{dist}");
        let delta = r.successful_inserts as i64 - r.successful_removes as i64;
        assert_eq!(r.final_size as i64, 512 + delta, "{dist}: size bookkeeping");
    }
}

/// The full scan stack end to end: a YCSB-E preset (95% scans / 5% inserts)
/// driven through the harness over one backing per ordered family, uniform
/// and skewed.
#[test]
fn harness_runs_ycsb_e_over_each_ordered_family() {
    let backings: Vec<(&str, std::sync::Arc<dyn OrderedMap>)> = vec![
        ("ll-harris", Arc::new(ascylib::list::HarrisList::new())),
        ("sl-fraser-opt", Arc::new(ascylib::skiplist::FraserOptSkipList::new())),
        ("bst-tk", Arc::new(ascylib::bst::BstTk::new())),
    ];
    for (name, map) in backings {
        let w = WorkloadBuilder::new()
            .initial_size(256)
            .op_mix(OpMix::ycsb_e())
            .threads(2)
            .duration_ms(40)
            .zipfian(0.99)
            .build();
        let r = run_benchmark_ordered(map, w);
        assert!(r.total_ops > 0, "{name}");
        assert!(r.scans > 0, "{name}: YCSB-E must scan");
        assert!(r.scan_keys_returned > 0, "{name}: scans over a populated table return keys");
        let delta = r.successful_inserts as i64 - r.successful_removes as i64;
        assert_eq!(r.final_size as i64, 256 + delta, "{name}: size bookkeeping");
    }
}

/// A *sharded* ordered deployment exposes the same scan surface: the harness
/// drives YCSB-E against it, and a direct sweep confirms globally key-ordered
/// scatter-gather results.
#[test]
fn harness_runs_ycsb_e_over_a_sharded_ordered_map() {
    let map = Arc::new(ShardedMap::new(4, |_| ascylib::skiplist::FraserOptSkipList::new()));
    let w = WorkloadBuilder::new()
        .initial_size(512)
        .op_mix(OpMix::ycsb_e())
        .threads(2)
        .duration_ms(40)
        .build();
    let r = run_benchmark_ordered(map.clone(), w);
    assert!(r.scans > 0);
    let delta = r.successful_inserts as i64 - r.successful_removes as i64;
    assert_eq!(r.final_size as i64, 512 + delta);
    // Post-run sweep: globally ordered and consistent with the size.
    let mut all = Vec::new();
    map.range_search(1, u64::MAX, &mut all);
    assert_eq!(all.len(), map.size());
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scatter-gather order violated");
}

/// The full serving stack across crates: the *same* workload vocabulary
/// (OpMix preset + key distribution) drives a sharded map in-process via
/// the harness and over loopback TCP via the wire tier's load generator —
/// the loopback side now moving real byte payloads through the blob layer;
/// both must serve traffic, and the in-process result must serialize
/// through the stable JSON emitter.
#[test]
fn serving_tier_replays_a_harness_workload_over_loopback() {
    use ascylib_server::loadgen::{self, LoadGenConfig};
    use ascylib_server::{BlobStore, Server, ServerConfig, ValueSize};
    use ascylib_shard::BlobMap;

    // In-process: harness measurement over a 4-shard CLHT.
    let entry = registry::by_name("ht-clht-lb").unwrap();
    let w = WorkloadBuilder::new()
        .initial_size(512)
        .op_mix(OpMix::ycsb_b())
        .threads(2)
        .duration_ms(40)
        .zipfian(0.99)
        .build();
    let in_process =
        run_benchmark(Arc::new(ShardedMap::from_registry(&entry, 4, 1024)), w);
    assert!(in_process.total_ops > 0);
    let json = ascylib_harness::report::to_json(&in_process);
    assert!(json.contains("\"dist\":\"zipf(0.99)\""), "{json}");
    assert!(json.contains(&format!("\"total_ops\":{}", in_process.total_ops)));

    // Over loopback: same mix, same distribution, same sharding and the
    // same CLHT backing — through sockets, frames, the closed-loop client,
    // and the blob-value layer (registry shards drop straight into BlobMap
    // via the `Arc<dyn ConcurrentMap>` blanket impl).
    let per_shard = 1024 / 4;
    let map = Arc::new(BlobMap::new(4, |_| (entry.construct)(per_shard)));
    let server = Server::start(
        "127.0.0.1:0",
        BlobStore::new(Arc::clone(&map)),
        ServerConfig::for_connections(2),
    )
    .expect("ephemeral bind");
    loadgen::prefill(server.addr(), 512, 1024, ValueSize::Fixed(32), 7).expect("prefill");
    let r = loadgen::run(
        server.addr(),
        &LoadGenConfig {
            connections: 2,
            duration_ms: 40,
            mix: OpMix::ycsb_b(),
            dist: KeyDist::Zipfian { theta: 0.99 },
            key_range: 1024,
            value_size: ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 },
            pipeline_depth: 8,
            ..LoadGenConfig::default()
        },
    )
    .expect("loadgen run");
    assert!(r.total_ops > 0);
    assert_eq!(r.errors, 0);
    assert!(r.hits > 0, "zipf head over a prefilled keyspace must hit");
    assert!(
        r.payload_bytes_read > 0 && r.payload_bytes_written > 0,
        "the replay must move payload bytes both ways"
    );
    // Mutations over the wire land in the map the test kept a handle to:
    // write a sentinel through a fresh client, observe it in-process.
    let mut probe = ascylib_server::Client::connect(server.addr()).expect("probe connect");
    let sentinel = 1_000_000u64;
    assert!(probe.set(sentinel, b"forty-two").expect("wire SET"));
    assert_eq!(
        map.get_owned(sentinel),
        Some(b"forty-two".to_vec()),
        "wire mutation visible through the Arc"
    );
    probe.quit().expect("quit");
    let stats = server.join();
    assert!(stats.ops > r.total_ops, "server accounted the keyspace ops it served");
    assert_eq!(stats.errors, 0);
}
#[test]
fn skewed_traffic_actually_skews_the_op_stream() {
    let sampler = ascylib_harness::KeySampler::new(KeyDist::Zipfian { theta: 0.99 }, 1_000);
    use rand::{rngs::SmallRng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(9);
    let mut head = 0usize;
    let draws = 20_000;
    for _ in 0..draws {
        if sampler.sample(&mut rng) <= 10 {
            head += 1;
        }
    }
    // Uniform would put ~1% on the 10-key head; zipf(0.99) puts ~40%.
    assert!(head as f64 / draws as f64 > 0.25, "head fraction {head}/{draws}");
}

/// The registry covers all four structures of Table 1.
#[test]
fn registry_structure_coverage() {
    for kind in [
        StructureKind::LinkedList,
        StructureKind::HashTable,
        StructureKind::SkipList,
        StructureKind::Bst,
    ] {
        assert!(registry::by_structure(kind).len() >= 5, "{kind}");
    }
}

/// Property-based differential testing: arbitrary operation sequences applied
/// to a CSDS and to a `BTreeMap` model must agree. One representative per
/// structure family is checked (the full matrix runs in the unit tests).
fn check_against_model(make: impl Fn() -> Arc<dyn ConcurrentMap>, ops: &[(u8, u64)]) {
    let map = make();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, &(op, key)) in ops.iter().enumerate() {
        let key = 1 + key % 64;
        match op % 3 {
            0 => {
                let expected = !model.contains_key(&key);
                assert_eq!(map.insert(key, i as u64), expected, "insert({key}) step {i}");
                model.entry(key).or_insert(i as u64);
            }
            1 => {
                assert_eq!(map.remove(key), model.remove(&key), "remove({key}) step {i}");
            }
            _ => {
                assert_eq!(map.search(key), model.get(&key).copied(), "search({key}) step {i}");
            }
        }
    }
    assert_eq!(map.size(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_lazy_list_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::list::LazyList::new()), &ops);
    }

    #[test]
    fn prop_harris_opt_list_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::list::HarrisOptList::new()), &ops);
    }

    #[test]
    fn prop_clht_lb_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::hashtable::ClhtLb::with_capacity(32)), &ops);
    }

    #[test]
    fn prop_clht_lf_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::hashtable::ClhtLf::with_capacity(32)), &ops);
    }

    #[test]
    fn prop_fraser_skiplist_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::skiplist::FraserSkipList::new()), &ops);
    }

    #[test]
    fn prop_bst_tk_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::bst::BstTk::new()), &ops);
    }

    #[test]
    fn prop_natarajan_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::bst::NatarajanBst::new()), &ops);
    }

    #[test]
    fn prop_ellen_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400)) {
        check_against_model(|| Arc::new(ascylib::bst::EllenBst::new()), &ops);
    }
}
