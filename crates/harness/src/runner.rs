//! The multi-threaded measurement loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ascylib::api::ConcurrentMap;
use ascylib::ordered::OrderedMap;
use ascylib::stats::{self, OpCounters};

use crate::workload::{populate, Operation, Workload};

/// The operation kinds of the layered CSDS interface (the paper's three
/// point operations plus range scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `search(key)`.
    Search,
    /// `insert(key, value)`.
    Insert,
    /// `remove(key)`.
    Remove,
    /// `scan(from, n)` / `range_search(lo, hi, out)`.
    Scan,
}

/// Latency percentiles (nanoseconds) over the sampled operations, as plotted
/// in the paper's latency-distribution panels (1/25/50/75/99), extended with
/// the high tail (p999/p9999/max) that open-loop overload measurement needs.
///
/// Also reused for any sampled per-operation count (e.g. keys returned per
/// scan), where the "nanoseconds" are just units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// 1st percentile.
    pub p1: u64,
    /// 25th percentile.
    pub p25: u64,
    /// Median.
    pub p50: u64,
    /// 75th percentile.
    pub p75: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (see [`resolves`](Self::resolves)).
    pub p999: u64,
    /// 99.99th percentile (see [`resolves`](Self::resolves)).
    pub p9999: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples.
    pub samples: usize,
}

impl LatencyStats {
    /// Computes percentiles from raw nanosecond samples.
    ///
    /// The low/mid percentiles (p1–p99) use nearest-index interpolation as
    /// before. The tail quantiles (p999/p9999) use the nearest-rank
    /// definition (`ceil(q·n)`), which is exact when the sample count
    /// resolves them and **degenerates to `max` otherwise** — e.g. p9999 of
    /// 500 samples *is* the maximum, by construction, not an estimate.
    /// Check [`resolves`](Self::resolves) before reading meaning into a
    /// tail quantile from a small run.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((samples.len() - 1) as f64 * p / 100.0).round() as usize;
            samples[idx]
        };
        // Nearest rank: the smallest sample ≥ the requested fraction of the
        // distribution. Clamped, so under-resolved quantiles report max.
        let rank = |q: f64| -> u64 {
            let r = (samples.len() as f64 * q).ceil() as usize;
            samples[r.clamp(1, samples.len()) - 1]
        };
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        Self {
            p1: pct(1.0),
            p25: pct(25.0),
            p50: pct(50.0),
            p75: pct(75.0),
            p99: pct(99.0),
            p999: rank(0.999),
            p9999: rank(0.9999),
            max: *samples.last().expect("non-empty"),
            mean,
            samples: samples.len(),
        }
    }

    /// `true` if the sample count is large enough for the `q`-quantile
    /// (e.g. `0.999`) to be distinguishable from the maximum — at least
    /// `1/(1-q)` samples. Below that, the tail fields are exact for the
    /// data observed but carry no information beyond `max`.
    pub fn resolves(&self, q: f64) -> bool {
        // Rounding keeps binary-representation noise (1 - 0.9999 is not
        // exactly 1e-4) from shifting the threshold by one sample.
        q < 1.0 && self.samples as f64 >= (1.0 / (1.0 - q)).round()
    }
}

/// The outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// The workload that was run.
    pub workload: Workload,
    /// Total completed operations across all threads.
    pub total_ops: u64,
    /// Throughput in operations per second.
    pub throughput: f64,
    /// Throughput in mega-operations per second (the unit of the paper's
    /// plots).
    pub mops: f64,
    /// Successful insertions.
    pub successful_inserts: u64,
    /// Successful removals.
    pub successful_removes: u64,
    /// Unsuccessful updates (parse showed the update could not succeed).
    pub unsuccessful_updates: u64,
    /// Completed range scans.
    pub scans: u64,
    /// Total keys returned across all scans.
    pub scan_keys_returned: u64,
    /// Latency of searches.
    pub search_latency: LatencyStats,
    /// Latency of successful updates.
    pub successful_update_latency: LatencyStats,
    /// Latency of unsuccessful updates.
    pub unsuccessful_update_latency: LatencyStats,
    /// Latency of range scans.
    pub scan_latency: LatencyStats,
    /// Distribution of keys returned per scan (over the sampled scans; the
    /// percentile fields are key counts, not nanoseconds).
    pub scan_length: LatencyStats,
    /// Raw sampled scan lengths (keys returned per sampled scan), for
    /// histogram emitters.
    pub scan_length_samples: Vec<u64>,
    /// Aggregated instrumentation counters (shared stores, CAS, restarts,
    /// traversals) across all worker threads.
    pub counters: OpCounters,
    /// Structure size after the run (sanity check: should stay near `N`).
    pub final_size: usize,
    /// Wall-clock duration of the measurement.
    pub elapsed: Duration,
}

impl BenchmarkResult {
    /// Estimated cache-line transfers per operation (the paper's Figure 3
    /// proxy).
    pub fn transfers_per_op(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.counters.cache_line_transfers() as f64 / self.total_ops as f64
        }
    }

    /// Atomic operations per successful update (the §5/ASCY4 metric).
    pub fn atomics_per_successful_update(&self) -> f64 {
        let updates = self.successful_inserts + self.successful_removes;
        if updates == 0 {
            0.0
        } else {
            self.counters.atomic_ops as f64 / updates as f64
        }
    }

    /// Scans per second.
    pub fn scan_throughput(&self) -> f64 {
        self.scans as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Average keys returned per scan (0 if the mix had no scans).
    pub fn keys_per_scan(&self) -> f64 {
        if self.scans == 0 {
            0.0
        } else {
            self.scan_keys_returned as f64 / self.scans as f64
        }
    }
}

#[derive(Default)]
struct ThreadOutput {
    ops: u64,
    successful_inserts: u64,
    successful_removes: u64,
    unsuccessful_updates: u64,
    scans: u64,
    scan_keys: u64,
    search_samples: Vec<u64>,
    success_update_samples: Vec<u64>,
    fail_update_samples: Vec<u64>,
    scan_samples: Vec<u64>,
    scan_length_samples: Vec<u64>,
    counters: OpCounters,
}

/// How the engine executes a scan on `M` into a reused per-thread buffer (a
/// plain `fn` so it is `Copy` and freely cloneable into the worker threads).
/// `None` means the mix was verified scan-free.
type ScanFn<M> = fn(&M, u64, usize, &mut Vec<(u64, u64)>) -> usize;

/// Runs one benchmark over the point-operation interface: populates the
/// structure, then has `workload.threads` threads apply the operation mix
/// for `workload.duration_ms` milliseconds.
///
/// Mirrors the paper's settings: keys are drawn from `[1, 2N]`, the update
/// share is split into half insertions and half removals, and each
/// measurement reports the aggregate throughput plus sampled latencies.
///
/// # Panics
///
/// If the workload's mix contains scans — those need the ordered interface;
/// use [`run_benchmark_ordered`].
pub fn run_benchmark(map: Arc<dyn ConcurrentMap>, workload: Workload) -> BenchmarkResult {
    assert!(
        !workload.mix.has_scans(),
        "the operation mix contains scans; drive it with run_benchmark_ordered over an OrderedMap"
    );
    engine(map, workload, None)
}

/// [`run_benchmark`] over the ordered interface: accepts any operation mix,
/// including scan-heavy ones (YCSB-E).
pub fn run_benchmark_ordered(map: Arc<dyn OrderedMap>, workload: Workload) -> BenchmarkResult {
    fn do_scan(map: &dyn OrderedMap, from: u64, n: usize, out: &mut Vec<(u64, u64)>) -> usize {
        map.scan_into(from, n, out)
    }
    engine(map, workload, Some(do_scan))
}

/// The shared measurement engine, generic over the structure interface so
/// both entry points reuse one loop.
fn engine<M>(map: Arc<M>, mut workload: Workload, scan: Option<ScanFn<M>>) -> BenchmarkResult
where
    M: ConcurrentMap + ?Sized + 'static,
{
    // The mix's fields are pub (a hand-assembled Workload may bypass the
    // builder), so re-validate here: a zero total or zero scan_len would
    // panic the dice/length draws below.
    workload.mix = workload.mix.validated();
    populate(&map, &workload, 0xA5C1_11B5);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(workload.threads + 1));
    let mut handles = Vec::new();

    for thread_id in 0..workload.threads {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            stats::reset();
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ ((thread_id as u64 + 1) * 0x9E37_79B9));
            let sampler = workload.key_sampler();
            let mix = workload.mix;
            let dice_range = mix.total();
            let mut out = ThreadOutput::default();
            // Reused across all of this thread's scans so the measured scan
            // latency is traversal, not allocator churn.
            let mut scan_buf: Vec<(u64, u64)> = Vec::new();
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                // Run a small batch between stop-flag checks.
                for _ in 0..64 {
                    let key = sampler.sample(&mut rng);
                    let dice = rng.random_range(0..dice_range);
                    let sample = out.ops % workload.latency_sample_every == 0;
                    let start = if sample { Some(Instant::now()) } else { None };
                    let (kind, success) = match mix.sample(dice) {
                        Operation::Read => (OpKind::Search, map.search(key).is_some()),
                        Operation::Insert => (OpKind::Insert, map.insert(key, key)),
                        Operation::Remove => (OpKind::Remove, map.remove(key).is_some()),
                        Operation::Scan { len } => {
                            let scan = scan.expect("checked before spawn: mix has scans");
                            let want = rng.random_range(1..=len as u64) as usize;
                            scan_buf.clear();
                            let got = scan(&map, key, want, &mut scan_buf) as u64;
                            out.scans += 1;
                            out.scan_keys += got;
                            if sample {
                                out.scan_length_samples.push(got);
                            }
                            (OpKind::Scan, got > 0)
                        }
                    };
                    if let Some(start) = start {
                        let nanos = start.elapsed().as_nanos() as u64;
                        match kind {
                            OpKind::Search => out.search_samples.push(nanos),
                            OpKind::Scan => out.scan_samples.push(nanos),
                            OpKind::Insert | OpKind::Remove => {
                                if success {
                                    out.success_update_samples.push(nanos);
                                } else {
                                    out.fail_update_samples.push(nanos);
                                }
                            }
                        }
                    }
                    match (kind, success) {
                        (OpKind::Insert, true) => out.successful_inserts += 1,
                        (OpKind::Remove, true) => out.successful_removes += 1,
                        (OpKind::Insert, false) | (OpKind::Remove, false) => {
                            out.unsuccessful_updates += 1
                        }
                        _ => {}
                    }
                    out.ops += 1;
                }
            }
            out.counters = stats::snapshot();
            out
        }));
    }

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(workload.duration_ms));
    stop.store(true, Ordering::Relaxed);
    let outputs: Vec<ThreadOutput> = handles.into_iter().map(|h| h.join().expect("worker")).collect();
    let elapsed = start.elapsed();

    let mut total_ops = 0u64;
    let mut successful_inserts = 0u64;
    let mut successful_removes = 0u64;
    let mut unsuccessful_updates = 0u64;
    let mut scans = 0u64;
    let mut scan_keys_returned = 0u64;
    let mut search_samples = Vec::new();
    let mut success_update_samples = Vec::new();
    let mut fail_update_samples = Vec::new();
    let mut scan_samples = Vec::new();
    let mut scan_length_samples = Vec::new();
    let mut counters = OpCounters::default();
    // Each ThreadOutput is written by exactly one worker and read only after
    // its join (the happens-before edge), so there are no lost updates here;
    // the only aggregation hazard is overflow of the sums, hence saturating
    // adds (clamping at u64::MAX is obviously-wrong in a report, a wrapped
    // tiny value is not).
    for out in outputs {
        total_ops = total_ops.saturating_add(out.ops);
        successful_inserts = successful_inserts.saturating_add(out.successful_inserts);
        successful_removes = successful_removes.saturating_add(out.successful_removes);
        unsuccessful_updates = unsuccessful_updates.saturating_add(out.unsuccessful_updates);
        scans = scans.saturating_add(out.scans);
        scan_keys_returned = scan_keys_returned.saturating_add(out.scan_keys);
        search_samples.extend(out.search_samples);
        success_update_samples.extend(out.success_update_samples);
        fail_update_samples.extend(out.fail_update_samples);
        scan_samples.extend(out.scan_samples);
        scan_length_samples.extend(out.scan_length_samples);
        counters.merge(&out.counters);
    }
    let throughput = total_ops as f64 / elapsed.as_secs_f64();
    BenchmarkResult {
        workload,
        total_ops,
        throughput,
        mops: throughput / 1e6,
        successful_inserts,
        successful_removes,
        unsuccessful_updates,
        scans,
        scan_keys_returned,
        search_latency: LatencyStats::from_samples(search_samples),
        successful_update_latency: LatencyStats::from_samples(success_update_samples),
        unsuccessful_update_latency: LatencyStats::from_samples(fail_update_samples),
        scan_latency: LatencyStats::from_samples(scan_samples),
        scan_length: LatencyStats::from_samples(scan_length_samples.clone()),
        scan_length_samples,
        counters,
        final_size: map.size(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OpMix, WorkloadBuilder};
    use ascylib::hashtable::ClhtLb;
    use ascylib::list::LazyList;
    use ascylib::skiplist::FraserOptSkipList;

    #[test]
    fn latency_percentiles_are_ordered() {
        let stats = LatencyStats::from_samples((1..=1000u64).collect());
        assert!(stats.p1 <= stats.p25);
        assert!(stats.p25 <= stats.p50);
        assert!(stats.p50 <= stats.p75);
        assert!(stats.p75 <= stats.p99);
        assert_eq!(stats.samples, 1000);
        assert!(stats.mean > 0.0);
    }

    #[test]
    fn empty_samples_are_handled() {
        assert_eq!(LatencyStats::from_samples(Vec::new()), LatencyStats::default());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let stats = LatencyStats::from_samples(vec![37]);
        assert_eq!(stats.p1, 37);
        assert_eq!(stats.p25, 37);
        assert_eq!(stats.p50, 37);
        assert_eq!(stats.p75, 37);
        assert_eq!(stats.p99, 37);
        assert_eq!(stats.p999, 37);
        assert_eq!(stats.p9999, 37);
        assert_eq!(stats.max, 37);
        assert_eq!(stats.mean, 37.0);
        assert_eq!(stats.samples, 1);
        assert!(!stats.resolves(0.999), "1 sample cannot resolve the tail");
    }

    #[test]
    fn tail_quantiles_resolve_with_enough_samples() {
        // 10_000 distinct samples: every tail quantile is exact.
        let stats = LatencyStats::from_samples((1..=10_000u64).collect());
        assert_eq!(stats.p999, 9_990, "nearest rank of the 99.9th");
        assert_eq!(stats.p9999, 9_999);
        assert_eq!(stats.max, 10_000);
        assert!(stats.p99 <= stats.p999 && stats.p999 <= stats.p9999);
        assert!(stats.p9999 <= stats.max);
        assert!(stats.resolves(0.999));
        assert!(stats.resolves(0.9999), "10k samples resolve 1-in-10k");
    }

    #[test]
    fn under_resolved_tail_quantiles_degenerate_to_max_and_say_so() {
        // 100 samples: p99 is resolvable, p999/p9999 are not — they must
        // pin to the maximum rather than interpolate something fictional.
        let stats = LatencyStats::from_samples((1..=100u64).collect());
        assert_eq!(stats.p999, 100);
        assert_eq!(stats.p9999, 100);
        assert_eq!(stats.max, 100);
        assert!(stats.resolves(0.99), "100 samples resolve 1-in-100");
        assert!(!stats.resolves(0.999));
        assert!(!stats.resolves(0.9999));
        // Exactly at the resolution boundary.
        let boundary = LatencyStats::from_samples((1..=1000u64).collect());
        assert!(boundary.resolves(0.999));
        assert_eq!(boundary.p999, 999, "1000 samples: p999 is the 999th rank, not max");
        assert!(!boundary.resolves(0.9999));
        assert_eq!(boundary.p9999, 1000);
    }

    #[test]
    fn tail_quantiles_track_a_spiky_distribution() {
        // 999 fast ops and one outlier: p999 must surface the outlier
        // (nearest rank: ceil(0.999 * 1000) = 999 → the largest fast op;
        // p9999 and max catch the spike).
        let mut samples = vec![100u64; 999];
        samples.push(1_000_000);
        let stats = LatencyStats::from_samples(samples);
        assert_eq!(stats.p99, 100);
        assert_eq!(stats.p999, 100, "the spike is rank 1000 of 1000");
        assert_eq!(stats.p9999, 1_000_000, "under-resolved: degenerates to max");
        assert_eq!(stats.max, 1_000_000);
    }

    #[test]
    fn all_equal_samples_collapse_to_that_value() {
        let stats = LatencyStats::from_samples(vec![500; 1024]);
        assert_eq!(stats.p1, 500);
        assert_eq!(stats.p99, 500);
        assert_eq!(stats.mean, 500.0);
        assert_eq!(stats.samples, 1024);
    }

    #[test]
    fn exact_percentile_boundaries_on_101_samples() {
        // With samples 0..=100, the index formula (len-1) * p/100 lands on
        // integers exactly: percentile p is literally the value p.
        let stats = LatencyStats::from_samples((0..=100u64).collect());
        assert_eq!(stats.p1, 1);
        assert_eq!(stats.p25, 25);
        assert_eq!(stats.p50, 50);
        assert_eq!(stats.p75, 75);
        assert_eq!(stats.p99, 99);
        assert_eq!(stats.mean, 50.0);
    }

    #[test]
    fn two_samples_round_the_median_up() {
        // idx(p50) = (2-1) * 0.5 = 0.5, which rounds to 1.
        let stats = LatencyStats::from_samples(vec![10, 20]);
        assert_eq!(stats.p1, 10);
        assert_eq!(stats.p50, 20);
        assert_eq!(stats.p99, 20);
        assert_eq!(stats.mean, 15.0);
    }

    #[test]
    fn unsorted_input_is_sorted_before_percentiles() {
        let stats = LatencyStats::from_samples(vec![90, 10, 50, 30, 70]);
        assert_eq!(stats.p1, 10);
        assert_eq!(stats.p99, 90);
        assert_eq!(stats.p50, 50);
    }

    #[test]
    fn short_run_produces_sane_results() {
        let workload = WorkloadBuilder::new()
            .initial_size(128)
            .update_percent(20)
            .threads(2)
            .duration_ms(50)
            .build();
        let result = run_benchmark(Arc::new(ClhtLb::with_capacity(256)), workload);
        assert!(result.total_ops > 0);
        assert!(result.throughput > 0.0);
        assert_eq!(result.scans, 0, "scan-free mix must not scan");
        // Size stays near N: successful inserts and removes balance out.
        let delta = result.successful_inserts as i64 - result.successful_removes as i64;
        assert_eq!(result.final_size as i64, 128 + delta);
    }

    #[test]
    fn zipfian_run_keeps_size_bookkeeping() {
        let workload = WorkloadBuilder::new()
            .initial_size(256)
            .update_percent(20)
            .threads(2)
            .duration_ms(40)
            .zipfian(0.99)
            .build();
        let result = run_benchmark(Arc::new(ClhtLb::with_capacity(512)), workload);
        assert!(result.total_ops > 0);
        let delta = result.successful_inserts as i64 - result.successful_removes as i64;
        assert_eq!(result.final_size as i64, 256 + delta);
    }

    #[test]
    fn single_threaded_list_run_counts_operations() {
        let workload = WorkloadBuilder::new()
            .initial_size(64)
            .update_percent(50)
            .threads(1)
            .duration_ms(30)
            .build();
        let result = run_benchmark(Arc::new(LazyList::new()), workload);
        assert!(result.counters.operations > 0);
        assert!(result.transfers_per_op() >= 0.0);
    }

    #[test]
    fn ycsb_e_run_produces_scan_statistics() {
        let workload = WorkloadBuilder::new()
            .initial_size(512)
            .op_mix(OpMix::ycsb_e())
            .threads(2)
            .duration_ms(50)
            .build();
        let result = run_benchmark_ordered(Arc::new(FraserOptSkipList::new()), workload);
        assert!(result.total_ops > 0);
        assert!(result.scans > 0, "YCSB-E is 95% scans");
        assert!(result.scan_keys_returned >= result.scans / 2, "scans over a populated structure return keys");
        assert!(result.scan_throughput() > 0.0);
        assert!(result.keys_per_scan() > 0.0);
        assert!(result.keys_per_scan() <= OpMix::DEFAULT_SCAN_LEN as f64);
        assert!(result.scan_length.samples > 0);
        assert!(result.scan_length.p99 <= OpMix::DEFAULT_SCAN_LEN as u64);
        // Inserts happen too (5%), and the size bookkeeping still holds.
        let delta = result.successful_inserts as i64 - result.successful_removes as i64;
        assert_eq!(result.final_size as i64, 512 + delta);
    }

    #[test]
    fn engine_revalidates_a_hand_mangled_mix() {
        // The mix fields are pub: a caller can corrupt a built workload.
        // The engine must re-validate instead of panicking mid-measurement.
        let mut w = WorkloadBuilder::new()
            .initial_size(64)
            .op_mix(OpMix::ycsb_e())
            .duration_ms(20)
            .build();
        w.mix.scan_len = 0; // would make random_range(1..=0) panic
        let r = run_benchmark_ordered(Arc::new(LazyList::new()), w);
        assert!(r.scans > 0);

        let mut w = WorkloadBuilder::new().initial_size(64).duration_ms(20).build();
        w.mix = OpMix { read: 0, insert: 0, remove: 0, scan: 0, scan_len: 0 }; // zero dice range
        let r = run_benchmark(Arc::new(ClhtLb::with_capacity(128)), w);
        assert!(r.total_ops > 0);
        assert_eq!(r.scans, 0);
    }

    #[test]
    #[should_panic(expected = "run_benchmark_ordered")]
    fn plain_runner_rejects_scan_mixes() {
        let workload = WorkloadBuilder::new().op_mix(OpMix::ycsb_e()).build();
        let _ = run_benchmark(Arc::new(ClhtLb::with_capacity(64)), workload);
    }

    #[test]
    fn ordered_runner_accepts_point_mixes_too() {
        let workload = WorkloadBuilder::new()
            .initial_size(64)
            .update_percent(10)
            .duration_ms(20)
            .build();
        let result = run_benchmark_ordered(Arc::new(LazyList::new()), workload);
        assert!(result.total_ops > 0);
        assert_eq!(result.scans, 0);
    }
}
