//! Plain-text table, CSV, and JSON emitters for the figure benchmarks.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use crate::runner::{BenchmarkResult, LatencyStats};

/// A simple column-aligned table printer.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (values are formatted by the caller).
    pub fn row(&mut self, values: Vec<String>) {
        self.rows.push(values);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV under `target/ascylib/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/ascylib");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = fs::File::create(&path)?;
        writeln!(file, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Renders a labelled ASCII bar chart (used for per-shard load histograms:
/// the bars make a skew-induced hot shard visible at a glance). Bars are
/// scaled so the largest value spans `width` characters.
pub fn histogram(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let mut out = format!("\n== {title} ==\n");
    let max = entries.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_width = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in entries {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:>label_width$}  {:<width$}  {value:.0}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Clamps every quantile at the recorded maximum. `from_samples` stats are
/// already consistent, but histogram-derived ones report each quantile as
/// its bucket's upper bound, and for tiny sample counts an under-resolved
/// tail quantile (p999/p9999) can land in a bucket *above* the one holding
/// the true maximum. The structures that build such stats clamp at the
/// source; the report layer clamps again so hand-assembled or older stats
/// can never print `p9999 > max`.
fn clamp_at_max(s: &LatencyStats) -> LatencyStats {
    let mut c = *s;
    c.p1 = c.p1.min(c.max);
    c.p25 = c.p25.min(c.max);
    c.p50 = c.p50.min(c.max);
    c.p75 = c.p75.min(c.max);
    c.p99 = c.p99.min(c.max);
    c.p999 = c.p999.min(c.max);
    c.p9999 = c.p9999.min(c.max);
    c
}

/// Renders one labelled percentile line for a sampled distribution
/// (latencies in nanoseconds, scan lengths in keys, ... — the unit is the
/// caller's). Prints alongside the latency panels of the figure benches.
/// Quantiles are clamped at the recorded max (see `clamp_at_max`).
pub fn distribution_line(label: &str, unit: &str, s: &LatencyStats) -> String {
    if s.samples == 0 {
        return format!("{label}: no samples\n");
    }
    let s = clamp_at_max(s);
    format!(
        "{label}: p1={} p25={} p50={} p75={} p99={} mean={:.1} {unit} ({} samples)\n",
        s.p1, s.p25, s.p50, s.p75, s.p99, s.mean, s.samples
    )
}

/// Buckets raw per-scan key counts into powers of two and renders them with
/// [`histogram`], so a scan-heavy run shows its length distribution at a
/// glance next to the latency stats.
pub fn scan_length_histogram(title: &str, samples: &[u64], width: usize) -> String {
    if samples.is_empty() {
        return format!("\n== {title} ==\n(no scans sampled)\n");
    }
    // Bucket 0 holds empty scans; bucket i >= 1 holds lengths in
    // [2^(i-1), 2^i - 1] (i.e. i is the bit length of the count).
    let max = samples.iter().copied().max().unwrap_or(0);
    let buckets = (64 - max.leading_zeros()) as usize + 1;
    let mut counts = vec![0u64; buckets];
    for &len in samples {
        counts[(64 - len.leading_zeros()) as usize] += 1;
    }
    let entries: Vec<(String, f64)> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let label = match i {
                0 => "0 keys".to_string(),
                1 => "1 key".to_string(),
                _ => format!("{}-{} keys", 1u64 << (i - 1), (1u64 << i) - 1),
            };
            (label, c as f64)
        })
        .collect();
    histogram(title, &entries, width)
}

/// Bytes over a duration as MB/s (10⁶ bytes per second — bandwidth, like
/// NIC and memory-subsystem figures, uses decimal units).
pub fn mbps(bytes: u64, elapsed: std::time::Duration) -> f64 {
    bytes as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6
}

/// Renders one labelled payload-bandwidth line (read and written sides),
/// printed by the serving benches next to their latency panels.
pub fn bandwidth_line(
    label: &str,
    bytes_read: u64,
    bytes_written: u64,
    elapsed: std::time::Duration,
) -> String {
    format!(
        "{label}: read {:.2} MB/s ({bytes_read} B), wrote {:.2} MB/s ({bytes_written} B)\n",
        mbps(bytes_read, elapsed),
        mbps(bytes_written, elapsed),
    )
}

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number: finite floats print as-is, non-finite ones (which JSON
/// cannot represent) degrade to `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_latency(s: &LatencyStats) -> String {
    let s = &clamp_at_max(s);
    format!(
        concat!(
            "{{\"p1\":{},\"p25\":{},\"p50\":{},\"p75\":{},\"p99\":{},",
            "\"p999\":{},\"p9999\":{},\"max\":{},\"mean\":{},\"samples\":{}}}"
        ),
        s.p1,
        s.p25,
        s.p50,
        s.p75,
        s.p99,
        s.p999,
        s.p9999,
        s.max,
        json_num(s.mean),
        s.samples
    )
}

/// Serializes a [`BenchmarkResult`] as one machine-readable JSON object.
///
/// Field names are **stable**: downstream tooling records bench
/// trajectories as `BENCH_*.json` files (see [`write_json`]) and compares
/// across commits, so renaming a key is a breaking change. Everything the
/// text emitters print is here: the workload (`initial_size`, `threads`,
/// `duration_ms`, `dist`, the full `mix`), the counts, the derived rates,
/// and all five latency/length distributions.
pub fn to_json(r: &BenchmarkResult) -> String {
    let w = &r.workload;
    format!(
        concat!(
            "{{",
            "\"workload\":{{",
            "\"initial_size\":{},\"threads\":{},\"duration_ms\":{},\"dist\":\"{}\",",
            "\"mix\":{{\"read\":{},\"insert\":{},\"remove\":{},\"scan\":{},\"scan_len\":{}}}",
            "}},",
            "\"total_ops\":{},\"throughput\":{},\"mops\":{},",
            "\"successful_inserts\":{},\"successful_removes\":{},\"unsuccessful_updates\":{},",
            "\"scans\":{},\"scan_keys_returned\":{},\"scan_throughput\":{},\"keys_per_scan\":{},",
            "\"transfers_per_op\":{},\"atomics_per_successful_update\":{},",
            "\"final_size\":{},\"elapsed_ms\":{},",
            "\"latency\":{{",
            "\"search\":{},\"successful_update\":{},\"unsuccessful_update\":{},\"scan\":{},",
            "\"scan_length\":{}",
            "}}",
            "}}"
        ),
        w.initial_size,
        w.threads,
        w.duration_ms,
        escape_json(&w.dist.to_string()),
        w.mix.read,
        w.mix.insert,
        w.mix.remove,
        w.mix.scan,
        w.mix.scan_len,
        r.total_ops,
        json_num(r.throughput),
        json_num(r.mops),
        r.successful_inserts,
        r.successful_removes,
        r.unsuccessful_updates,
        r.scans,
        r.scan_keys_returned,
        json_num(r.scan_throughput()),
        json_num(r.keys_per_scan()),
        json_num(r.transfers_per_op()),
        json_num(r.atomics_per_successful_update()),
        r.final_size,
        json_num(r.elapsed.as_secs_f64() * 1e3),
        json_latency(&r.search_latency),
        json_latency(&r.successful_update_latency),
        json_latency(&r.unsuccessful_update_latency),
        json_latency(&r.scan_latency),
        json_latency(&r.scan_length),
    )
}

/// Serializes histogram buckets as a JSON array of `[upper_bound, count]`
/// pairs — the sparse nonzero-bucket form the telemetry crate's snapshots
/// export (`nonzero_buckets()`), in ascending bound order. An empty slice
/// renders as `[]`.
pub fn json_histogram(buckets: &[(u64, u64)]) -> String {
    let mut out = String::with_capacity(2 + buckets.len() * 12);
    out.push('[');
    for (i, (bound, count)) in buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{bound},{count}]"));
    }
    out.push(']');
    out
}

/// Grafts named histograms onto an existing JSON object: inserts a
/// `"histograms":{"<name>":[[bound,count],...],...}` member before the
/// object's final `}`. Names are emitted in the order given (stable — the
/// bench-trajectory diffing relies on it) and escaped as JSON strings.
///
/// # Panics
///
/// Panics if `object_json` does not end with `}` (it must be a JSON
/// object).
pub fn embed_histograms(object_json: &str, histograms: &[(&str, &[(u64, u64)])]) -> String {
    let trimmed = object_json.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("embed_histograms needs a JSON object ending in '}'");
    let mut out = String::with_capacity(trimmed.len() + 64);
    out.push_str(body);
    // `{}` (empty object) needs no separating comma before the new member.
    if body.len() > 1 {
        out.push(',');
    }
    out.push_str("\"histograms\":{");
    for (i, (name, buckets)) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape_json(name), json_histogram(buckets)));
    }
    out.push_str("}}");
    out
}

/// Writes a JSON document under `target/ascylib/BENCH_<name>.json` (the
/// bench-trajectory convention: one file per figure/config, overwritten per
/// run).
pub fn write_json(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/ascylib");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut file = fs::File::create(&path)?;
    writeln!(file, "{json}")?;
    Ok(path)
}

/// [`to_json`] plus embedded latency histograms (see
/// [`embed_histograms`]): the full-resolution bucket arrays let downstream
/// tooling recompute any percentile instead of being limited to the
/// pre-baked ones.
pub fn to_json_with_histograms(
    r: &BenchmarkResult,
    histograms: &[(&str, &[(u64, u64)])],
) -> String {
    embed_histograms(&to_json(r), histograms)
}

/// Formats a floating point value with two decimals.
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a floating point value with three decimals.
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "mops"]);
        t.row(vec!["clht-lb".into(), f2(12.5)]);
        t.row(vec!["lazy".into(), f2(3.25)]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("clht-lb"));
        assert!(s.contains("12.50"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn histogram_scales_bars_to_the_maximum() {
        let s = histogram(
            "shard load",
            &[("shard-0".into(), 100.0), ("shard-1".into(), 50.0), ("shard-2".into(), 0.0)],
            20,
        );
        assert!(s.contains("shard load"));
        assert!(s.contains(&"#".repeat(20)), "max bar should span the full width");
        assert!(s.contains(&"#".repeat(10)), "half value should get a half bar");
        let zero_line = s.lines().find(|l| l.contains("shard-2")).unwrap();
        assert!(!zero_line.contains('#'), "zero value must have no bar");
    }

    #[test]
    fn histogram_of_empty_entries_is_just_the_title() {
        let s = histogram("empty", &[], 10);
        assert!(s.contains("empty"));
        assert_eq!(s.lines().filter(|l| !l.trim().is_empty()).count(), 1);
    }

    #[test]
    fn distribution_line_prints_percentiles_or_absence() {
        let s = LatencyStats::from_samples(vec![1, 2, 3, 4, 100]);
        let line = distribution_line("scan len", "keys", &s);
        assert!(line.contains("p50="));
        assert!(line.contains("keys"));
        assert!(line.contains("5 samples"));
        let empty = distribution_line("scan len", "keys", &LatencyStats::default());
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn report_layer_clamps_quantiles_at_the_recorded_max() {
        // A histogram-derived stats block for a tiny sample count can carry
        // under-resolved tail quantiles as bucket upper bounds above the
        // bucket holding the true max; the report layer must not print them.
        let mangled = LatencyStats {
            p1: 10,
            p25: 20,
            p50: 30,
            p75: 40,
            p99: 8_192,
            p999: 8_192,
            p9999: 16_384,
            max: 5_000,
            mean: 35.0,
            samples: 3,
        };
        let line = distribution_line("lat", "ns", &mangled);
        assert!(line.contains("p99=5000"), "p99 must clamp at max: {line}");
        assert!(!line.contains("8192"), "bucket bound leaked past max: {line}");
        let json = json_latency(&mangled);
        assert!(json.contains("\"p999\":5000"), "{json}");
        assert!(json.contains("\"p9999\":5000"), "{json}");
        assert!(json.contains("\"max\":5000"), "{json}");
        // Consistent stats pass through untouched.
        let clean = LatencyStats::from_samples(vec![1, 2, 3, 4, 100]);
        assert_eq!(clamp_at_max(&clean), clean);
    }

    #[test]
    fn scan_length_histogram_buckets_powers_of_two() {
        let samples = vec![0, 1, 1, 2, 3, 4, 7, 8, 15];
        let s = scan_length_histogram("scan lengths", &samples, 20);
        assert!(s.contains("0 keys"));
        assert!(s.contains("1 key"));
        assert!(s.contains("2-3 keys"));
        assert!(s.contains("4-7 keys"));
        assert!(s.contains("8-15 keys"));
        // The 1-key bucket has two entries; 2-3 has two; 4-7 has two.
        let empty = scan_length_histogram("none", &[], 20);
        assert!(empty.contains("no scans sampled"));
    }

    #[test]
    fn bandwidth_helpers_report_decimal_megabytes() {
        use std::time::Duration;
        assert_eq!(mbps(2_000_000, Duration::from_secs(1)), 2.0);
        assert_eq!(mbps(1_000_000, Duration::from_millis(500)), 2.0);
        assert_eq!(mbps(0, Duration::from_secs(1)), 0.0);
        // Zero elapsed degrades gracefully instead of dividing by zero.
        assert!(mbps(100, Duration::ZERO).is_finite());
        let line = bandwidth_line("payload", 3_000_000, 1_500_000, Duration::from_secs(1));
        assert!(line.contains("payload:"), "{line}");
        assert!(line.contains("read 3.00 MB/s"), "{line}");
        assert!(line.contains("wrote 1.50 MB/s"), "{line}");
        assert!(line.contains("3000000 B"), "{line}");
    }

    /// Minimal JSON well-formedness scanner for the emitter tests: checks
    /// string escaping and brace/bracket balance without a full parser.
    fn assert_wellformed_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                } else {
                    assert!((c as u32) >= 0x20, "raw control char inside JSON string: {c:?}");
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {s}");
                }
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string in {s}");
        assert_eq!(depth, 0, "unbalanced braces in {s}");
    }

    fn sample_result() -> crate::runner::BenchmarkResult {
        use crate::workload::{OpMix, WorkloadBuilder};
        use ascylib::hashtable::ClhtLb;
        use std::sync::Arc;
        let w = WorkloadBuilder::new()
            .initial_size(64)
            .op_mix(OpMix::update(20))
            .threads(1)
            .duration_ms(10)
            .zipfian(0.99)
            .build();
        crate::runner::run_benchmark(Arc::new(ClhtLb::with_capacity(128)), w)
    }

    #[test]
    fn to_json_has_the_stable_field_names_and_parses() {
        let r = sample_result();
        let json = to_json(&r);
        assert_wellformed_json(&json);
        for key in [
            "\"workload\":", "\"initial_size\":", "\"threads\":", "\"duration_ms\":",
            "\"dist\":", "\"mix\":", "\"read\":", "\"insert\":", "\"remove\":", "\"scan\":",
            "\"scan_len\":", "\"total_ops\":", "\"throughput\":", "\"mops\":",
            "\"successful_inserts\":", "\"successful_removes\":", "\"unsuccessful_updates\":",
            "\"scans\":", "\"scan_keys_returned\":", "\"scan_throughput\":",
            "\"keys_per_scan\":", "\"transfers_per_op\":", "\"atomics_per_successful_update\":",
            "\"final_size\":", "\"elapsed_ms\":", "\"latency\":", "\"search\":",
            "\"successful_update\":", "\"unsuccessful_update\":", "\"scan_length\":",
            "\"p1\":", "\"p25\":", "\"p50\":", "\"p75\":", "\"p99\":", "\"mean\":",
            "\"samples\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The dist display string round-trips inside the JSON.
        assert!(json.contains("\"dist\":\"zipf(0.99)\""), "{json}");
        // Concrete values survive: total_ops appears verbatim.
        assert!(json.contains(&format!("\"total_ops\":{}", r.total_ops)));
        assert!(json.contains(&format!("\"final_size\":{}", r.final_size)));
    }

    #[test]
    fn escape_json_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("uniform"), "uniform");
        // A hostile label embedded in a JSON string stays well-formed.
        let hostile = format!("{{\"label\":\"{}\"}}", escape_json("x\"},{\"y\n"));
        assert_wellformed_json(&hostile);
    }

    #[test]
    fn json_numbers_degrade_nonfinite_to_null() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn bench_json_is_written_under_the_trajectory_name() {
        let r = sample_result();
        let path = write_json("unit_test_result", &to_json(&r)).unwrap();
        assert!(path.ends_with("BENCH_unit_test_result.json"), "{path:?}");
        let contents = std::fs::read_to_string(path).unwrap();
        assert_wellformed_json(contents.trim());
        assert!(contents.contains("\"total_ops\""));
    }

    #[test]
    fn json_histogram_renders_sparse_bucket_pairs() {
        assert_eq!(json_histogram(&[]), "[]");
        assert_eq!(json_histogram(&[(31, 4)]), "[[31,4]]");
        assert_eq!(
            json_histogram(&[(31, 4), (1023, 7), (u64::MAX, 1)]),
            format!("[[31,4],[1023,7],[{},1]]", u64::MAX)
        );
        assert_wellformed_json(&json_histogram(&[(31, 4), (1023, 7)]));
    }

    #[test]
    fn embed_histograms_grafts_members_in_stable_order() {
        let base = "{\"total_ops\":10}";
        let a: &[(u64, u64)] = &[(31, 4), (63, 6)];
        let b: &[(u64, u64)] = &[(127, 10)];
        let json = embed_histograms(base, &[("request", a), ("flush", b)]);
        assert_wellformed_json(&json);
        assert_eq!(
            json,
            "{\"total_ops\":10,\"histograms\":{\"request\":[[31,4],[63,6]],\
             \"flush\":[[127,10]]}}"
        );
        // Order is the caller's, not alphabetical.
        let flipped = embed_histograms(base, &[("flush", b), ("request", a)]);
        assert!(flipped.find("\"flush\"").unwrap() < flipped.find("\"request\"").unwrap());
        // Empty object and empty histogram list both stay well-formed.
        assert_eq!(embed_histograms("{}", &[]), "{\"histograms\":{}}");
        // Trailing whitespace (write_json appends a newline) is tolerated.
        assert_eq!(embed_histograms("{\"a\":1}\n", &[]), "{\"a\":1,\"histograms\":{}}");
        // Hostile names are escaped, keeping the document well-formed.
        let hostile = embed_histograms(base, &[("a\"b\n", a)]);
        assert_wellformed_json(&hostile);
        assert!(hostile.contains("\"a\\\"b\\n\""), "{hostile}");
    }

    #[test]
    fn to_json_with_histograms_extends_the_stable_document() {
        let r = sample_result();
        let buckets: &[(u64, u64)] = &[(31, 2), (1023, 5)];
        let json = to_json_with_histograms(&r, &[("request_ns", buckets)]);
        assert_wellformed_json(&json);
        assert!(json.contains("\"total_ops\":"), "base fields survive: {json}");
        assert!(json.contains("\"histograms\":{\"request_ns\":[[31,2],[1023,5]]}"), "{json}");
    }

    #[test]
    fn csv_is_written() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.write_csv("unit_test_table").unwrap();
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.starts_with("a,b"));
        assert!(contents.contains("1,2"));
    }
}
