//! Key distributions for skewed workloads.
//!
//! The paper's microbenchmarks draw keys uniformly from `[1, 2N]`. Production
//! serving systems see *skewed* traffic: a few keys absorb most requests.
//! This module adds a [`KeyDist`] abstraction with three generators, all
//! deterministic under a fixed seed:
//!
//! * [`KeyDist::Uniform`] — the paper's original setting.
//! * [`KeyDist::Zipfian`] — rank-frequency skew `p(k) ∝ k^{-θ}` (θ = 0.99 is
//!   the YCSB default), sampled in O(1) per draw with Hörmann's
//!   rejection-inversion method (*"Rejection-inversion to generate variates
//!   from monotone discrete distributions"*, ACM TOMACS 1996), the same
//!   algorithm behind Apache Commons' `RejectionInversionZipfSampler` and
//!   `rand_distr::Zipf`.
//! * [`KeyDist::Hotspot`] — a YCSB-style hot set: a fraction of the keyspace
//!   receives a (much larger) fraction of the traffic, uniform within each
//!   region.
//!
//! A [`KeySampler`] precomputes the distribution's constants once per
//! thread; `sample` then costs one or two `f64` draws from the vendored
//! `SmallRng`.

use rand::Rng;

/// How operation keys are drawn from the key range `[1, range]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key is equally likely (the paper's §4 setting).
    Uniform,
    /// Zipfian rank-frequency skew: the `k`-th most popular key has
    /// probability proportional to `k^{-theta}`. `theta` must be positive;
    /// YCSB uses 0.99, higher values are more skewed.
    Zipfian {
        /// The skew exponent θ (must be `> 0` and finite).
        theta: f64,
    },
    /// A hot set: `hot_fraction` of the keyspace receives `hot_prob` of the
    /// requests, with uniform draws inside the hot and cold regions.
    Hotspot {
        /// Fraction of the keyspace that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability that a request targets the hot set, in `[0, 1]`.
        hot_prob: f64,
    },
}

impl KeyDist {
    /// Parses a CLI/environment spec: `uniform`, `zipf:<theta>`, or
    /// `hotspot:<hot_fraction>:<hot_prob>`. Returns `None` on anything else
    /// (out-of-domain parameters included).
    pub fn parse(spec: &str) -> Option<KeyDist> {
        if spec.eq_ignore_ascii_case("uniform") {
            return Some(KeyDist::Uniform);
        }
        let (kind, args) = spec.split_once(':')?;
        match kind {
            "zipf" => {
                let theta: f64 = args.trim().parse().ok()?;
                (theta > 0.0 && theta.is_finite()).then_some(KeyDist::Zipfian { theta })
            }
            "hotspot" => {
                let (frac_str, prob_str) = args.split_once(':')?;
                let hot_fraction: f64 = frac_str.trim().parse().ok()?;
                let hot_prob: f64 = prob_str.trim().parse().ok()?;
                (hot_fraction > 0.0 && hot_fraction <= 1.0 && (0.0..=1.0).contains(&hot_prob))
                    .then_some(KeyDist::Hotspot { hot_fraction, hot_prob })
            }
            _ => None,
        }
    }

    /// Reads the `ASCYLIB_DIST` environment spec (see
    /// [`parse`](Self::parse)); defaults to `zipf:0.99` — the YCSB skew that
    /// production serving traffic resembles far more than a uniform draw.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec (the examples want a loud failure, not a
    /// silently substituted default).
    pub fn from_env() -> KeyDist {
        match std::env::var("ASCYLIB_DIST") {
            Ok(spec) => KeyDist::parse(&spec)
                .unwrap_or_else(|| panic!("bad ASCYLIB_DIST spec {spec:?}")),
            Err(_) => KeyDist::Zipfian { theta: 0.99 },
        }
    }
}

impl std::fmt::Display for KeyDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyDist::Uniform => write!(f, "uniform"),
            KeyDist::Zipfian { theta } => write!(f, "zipf({theta})"),
            KeyDist::Hotspot { hot_fraction, hot_prob } => {
                write!(f, "hotspot({:.0}%@{:.0}%)", hot_fraction * 100.0, hot_prob * 100.0)
            }
        }
    }
}

/// Precomputed sampler for one [`KeyDist`] over the key range `[1, range]`.
#[derive(Debug, Clone, Copy)]
pub struct KeySampler {
    range: u64,
    kind: SamplerKind,
}

#[derive(Debug, Clone, Copy)]
enum SamplerKind {
    Uniform,
    Zipfian(ZipfSampler),
    Hotspot {
        /// Number of keys in the hot region `[1, hot_count]`.
        hot_count: u64,
        hot_prob: f64,
    },
}

impl KeySampler {
    /// Builds a sampler for `dist` over `[1, range]`.
    ///
    /// # Panics
    ///
    /// If `range == 0`, if a Zipfian θ is not positive and finite, or if a
    /// hotspot fraction/probability is outside its documented domain.
    pub fn new(dist: KeyDist, range: u64) -> Self {
        assert!(range >= 1, "key range must be non-empty");
        let kind = match dist {
            KeyDist::Uniform => SamplerKind::Uniform,
            KeyDist::Zipfian { theta } => SamplerKind::Zipfian(ZipfSampler::new(range, theta)),
            KeyDist::Hotspot { hot_fraction, hot_prob } => {
                assert!(
                    hot_fraction > 0.0 && hot_fraction <= 1.0,
                    "hot_fraction must be in (0, 1], got {hot_fraction}"
                );
                assert!(
                    (0.0..=1.0).contains(&hot_prob),
                    "hot_prob must be in [0, 1], got {hot_prob}"
                );
                // At least one hot key, never more than the whole range.
                let hot_count = ((range as f64 * hot_fraction).ceil() as u64).clamp(1, range);
                SamplerKind::Hotspot { hot_count, hot_prob }
            }
        };
        KeySampler { range, kind }
    }

    /// The key range this sampler draws from (`[1, range]`).
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Draws one key in `[1, range]`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.kind {
            SamplerKind::Uniform => rng.random_range(1..=self.range),
            SamplerKind::Zipfian(z) => z.sample(rng),
            SamplerKind::Hotspot { hot_count, hot_prob } => {
                if rng.random::<f64>() < hot_prob || hot_count == self.range {
                    rng.random_range(1..=hot_count)
                } else {
                    rng.random_range(hot_count + 1..=self.range)
                }
            }
        }
    }
}

/// Hörmann rejection-inversion sampler for `p(k) ∝ k^{-theta}` on `[1, n]`.
///
/// `H(x) = ∫₁ˣ t^{-θ} dt` extends the discrete mass to a continuous envelope;
/// a uniform draw on `(H(0.5), H(n + 0.5)]` is mapped back through `H⁻¹` and
/// accepted unless it falls in the (small) gap between the envelope and the
/// discrete mass. Acceptance probability is high for all θ, so the expected
/// number of iterations is close to 1 — no O(n) zeta precomputation needed.
#[derive(Debug, Clone, Copy)]
struct ZipfSampler {
    n: u64,
    theta: f64,
    /// `H(1.5) - 1` — the top of the acceptance window.
    h_x1: f64,
    /// `H(n + 0.5)` — the bottom of the acceptance window.
    h_n: f64,
    /// Shortcut threshold: `x` within `s` of its rounded integer is always
    /// accepted (`s = 2 - H⁻¹(H(2.5) - 2^{-θ})`).
    s: f64,
}

impl ZipfSampler {
    fn new(n: u64, theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta.is_finite(),
            "zipfian theta must be positive and finite, got {theta}"
        );
        let h_x1 = h_integral(1.5, theta) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, theta);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, theta) - h(2.0, theta), theta);
        ZipfSampler { n, theta, h_x1, h_n, s }
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            // Uniform in (h_x1, h_n]: random::<f64>() is in [0, 1) so the
            // h_x1 endpoint itself is excluded, as the method requires.
            let u = self.h_n + rng.random::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.theta);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Accept k when it is close enough to the continuous inverse, or
            // when u lies under the discrete probability mass of k.
            if k - x <= self.s || u >= h_integral(k + 0.5, self.theta) - h(k, self.theta) {
                return k as u64;
            }
        }
    }
}

/// `H(x) = (x^{1-θ} - 1) / (1 - θ)` (and `ln x` as θ → 1), computed through
/// `expm1`/`log1p` so the θ ≈ 1 neighbourhood stays accurate.
fn h_integral(x: f64, theta: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - theta) * log_x) * log_x
}

/// The density `h(x) = x^{-θ}`.
fn h(x: f64, theta: f64) -> f64 {
    (-theta * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, theta: f64) -> f64 {
    let mut t = x * (1.0 - theta);
    // Clamp to the domain edge (t < -1 can only arise from rounding).
    if t < -1.0 {
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x) / x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x / 3.0)
    }
}

/// `expm1(x) / x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * (0.5 + x / 6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn draw_many(dist: KeyDist, range: u64, count: usize, seed: u64) -> Vec<u64> {
        let sampler = KeySampler::new(dist, range);
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count).map(|_| sampler.sample(&mut rng)).collect()
    }

    #[test]
    fn all_distributions_stay_in_range() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian { theta: 0.99 },
            KeyDist::Zipfian { theta: 1.0 },
            KeyDist::Zipfian { theta: 2.5 },
            KeyDist::Hotspot { hot_fraction: 0.1, hot_prob: 0.9 },
        ] {
            for range in [1u64, 2, 7, 1000] {
                for key in draw_many(dist, range, 5_000, 42) {
                    assert!(
                        (1..=range).contains(&key),
                        "{dist}: key {key} outside [1, {range}]"
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_under_a_fixed_seed() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian { theta: 0.99 },
            KeyDist::Hotspot { hot_fraction: 0.2, hot_prob: 0.8 },
        ] {
            assert_eq!(draw_many(dist, 512, 2_000, 7), draw_many(dist, 512, 2_000, 7));
            assert_ne!(draw_many(dist, 512, 2_000, 7), draw_many(dist, 512, 2_000, 8));
        }
    }

    #[test]
    fn zipfian_concentrates_mass_on_low_ranks() {
        let n = 1000u64;
        let draws = draw_many(KeyDist::Zipfian { theta: 0.99 }, n, 200_000, 1234);
        let mut counts = vec![0u64; n as usize + 1];
        for k in draws {
            counts[k as usize] += 1;
        }
        let total = 200_000f64;
        let top10: u64 = counts[1..=10].iter().sum();
        // Analytically ~40% of the mass is on ranks 1–10 for θ=0.99, n=1000;
        // uniform would put 1% there.
        assert!(
            top10 as f64 / total > 0.25,
            "top-10 ranks got only {:.1}% of draws",
            100.0 * top10 as f64 / total
        );
        // Rank 1 vs rank 2 frequency ratio ≈ 2^0.99 ≈ 1.99.
        let ratio = counts[1] as f64 / counts[2].max(1) as f64;
        assert!((1.5..2.6).contains(&ratio), "p(1)/p(2) ratio off: {ratio}");
    }

    #[test]
    fn zipfian_theta_one_is_handled_by_the_stable_helpers() {
        let draws = draw_many(KeyDist::Zipfian { theta: 1.0 }, 100, 50_000, 77);
        let ones = draws.iter().filter(|&&k| k == 1).count() as f64 / 50_000.0;
        // For θ=1, n=100: p(1) = 1/H_100 ≈ 19.3%.
        assert!((0.15..0.25).contains(&ones), "p(1) for θ=1 off: {ones}");
    }

    #[test]
    fn hotspot_routes_the_configured_fraction_to_the_hot_set() {
        let range = 1000u64;
        let draws =
            draw_many(KeyDist::Hotspot { hot_fraction: 0.1, hot_prob: 0.9 }, range, 100_000, 3);
        let hot = draws.iter().filter(|&&k| k <= 100).count() as f64 / 100_000.0;
        assert!((0.88..0.93).contains(&hot), "hot-set fraction off: {hot}");
    }

    #[test]
    fn hotspot_with_full_hot_fraction_is_uniform() {
        let draws =
            draw_many(KeyDist::Hotspot { hot_fraction: 1.0, hot_prob: 0.0 }, 50, 10_000, 11);
        // hot_count == range: every draw must come from the "hot" branch.
        assert!(draws.iter().all(|&k| (1..=50).contains(&k)));
    }

    #[test]
    fn display_names_are_compact() {
        assert_eq!(KeyDist::Uniform.to_string(), "uniform");
        assert_eq!(KeyDist::Zipfian { theta: 0.99 }.to_string(), "zipf(0.99)");
        assert_eq!(
            KeyDist::Hotspot { hot_fraction: 0.1, hot_prob: 0.9 }.to_string(),
            "hotspot(10%@90%)"
        );
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn zipfian_rejects_nonpositive_theta() {
        KeySampler::new(KeyDist::Zipfian { theta: 0.0 }, 10);
    }

    #[test]
    fn parse_accepts_the_documented_specs() {
        assert_eq!(KeyDist::parse("uniform"), Some(KeyDist::Uniform));
        assert_eq!(KeyDist::parse("UNIFORM"), Some(KeyDist::Uniform));
        assert_eq!(KeyDist::parse("zipf:0.99"), Some(KeyDist::Zipfian { theta: 0.99 }));
        assert_eq!(KeyDist::parse("zipf: 1.2 "), Some(KeyDist::Zipfian { theta: 1.2 }));
        assert_eq!(
            KeyDist::parse("hotspot:0.1:0.9"),
            Some(KeyDist::Hotspot { hot_fraction: 0.1, hot_prob: 0.9 })
        );
    }

    #[test]
    fn parse_rejects_malformed_and_out_of_domain_specs() {
        for bad in [
            "", "zipf", "zipf:", "zipf:0", "zipf:-1", "zipf:inf", "zipf:abc", "hotspot:0.1",
            "hotspot:0:0.9", "hotspot:1.5:0.9", "hotspot:0.1:1.5", "pareto:1.0", "uniform:1",
        ] {
            assert_eq!(KeyDist::parse(bad), None, "spec {bad:?} must be rejected");
        }
    }
}
