//! Workload configuration and generation (§4 "Experimental settings").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use ascylib::api::ConcurrentMap;

use crate::dist::{KeyDist, KeySampler};

/// A benchmark workload: initial size, key range, update percentage, thread
/// count, duration and key distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Initial number of elements `N`; keys are drawn from `[1, 2N]`.
    pub initial_size: usize,
    /// Percentage of operations that are updates (split half insert / half
    /// remove); the rest are searches.
    pub update_percent: u32,
    /// Number of worker threads.
    pub threads: usize,
    /// Duration of the measurement in milliseconds.
    pub duration_ms: u64,
    /// Fraction of operations whose latency is sampled (1 = every op).
    pub latency_sample_every: u64,
    /// How operation keys are drawn from the key range (uniform in the
    /// paper; Zipfian/hotspot model skewed production traffic).
    pub dist: KeyDist,
}

impl Workload {
    /// Upper bound of the key range (`2N`, as in the paper).
    pub fn key_range(&self) -> u64 {
        (self.initial_size as u64 * 2).max(2)
    }

    /// A sampler for this workload's key distribution (one per thread; the
    /// Zipfian constants are precomputed here, sampling is O(1)).
    pub fn key_sampler(&self) -> KeySampler {
        KeySampler::new(self.dist, self.key_range())
    }
}

/// Builder for [`Workload`] with the paper's defaults.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    workload: Workload,
}

impl WorkloadBuilder {
    /// Starts from an average-contention default (4096 elements, 10%
    /// updates, one thread, 300 ms).
    pub fn new() -> Self {
        Self {
            workload: Workload {
                initial_size: 4096,
                update_percent: 10,
                threads: 1,
                duration_ms: 300,
                latency_sample_every: 16,
                dist: KeyDist::Uniform,
            },
        }
    }

    /// Sets the initial structure size `N`.
    pub fn initial_size(mut self, n: usize) -> Self {
        self.workload.initial_size = n;
        self
    }

    /// Sets the update percentage.
    pub fn update_percent(mut self, pct: u32) -> Self {
        self.workload.update_percent = pct.min(100);
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.workload.threads = threads.max(1);
        self
    }

    /// Sets the measurement duration in milliseconds.
    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.workload.duration_ms = ms.max(1);
        self
    }

    /// Sets the latency sampling rate (sample one in `every` operations).
    pub fn latency_sample_every(mut self, every: u64) -> Self {
        self.workload.latency_sample_every = every.max(1);
        self
    }

    /// Sets the key distribution (default: [`KeyDist::Uniform`]).
    pub fn key_dist(mut self, dist: KeyDist) -> Self {
        self.workload.dist = dist;
        self
    }

    /// Shorthand for a Zipfian key distribution with exponent `theta`.
    pub fn zipfian(self, theta: f64) -> Self {
        self.key_dist(KeyDist::Zipfian { theta })
    }

    /// Finalizes the workload.
    pub fn build(self) -> Workload {
        self.workload
    }
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Fills the structure to its initial size with keys drawn from the
/// workload's distribution (so a skewed run starts with the popular keys
/// resident, and the expected size is `N`, as in the paper's setup).
///
/// Skewed distributions revisit their popular keys constantly, so drawing
/// only from the distribution would make filling the tail a coupon-collector
/// problem with vanishing success probability. After a burst of consecutive
/// duplicate draws the fill falls back to uniform draws (which finish in
/// expected O(N) for a `2N` range), keeping population time bounded for every
/// distribution while preserving the skewed head.
pub fn populate(map: &Arc<dyn ConcurrentMap>, workload: &Workload, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let range = workload.key_range();
    let sampler = workload.key_sampler();
    let mut inserted = 0usize;
    let mut consecutive_duplicates = 0u32;
    // Insert until the structure holds N elements (duplicates are skipped).
    while inserted < workload.initial_size {
        let key = if consecutive_duplicates < 32 {
            sampler.sample(&mut rng)
        } else {
            rng.random_range(1..=range)
        };
        if map.insert(key, key.wrapping_mul(10)) {
            inserted += 1;
            consecutive_duplicates = 0;
        } else {
            consecutive_duplicates += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;

    #[test]
    fn builder_defaults_match_paper_average_contention() {
        let w = WorkloadBuilder::new().build();
        assert_eq!(w.initial_size, 4096);
        assert_eq!(w.update_percent, 10);
        assert_eq!(w.key_range(), 8192);
    }

    #[test]
    fn populate_reaches_initial_size() {
        let w = WorkloadBuilder::new().initial_size(256).build();
        let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(512));
        populate(&map, &w, 7);
        assert_eq!(map.size(), 256);
    }

    #[test]
    fn update_percent_is_clamped() {
        let w = WorkloadBuilder::new().update_percent(150).build();
        assert_eq!(w.update_percent, 100);
    }

    #[test]
    fn default_distribution_is_uniform() {
        let w = WorkloadBuilder::new().build();
        assert_eq!(w.dist, KeyDist::Uniform);
    }

    #[test]
    fn populate_reaches_initial_size_under_skew() {
        // Zipfian draws revisit hot keys; the uniform fallback must still
        // fill the structure to exactly N.
        for dist in [
            KeyDist::Zipfian { theta: 0.99 },
            KeyDist::Hotspot { hot_fraction: 0.05, hot_prob: 0.95 },
        ] {
            let w = WorkloadBuilder::new().initial_size(300).key_dist(dist).build();
            let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(1024));
            populate(&map, &w, 21);
            assert_eq!(map.size(), 300, "{dist}");
        }
    }

    #[test]
    fn builder_zipfian_shorthand_sets_the_distribution() {
        let w = WorkloadBuilder::new().zipfian(0.99).build();
        assert_eq!(w.dist, KeyDist::Zipfian { theta: 0.99 });
        assert!(w.key_sampler().range() == w.key_range());
    }
}
