//! Workload configuration and generation (§4 "Experimental settings"),
//! extended from the paper's single `update_percent` knob to a full
//! operation-mix engine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ascylib::api::ConcurrentMap;

use crate::dist::{KeyDist, KeySampler};

/// One operation drawn from an [`OpMix`]: what a worker thread executes in
/// one iteration of the measurement loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Point lookup: `search(key)`.
    Read,
    /// `insert(key, value)`.
    Insert,
    /// `remove(key)`.
    Remove,
    /// Range scan of up to `len` keys starting at the drawn key
    /// (`scan(key, len)` on an [`ascylib::ordered::OrderedMap`]).
    Scan {
        /// Maximum number of keys this scan returns.
        len: usize,
    },
}

/// An extensible operation mix: integer weights for each operation kind.
///
/// Weights are relative (they need not sum to 100); an operation is drawn
/// with probability `weight / total`. The classic YCSB core workloads are
/// provided as presets, and [`OpMix::update`] reproduces the paper's
/// `update_percent` convention (updates split half insert / half remove).
///
/// Scans require the structure under test to implement
/// [`ascylib::ordered::OrderedMap`]; drive them through
/// [`crate::runner::run_benchmark_ordered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of point lookups.
    pub read: u32,
    /// Weight of insertions.
    pub insert: u32,
    /// Weight of removals.
    pub remove: u32,
    /// Weight of range scans.
    pub scan: u32,
    /// Maximum scan length; each scan draws a uniform length in
    /// `[1, scan_len]` (YCSB-E's short-range-scan convention).
    pub scan_len: usize,
}

/// Weights above this bound are clamped so that the total weight can never
/// overflow the `u32` dice range.
const MAX_WEIGHT: u32 = 1 << 20;

impl OpMix {
    /// Default maximum scan length (YCSB-E uses short scans; 16 keeps a
    /// scan's cost within an order of magnitude of a point read on the
    /// tree/skip-list backings).
    pub const DEFAULT_SCAN_LEN: usize = 16;

    /// The paper's convention: `pct`% updates (half insert / half remove),
    /// the rest point reads. `pct` is clamped to 100.
    pub fn update(pct: u32) -> Self {
        let pct = pct.min(100);
        Self {
            read: 100 - pct,
            insert: pct.div_ceil(2),
            remove: pct / 2,
            scan: 0,
            scan_len: Self::DEFAULT_SCAN_LEN,
        }
    }

    /// Pure point reads.
    pub fn read_only() -> Self {
        Self::update(0)
    }

    /// YCSB-A: 50% reads, 50% updates.
    pub fn ycsb_a() -> Self {
        Self::update(50)
    }

    /// YCSB-B: 95% reads, 5% updates.
    pub fn ycsb_b() -> Self {
        Self::update(5)
    }

    /// YCSB-C: 100% reads.
    pub fn ycsb_c() -> Self {
        Self::update(0)
    }

    /// YCSB-D: 95% reads, 5% inserts (read-latest; the key distribution is
    /// configured separately via [`KeyDist`]).
    pub fn ycsb_d() -> Self {
        Self { read: 95, insert: 5, remove: 0, scan: 0, scan_len: Self::DEFAULT_SCAN_LEN }
    }

    /// YCSB-E: 95% short range scans, 5% inserts — the workload the point-op
    /// interface of the paper cannot express.
    pub fn ycsb_e() -> Self {
        Self { read: 0, insert: 5, remove: 0, scan: 95, scan_len: Self::DEFAULT_SCAN_LEN }
    }

    /// Sum of the weights (the dice range). Saturating: the fields are pub,
    /// so a hand-assembled mix may carry weights the builder would have
    /// clamped, and a wrapped total would be a silently wrong dice range.
    pub fn total(&self) -> u32 {
        self.read
            .saturating_add(self.insert)
            .saturating_add(self.remove)
            .saturating_add(self.scan)
    }

    /// The fraction of updates, as the paper's `update_percent` knob would
    /// report it (rounded down).
    pub fn update_percent(&self) -> u32 {
        let total = self.total();
        if total == 0 {
            0
        } else {
            ((self.insert as u64 + self.remove as u64) * 100 / total as u64) as u32
        }
    }

    /// Whether the mix contains scans (and therefore needs an
    /// [`ascylib::ordered::OrderedMap`] backing).
    pub fn has_scans(&self) -> bool {
        self.scan > 0
    }

    /// Maps a dice roll in `[0, total)` to an operation.
    pub fn sample(&self, dice: u32) -> Operation {
        debug_assert!(dice < self.total());
        if dice < self.read {
            Operation::Read
        } else if dice < self.read + self.insert {
            Operation::Insert
        } else if dice < self.read + self.insert + self.remove {
            Operation::Remove
        } else {
            Operation::Scan { len: self.scan_len }
        }
    }

    /// Clamps every weight into `[0, 2^20]` and the scan length to at least
    /// 1; an all-zero mix degenerates to read-only. Called by
    /// [`WorkloadBuilder::build`] so an invalid mix can never reach the
    /// runner (where a zero total would make the dice range panic, and an
    /// oversized weight could overflow the total).
    pub fn validated(mut self) -> Self {
        self.read = self.read.min(MAX_WEIGHT);
        self.insert = self.insert.min(MAX_WEIGHT);
        self.remove = self.remove.min(MAX_WEIGHT);
        self.scan = self.scan.min(MAX_WEIGHT);
        self.scan_len = self.scan_len.max(1);
        if self.total() == 0 {
            self.read = 100;
        }
        self
    }
}

impl Default for OpMix {
    /// The paper's average-contention default: 10% updates.
    fn default() -> Self {
        Self::update(10)
    }
}

/// A benchmark workload: initial size, operation mix, thread count, duration
/// and key distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Initial number of elements `N`; keys are drawn from `[1, 2N]`.
    pub initial_size: usize,
    /// The operation mix (reads / inserts / removes / scans).
    pub mix: OpMix,
    /// Number of worker threads.
    pub threads: usize,
    /// Duration of the measurement in milliseconds.
    pub duration_ms: u64,
    /// Fraction of operations whose latency is sampled (1 = every op).
    pub latency_sample_every: u64,
    /// How operation keys are drawn from the key range (uniform in the
    /// paper; Zipfian/hotspot model skewed production traffic).
    pub dist: KeyDist,
}

impl Workload {
    /// Upper bound of the key range (`2N`, as in the paper).
    pub fn key_range(&self) -> u64 {
        (self.initial_size as u64 * 2).max(2)
    }

    /// A sampler for this workload's key distribution (one per thread; the
    /// Zipfian constants are precomputed here, sampling is O(1)).
    pub fn key_sampler(&self) -> KeySampler {
        KeySampler::new(self.dist, self.key_range())
    }

    /// The update percentage the mix corresponds to (compatibility view of
    /// the paper's knob).
    pub fn update_percent(&self) -> u32 {
        self.mix.update_percent()
    }
}

/// Builder for [`Workload`] with the paper's defaults.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    workload: Workload,
}

impl WorkloadBuilder {
    /// Starts from an average-contention default (4096 elements, 10%
    /// updates, one thread, 300 ms).
    pub fn new() -> Self {
        Self {
            workload: Workload {
                initial_size: 4096,
                mix: OpMix::default(),
                threads: 1,
                duration_ms: 300,
                latency_sample_every: 16,
                dist: KeyDist::Uniform,
            },
        }
    }

    /// Sets the initial structure size `N`.
    pub fn initial_size(mut self, n: usize) -> Self {
        self.workload.initial_size = n;
        self
    }

    /// Sets the operation mix (see [`OpMix`] for the presets).
    pub fn op_mix(mut self, mix: OpMix) -> Self {
        self.workload.mix = mix;
        self
    }

    /// Compatibility sugar for the paper's single knob: `pct`% updates
    /// (half insert / half remove), the rest reads. Equivalent to
    /// `op_mix(OpMix::update(pct))`.
    pub fn update_percent(self, pct: u32) -> Self {
        self.op_mix(OpMix::update(pct))
    }

    /// Overrides the maximum scan length of the current mix.
    pub fn scan_len(mut self, len: usize) -> Self {
        self.workload.mix.scan_len = len;
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.workload.threads = threads.max(1);
        self
    }

    /// Sets the measurement duration in milliseconds.
    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.workload.duration_ms = ms.max(1);
        self
    }

    /// Sets the latency sampling rate (sample one in `every` operations).
    pub fn latency_sample_every(mut self, every: u64) -> Self {
        self.workload.latency_sample_every = every.max(1);
        self
    }

    /// Sets the key distribution (default: [`KeyDist::Uniform`]).
    pub fn key_dist(mut self, dist: KeyDist) -> Self {
        self.workload.dist = dist;
        self
    }

    /// Shorthand for a Zipfian key distribution with exponent `theta`.
    pub fn zipfian(self, theta: f64) -> Self {
        self.key_dist(KeyDist::Zipfian { theta })
    }

    /// Finalizes the workload, validating the mix (weights clamped, zero
    /// totals degrade to read-only, scan length at least 1) so downstream
    /// consumers never see a malformed mix.
    pub fn build(mut self) -> Workload {
        self.workload.mix = self.workload.mix.validated();
        self.workload
    }
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Fills the structure to its initial size with keys drawn from the
/// workload's distribution (so a skewed run starts with the popular keys
/// resident, and the expected size is `N`, as in the paper's setup).
///
/// Skewed distributions revisit their popular keys constantly, so drawing
/// only from the distribution would make filling the tail a coupon-collector
/// problem with vanishing success probability. After a burst of consecutive
/// duplicate draws the fill falls back to uniform draws (which finish in
/// expected O(N) for a `2N` range), keeping population time bounded for most
/// distributions while preserving the skewed head.
///
/// Uniform draws are themselves a coupon-collector problem as the *free*
/// keyspace shrinks: each draw succeeds with probability
/// `free / range`, which vanishes as density approaches 100% — and is
/// exactly zero if the map (pre-populated by the caller, or populated
/// twice) has no free keys left, turning the old draw loop into an
/// infinite one. So when random draws stall too (another duplicate burst),
/// the fill switches to a sequential sweep over `[1, range]` inserting
/// every missing key — O(range) worst case, terminates at **any** density,
/// and stops early if the keyspace fills before the target is reached
/// (the structure then simply holds every representable key).
pub fn populate<M: ConcurrentMap + ?Sized>(map: &M, workload: &Workload, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let range = workload.key_range();
    let sampler = workload.key_sampler();
    let mut inserted = 0usize;
    let mut consecutive_duplicates = 0u32;
    // Phase 1: distribution draws, falling back to uniform draws after a
    // duplicate burst (32 straight duplicates ≈ the distribution is
    // revisiting its head), and giving up on random draws entirely after a
    // second burst (64 straight ≈ the free keyspace is nearly exhausted).
    while inserted < workload.initial_size && consecutive_duplicates < 64 {
        let key = if consecutive_duplicates < 32 {
            sampler.sample(&mut rng)
        } else {
            rng.random_range(1..=range)
        };
        if map.insert(key, key.wrapping_mul(10)) {
            inserted += 1;
            consecutive_duplicates = 0;
        } else {
            consecutive_duplicates += 1;
        }
    }
    // Phase 2: sequential sweep — the fast path for near-full prefills.
    // One bounded pass over the keyspace; if it ends early the keyspace is
    // 100% dense and no further insert could ever succeed.
    if inserted < workload.initial_size {
        for key in 1..=range {
            if map.insert(key, key.wrapping_mul(10)) {
                inserted += 1;
                if inserted == workload.initial_size {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;
    use std::sync::Arc;

    #[test]
    fn builder_defaults_match_paper_average_contention() {
        let w = WorkloadBuilder::new().build();
        assert_eq!(w.initial_size, 4096);
        assert_eq!(w.update_percent(), 10);
        assert_eq!(w.mix, OpMix::update(10));
        assert_eq!(w.key_range(), 8192);
    }

    #[test]
    fn populate_reaches_initial_size() {
        let w = WorkloadBuilder::new().initial_size(256).build();
        let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(512));
        populate(&map, &w, 7);
        assert_eq!(map.size(), 256);
    }

    #[test]
    fn update_percent_is_clamped() {
        let w = WorkloadBuilder::new().update_percent(150).build();
        assert_eq!(w.update_percent(), 100);
        assert_eq!(w.mix.read, 0);
    }

    #[test]
    fn update_sugar_splits_updates_evenly() {
        let mix = OpMix::update(20);
        assert_eq!(mix.read, 80);
        assert_eq!(mix.insert, 10);
        assert_eq!(mix.remove, 10);
        assert_eq!(mix.scan, 0);
        // Odd percentages keep the total at 100 (insert gets the extra).
        let odd = OpMix::update(15);
        assert_eq!(odd.insert, 8);
        assert_eq!(odd.remove, 7);
        assert_eq!(odd.total(), 100);
    }

    #[test]
    fn build_validates_degenerate_and_oversized_mixes() {
        // All-zero weights degrade to read-only rather than a zero dice
        // range (which would panic in the runner).
        let w = WorkloadBuilder::new()
            .op_mix(OpMix { read: 0, insert: 0, remove: 0, scan: 0, scan_len: 0 })
            .build();
        assert_eq!(w.mix.read, 100);
        assert!(w.mix.total() > 0);
        assert_eq!(w.mix.scan_len, 1, "scan_len must be at least 1");
        // Oversized weights are clamped so total() cannot overflow.
        let w = WorkloadBuilder::new()
            .op_mix(OpMix { read: u32::MAX, insert: u32::MAX, remove: u32::MAX, scan: u32::MAX, scan_len: 4 })
            .build();
        assert!(w.mix.total() >= w.mix.read);
        assert_eq!(w.mix.read, 1 << 20);
        // Even an *unvalidated* mangled mix must not wrap its dice range.
        let mangled = OpMix { read: u32::MAX, insert: 1, remove: 0, scan: 0, scan_len: 1 };
        assert_eq!(mangled.total(), u32::MAX);
        assert_eq!(mangled.update_percent(), 0);
    }

    #[test]
    fn sample_covers_the_whole_dice_range() {
        let mix = OpMix { read: 3, insert: 2, remove: 1, scan: 4, scan_len: 9 }.validated();
        let mut counts = [0usize; 4];
        for dice in 0..mix.total() {
            match mix.sample(dice) {
                Operation::Read => counts[0] += 1,
                Operation::Insert => counts[1] += 1,
                Operation::Remove => counts[2] += 1,
                Operation::Scan { len } => {
                    assert_eq!(len, 9);
                    counts[3] += 1;
                }
            }
        }
        assert_eq!(counts, [3, 2, 1, 4]);
    }

    #[test]
    fn ycsb_presets_have_the_canonical_shapes() {
        assert_eq!(OpMix::ycsb_a().update_percent(), 50);
        assert_eq!(OpMix::ycsb_b().update_percent(), 5);
        assert_eq!(OpMix::ycsb_c(), OpMix::read_only());
        assert!(!OpMix::ycsb_c().has_scans());
        let d = OpMix::ycsb_d();
        assert_eq!((d.read, d.insert, d.remove, d.scan), (95, 5, 0, 0));
        let e = OpMix::ycsb_e();
        assert_eq!((e.read, e.insert, e.remove, e.scan), (0, 5, 0, 95));
        assert!(e.has_scans());
    }

    #[test]
    fn default_distribution_is_uniform() {
        let w = WorkloadBuilder::new().build();
        assert_eq!(w.dist, KeyDist::Uniform);
    }

    #[test]
    fn populate_reaches_initial_size_under_skew() {
        // Zipfian draws revisit hot keys; the uniform fallback must still
        // fill the structure to exactly N.
        for dist in [
            KeyDist::Zipfian { theta: 0.99 },
            KeyDist::Hotspot { hot_fraction: 0.05, hot_prob: 0.95 },
        ] {
            let w = WorkloadBuilder::new().initial_size(300).key_dist(dist).build();
            let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(1024));
            populate(&map, &w, 21);
            assert_eq!(map.size(), 300, "{dist}");
        }
    }

    #[test]
    fn populate_terminates_at_full_density() {
        // Regression: the draw-only fill loops forever once no free key
        // remains. Pre-fill the *entire* keyspace, then ask populate for
        // more under the skewed distributions that stall first.
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian { theta: 0.99 },
            KeyDist::Hotspot { hot_fraction: 0.05, hot_prob: 0.95 },
        ] {
            let w = WorkloadBuilder::new().initial_size(128).key_dist(dist).build();
            let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(1024));
            for k in 1..=w.key_range() {
                assert!(map.insert(k, k));
            }
            populate(&map, &w, 99); // must return: nothing is insertable
            assert_eq!(map.size(), w.key_range() as usize, "{dist}");
        }
    }

    #[test]
    fn populate_twice_is_idempotent_on_density() {
        // A second populate on an already-filled map used to spin on the
        // vanishing free keyspace; now the sequential sweep finishes it.
        let w = WorkloadBuilder::new()
            .initial_size(256)
            .key_dist(KeyDist::Zipfian { theta: 0.99 })
            .build();
        let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(2048));
        populate(&map, &w, 5);
        assert_eq!(map.size(), 256);
        populate(&map, &w, 6);
        // The second fill tops the structure up by another N (or to the
        // keyspace limit, whichever comes first) — and, crucially, returns.
        assert_eq!(map.size(), 512);
        populate(&map, &w, 7);
        assert_eq!(map.size(), w.key_range() as usize, "third fill saturates the keyspace");
        populate(&map, &w, 8); // saturated: still terminates
        assert_eq!(map.size(), w.key_range() as usize);
    }

    #[test]
    fn populate_sequential_fast_path_reaches_near_full_prefill() {
        // 2N-1 of the 2N keys pre-inserted: exactly one free key remains.
        // Random draws have a 1-in-2N success probability per draw; the
        // sweep must find it deterministically.
        let w = WorkloadBuilder::new()
            .initial_size(1)
            .key_dist(KeyDist::Hotspot { hot_fraction: 0.05, hot_prob: 0.95 })
            .build();
        let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(16));
        assert_eq!(w.key_range(), 2);
        assert!(map.insert(1, 1));
        populate(&map, &w, 3);
        assert_eq!(map.size(), 2, "the single free key (2) was found");
        assert!(map.contains(2));
    }

    #[test]
    fn builder_zipfian_shorthand_sets_the_distribution() {
        let w = WorkloadBuilder::new().zipfian(0.99).build();
        assert_eq!(w.dist, KeyDist::Zipfian { theta: 0.99 });
        assert!(w.key_sampler().range() == w.key_range());
    }

    #[test]
    fn builder_scan_len_overrides_the_preset() {
        let w = WorkloadBuilder::new().op_mix(OpMix::ycsb_e()).scan_len(64).build();
        assert_eq!(w.mix.scan_len, 64);
        assert!(w.mix.has_scans());
    }
}
