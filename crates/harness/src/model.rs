//! Energy model and platform profiles.
//!
//! The paper measures power with on-board sensors and cache misses with
//! hardware counters on six machines we do not have. DESIGN.md §4 documents
//! the substitution: the structures report their shared-memory behaviour
//! through [`ascylib::stats`], and this module converts those counts into
//!
//! * a **relative power estimate** (`P = P_static + c_acc·access_rate +
//!   c_xfer·transfer_rate`), reported as a ratio to the asynchronized
//!   baseline exactly like Figures 4b–7b, and
//! * **projected cross-platform throughput**: each [`PlatformProfile`]
//!   describes a machine's core count and cache-line transfer cost, and the
//!   measured per-operation traffic is used to estimate how the algorithm
//!   would scale there (Figure 2/8/9 shapes).

use crate::runner::BenchmarkResult;

/// A simple linear power model over memory-system activity.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Static (idle) power in arbitrary units.
    pub static_power: f64,
    /// Cost per memory access (loads approximated by traversed nodes).
    pub per_access: f64,
    /// Cost per cache-line transfer (stores / CAS / lock acquisitions).
    pub per_transfer: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Calibrated so that coherence traffic dominates the dynamic part,
        // matching the paper's observation that power differences between
        // algorithms are in the ±1–6% range.
        Self { static_power: 100.0, per_access: 0.002, per_transfer: 0.02 }
    }
}

impl EnergyModel {
    /// Estimated power (arbitrary units) for one benchmark result.
    pub fn power(&self, result: &BenchmarkResult) -> f64 {
        let secs = result.elapsed.as_secs_f64().max(1e-9);
        let access_rate = result.counters.memory_accesses() as f64 / secs / 1e6;
        let transfer_rate = result.counters.cache_line_transfers() as f64 / secs / 1e6;
        self.static_power + self.per_access * access_rate + self.per_transfer * transfer_rate
    }

    /// Power of `result` relative to a baseline (the paper plots the ratio
    /// to the asynchronized execution).
    pub fn relative_power(&self, result: &BenchmarkResult, baseline: &BenchmarkResult) -> f64 {
        self.power(result) / self.power(baseline)
    }

    /// Energy per operation relative to a baseline.
    pub fn relative_energy_per_op(
        &self,
        result: &BenchmarkResult,
        baseline: &BenchmarkResult,
    ) -> f64 {
        let e = self.power(result) / result.throughput.max(1.0);
        let eb = self.power(baseline) / baseline.throughput.max(1.0);
        e / eb
    }
}

/// A coarse description of one of the paper's evaluation platforms.
#[derive(Debug, Clone, Copy)]
pub struct PlatformProfile {
    /// Platform name as used in the paper.
    pub name: &'static str,
    /// Hardware threads available.
    pub hardware_threads: usize,
    /// Number of sockets (cross-socket transfers are slower).
    pub sockets: usize,
    /// Relative single-thread speed (Xeon20 = 1.0).
    pub single_thread_speed: f64,
    /// Average cost (ns) of one cache-line transfer between cores.
    pub transfer_cost_ns: f64,
}

impl PlatformProfile {
    /// The six platforms of §4.
    pub fn all() -> Vec<PlatformProfile> {
        vec![
            PlatformProfile { name: "Opteron", hardware_threads: 48, sockets: 8, single_thread_speed: 0.6, transfer_cost_ns: 110.0 },
            PlatformProfile { name: "Xeon20", hardware_threads: 40, sockets: 2, single_thread_speed: 1.0, transfer_cost_ns: 60.0 },
            PlatformProfile { name: "Xeon40", hardware_threads: 80, sockets: 4, single_thread_speed: 0.75, transfer_cost_ns: 90.0 },
            PlatformProfile { name: "Tilera", hardware_threads: 36, sockets: 1, single_thread_speed: 0.25, transfer_cost_ns: 50.0 },
            PlatformProfile { name: "T4-4", hardware_threads: 256, sockets: 4, single_thread_speed: 0.45, transfer_cost_ns: 80.0 },
            PlatformProfile { name: "Haswell", hardware_threads: 8, sockets: 1, single_thread_speed: 1.1, transfer_cost_ns: 40.0 },
        ]
    }

    /// Projects throughput (Mops/s) on this platform for an algorithm whose
    /// measured behaviour is `result`, when run with `threads` threads.
    ///
    /// The model: each operation costs its measured single-thread CPU time
    /// (scaled by the platform's speed) plus its measured cache-line
    /// transfers, each costing `transfer_cost_ns` (doubled once the thread
    /// count crosses a socket boundary). Throughput = threads / per-op time,
    /// capped by the hardware thread count.
    pub fn project_mops(&self, result: &BenchmarkResult, threads: usize) -> f64 {
        let threads = threads.min(self.hardware_threads);
        let base_ns = 1e9 / (result.throughput.max(1.0) / result.workload.threads as f64);
        let base_ns = base_ns / self.single_thread_speed;
        let transfers = result.transfers_per_op();
        let per_socket = (self.hardware_threads / self.sockets).max(1);
        let cross_socket = if threads > per_socket { 2.0 } else { 1.0 };
        // Transfers only cost when another core actually shares the line:
        // scale by the fraction of "other" threads.
        let sharing = if threads <= 1 { 0.0 } else { 1.0 };
        let per_op_ns = base_ns + sharing * transfers * self.transfer_cost_ns * cross_socket;
        threads as f64 * 1e3 / per_op_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_benchmark;
    use crate::workload::WorkloadBuilder;
    use ascylib::hashtable::ClhtLb;
    use std::sync::Arc;

    fn quick_result() -> BenchmarkResult {
        let w = WorkloadBuilder::new().initial_size(64).threads(1).duration_ms(20).build();
        run_benchmark(Arc::new(ClhtLb::with_capacity(128)), w)
    }

    #[test]
    fn power_is_positive_and_relative_to_self_is_one() {
        let r = quick_result();
        let model = EnergyModel::default();
        assert!(model.power(&r) > 0.0);
        let rel = model.relative_power(&r, &r);
        assert!((rel - 1.0).abs() < 1e-9);
        assert!((model.relative_energy_per_op(&r, &r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn six_platforms_are_described() {
        let platforms = PlatformProfile::all();
        assert_eq!(platforms.len(), 6);
        assert!(platforms.iter().any(|p| p.name == "Tilera"));
        let r = quick_result();
        for p in &platforms {
            let one = p.project_mops(&r, 1);
            let many = p.project_mops(&r, p.hardware_threads);
            assert!(one > 0.0, "{}", p.name);
            assert!(many > 0.0, "{}", p.name);
        }
    }
}
