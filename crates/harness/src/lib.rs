//! # ascylib-harness — the evaluation harness for ASCYLIB-RS
//!
//! Reproduces the methodology of §4 of the ASCY paper:
//!
//! * [`workload`] — workload generation: the structure is initialized with
//!   `N` elements and operations pick keys from `[1, 2N]`. Operation kinds
//!   are drawn from an extensible [`OpMix`] (reads / inserts / removes /
//!   range scans, with YCSB A–E presets); the paper's `update_percent` knob
//!   survives as sugar that splits updates into half insertions / half
//!   removals, so on average half of the updates succeed and the structure
//!   size stays near `N`.
//! * [`dist`] — key distributions: the paper's uniform draws plus
//!   Zipfian(θ) and hotspot generators for skewed, production-style
//!   traffic, selected per workload via [`KeyDist`].
//! * [`runner`] — the multi-threaded measurement loop: per-thread operation
//!   counters, sampled operation latencies with 1/25/50/75/99 percentiles,
//!   and aggregation of the [`ascylib::stats`] instrumentation counters.
//!   Scan-free mixes run over any [`ascylib::ConcurrentMap`]
//!   ([`run_benchmark`]); mixes with scans need an
//!   [`ascylib::OrderedMap`] ([`run_benchmark_ordered`]), which also
//!   reports scan throughput and keys-returned distributions.
//! * [`model`] — the energy model and the platform profiles used to project
//!   measured coherence traffic onto the paper's six machines (see DESIGN.md
//!   §4 for the substitution rationale).
//! * [`report`] — plain-text table and CSV emitters used by the `fig*`
//!   benchmark binaries.

#![warn(missing_docs)]

pub mod dist;
pub mod model;
pub mod report;
pub mod runner;
pub mod workload;

pub use dist::{KeyDist, KeySampler};
pub use model::{EnergyModel, PlatformProfile};
pub use runner::{run_benchmark, run_benchmark_ordered, BenchmarkResult, LatencyStats, OpKind};
pub use workload::{OpMix, Operation, Workload, WorkloadBuilder};

/// Reads an environment variable used to scale benchmark durations/threads,
/// falling back to the given default.
pub fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Looks up a command-line flag's value: `--flag value` or `--flag=value`.
/// Shared by the example binaries so their flag handling stays uniform
/// (environment variables configure defaults, flags override per run).
pub fn arg_value(flag: &str) -> Option<String> {
    arg_value_in(std::env::args().skip(1), flag)
}

fn arg_value_in(args: impl Iterator<Item = String>, flag: &str) -> Option<String> {
    let mut args = args;
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next();
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|rest| rest.strip_prefix('=')) {
            return Some(value.to_string());
        }
    }
    None
}

/// Duration (milliseconds) of a single measurement, controlled by
/// `ASCYLIB_BENCH_MILLIS` (default 300 ms so that the full figure suite
/// completes quickly; the paper uses 5 s runs).
pub fn bench_millis() -> u64 {
    env_or("ASCYLIB_BENCH_MILLIS", 300)
}

/// Maximum number of threads to sweep, controlled by
/// `ASCYLIB_BENCH_THREADS` (default: the number of available cores, capped
/// at 16).
pub fn max_threads() -> usize {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    env_or("ASCYLIB_BENCH_THREADS", available.min(16) as u64) as usize
}

/// The thread counts used for thread-sweep figures: 1, 2, 4, ... up to
/// [`max_threads`].
pub fn thread_sweep() -> Vec<usize> {
    let max = max_threads().max(1);
    let mut v = vec![1];
    let mut t = 2;
    while t < max {
        v.push(t);
        t *= 2;
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_is_increasing_and_ends_at_max() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*sweep.last().unwrap(), max_threads());
    }

    #[test]
    fn env_or_falls_back_to_default() {
        assert_eq!(env_or("ASCYLIB_DOES_NOT_EXIST", 42), 42);
    }

    #[test]
    fn arg_values_parse_in_both_spellings() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let got = |list: &[&str], flag: &str| arg_value_in(args(list).into_iter(), flag);
        assert_eq!(got(&["--mode", "open:4000"], "--mode").as_deref(), Some("open:4000"));
        assert_eq!(got(&["--mode=open:4000"], "--mode").as_deref(), Some("open:4000"));
        assert_eq!(got(&["--conns", "8", "--mode", "closed"], "--mode").as_deref(), Some("closed"));
        assert_eq!(got(&["--mode"], "--mode"), None, "flag with no value");
        assert_eq!(got(&["--moderate=x"], "--mode"), None, "prefix must not match");
        assert_eq!(got(&[], "--mode"), None);
    }
}
