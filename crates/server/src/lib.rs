//! # ascylib-server — the wire-protocol serving tier for ASCYLIB-RS
//!
//! Everything below the network boundary already exists in this workspace:
//! linearizable structures (`ascylib`), hash-routed sharding
//! (`ascylib-shard`), ordered range scans, and a workload engine
//! (`ascylib-harness`). This crate adds the layer real deployments are
//! measured at — a TCP server speaking a compact text protocol, driven by
//! real clients over sockets — using nothing but `std::net`:
//!
//! * [`protocol`] — the RESP-like frame codec (protocol **version 2**):
//!   `GET`/`SET`/`DEL` with binary-safe **bulk values** (`SET k <len>` +
//!   payload requests, `$<len>` + payload replies, bounded by
//!   [`protocol::MAX_VALUE`]), batched `MGET`/`MSET`, ordered `SCAN` with
//!   payloads, `PING`/`STATS`/`QUIT`; incremental push parsers that
//!   tolerate arbitrarily split reads and answer malformed frames —
//!   oversized values included — with in-band errors (never a panic,
//!   always resynchronizing). The full grammar lives in `PROTOCOL.md` at
//!   the repository root.
//! * [`store`] — the byte-valued [`KvStore`] keyspace interface and its
//!   adapters over [`ascylib_shard::BlobMap`] (per-shard ssmem value
//!   arenas, epoch-guarded copy-out reads): [`BlobStore`] for any backing,
//!   [`BlobOrderedStore`] adding cross-shard merged scans.
//! * `conn` (internal) — a nonblocking per-connection **state machine**
//!   (Reading → Executing → Writing → Closing) with request **pipelining**
//!   and write backpressure: every complete frame that arrived is executed
//!   and answered in order; a partial flush re-arms for writability and
//!   stops reading, so a peer that won't drain its replies cannot grow
//!   server buffers; `MGET` dispatches through the shard layer's batched
//!   `multi_get_into` (no per-batch result allocation).
//! * [`server`] — the **event-driven** TCP tier: an epoll/poll readiness
//!   loop (`vendor/polling`, oneshot semantics) dispatching to a small
//!   worker pool through a generation-tagged slab registry, with idle-
//!   timeout eviction, per-worker cache-padded stats, graceful
//!   `QUIT`/shutdown draining, and ephemeral port support for tests.
//!   Thousands of concurrent connections per handful of worker threads.
//! * [`client`] — a blocking client with typed per-verb calls over `&[u8]`
//!   values and a [`Pipeline`] that turns `k` round trips into one.
//! * **Telemetry** (protocol verbs `INFO [section]`, `SLOWLOG
//!   GET|RESET|LEN`, `METRICS`, `MONITOR [sample_n]`; crate
//!   `ascylib-telemetry`) — always-on server-side observability:
//!   per-command-family lock-free latency histograms,
//!   parse/execute/flush phase timings, hit/miss counters, per-worker
//!   slow-op rings (tagged with worker and shard), and a Prometheus text
//!   exposition surface a scraper can point at the wire port directly.
//!   The `INFO concurrency` section puts the paper's structure-level
//!   coherence counters (CAS failures, restarts, nodes traversed) and
//!   the aggregated ssmem allocator totals on the wire, windowed
//!   telemetry turns cumulative counters into live rates (`ops_per_sec`,
//!   windowed p99) via a reader-rotated snapshot ring, and `MONITOR`
//!   subscribes a connection to a bounded, drop-counting stream of
//!   sampled per-request trace events with slow-consumer eviction.
//! * [`loadgen`] — a multi-connection load generator in two modes:
//!   **closed-loop** (each connection keeps a fixed number of requests in
//!   flight) and **open-loop** ([`LoadMode::Open`]: Poisson or fixed-rate
//!   scheduled arrivals, latency measured from the *intended* send time so
//!   queueing delay is charged to the server — no coordinated omission).
//!   Reuses the harness's [`OpMix`](ascylib_harness::OpMix) /
//!   [`KeyDist`](ascylib_harness::KeyDist) vocabulary plus a
//!   [`ValueSize`] payload-size axis (fixed / uniform / bimodal), and
//!   reports payload bandwidth (MB/s read and written) alongside latency
//!   percentiles through p9999.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ascylib::skiplist::FraserOptSkipList;
//! use ascylib_shard::BlobMap;
//! use ascylib_server::{BlobOrderedStore, Client, Server, ServerConfig};
//!
//! let map = Arc::new(BlobMap::new(4, |_| FraserOptSkipList::new()));
//! let server =
//!     Server::start("127.0.0.1:0", BlobOrderedStore::new(map), ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! client.set(7, b"seven hundred")?;
//! assert_eq!(client.get(7)?, Some(b"seven hundred".to_vec()));
//! client.quit()?;
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod loadgen;
mod monitor;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod store;
mod timer;

pub use ascylib_telemetry::{Family, Phase, SlowOp, TelemetrySnapshot};
pub use client::{Client, Pipeline};
pub use loadgen::{LoadGenConfig, LoadGenResult, LoadMode, ServerLatency, ValueSize};
pub use monitor::MonitorStats;
pub use protocol::{ParseError, Reply, Request, SlowlogCmd};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::{ConcurrencySnapshot, ConcurrencyStats, ServerStatsSnapshot};
pub use store::{BlobOrderedStore, BlobStore, KvStore};
