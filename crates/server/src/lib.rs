//! # ascylib-server — the wire-protocol serving tier for ASCYLIB-RS
//!
//! Everything below the network boundary already exists in this workspace:
//! linearizable structures (`ascylib`), hash-routed sharding
//! (`ascylib-shard`), ordered range scans, and a workload engine
//! (`ascylib-harness`). This crate adds the layer real deployments are
//! measured at — a TCP server speaking a compact text protocol, driven by
//! real clients over sockets — using nothing but `std::net`:
//!
//! * [`protocol`] — the RESP-like frame codec: `GET`/`SET`/`DEL`,
//!   batched `MGET`/`MSET`, ordered `SCAN`, `PING`/`STATS`/`QUIT`;
//!   incremental push parsers that tolerate arbitrarily split reads and
//!   answer malformed frames with in-band errors (never a panic, always
//!   resynchronizing at the next line). The full grammar lives in
//!   `PROTOCOL.md` at the repository root.
//! * [`store`] — the [`KvStore`] keyspace interface and its adapters over
//!   [`ascylib_shard::ShardedMap`]: [`ShardedStore`] for any backing,
//!   [`ShardedOrderedStore`] adding cross-shard merged scans.
//! * `conn` (internal) — buffered per-connection state with request
//!   **pipelining**: every complete frame that arrived is executed and
//!   answered in order with one flush; `MGET`/`MSET` dispatch through the
//!   shard layer's batched operations.
//! * [`server`] — the acceptor + worker-pool TCP tier with per-worker
//!   cache-padded stats, graceful `QUIT`/shutdown draining, and ephemeral
//!   port support for tests.
//! * [`client`] — a blocking client with typed per-verb calls and a
//!   [`Pipeline`] that turns `k` round trips into one.
//! * [`loadgen`] — a closed-loop multi-connection load generator that
//!   reuses the harness's [`OpMix`](ascylib_harness::OpMix) /
//!   [`KeyDist`](ascylib_harness::KeyDist) vocabulary, so every in-process
//!   bench scenario replays over loopback sockets with latency percentiles
//!   from the same `LatencyStats` machinery.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ascylib::hashtable::ClhtLb;
//! use ascylib_shard::ShardedMap;
//! use ascylib_server::{Client, Server, ServerConfig, ShardedStore};
//!
//! let map = Arc::new(ShardedMap::new(4, |_| ClhtLb::with_capacity(1024)));
//! let server = Server::start("127.0.0.1:0", ShardedStore::new(map), ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! client.set(7, 700)?;
//! assert_eq!(client.get(7)?, Some(700));
//! client.quit()?;
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod store;

pub use client::{Client, Pipeline};
pub use loadgen::{LoadGenConfig, LoadGenResult};
pub use protocol::{ParseError, Reply, Request};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::ServerStatsSnapshot;
pub use store::{KvStore, ShardedOrderedStore, ShardedStore};
