//! Per-connection serving state machine: nonblocking reads, pipelined
//! dispatch, in-order buffered replies, write backpressure.
//!
//! A connection is a small explicit state machine driven by
//! [`Connection::advance`], which a worker calls whenever the event loop
//! reports the socket ready (or the connection yielded with work still
//! buffered). One call makes as much progress as the socket allows and then
//! says how to continue:
//!
//! * **Reading** — drain the socket into the incremental [`RequestParser`]
//!   until it would block;
//! * **Executing** — run every complete frame that arrived (in
//!   pipeline-sized batches), appending replies to one write buffer in
//!   request order;
//! * **Writing** — flush the write buffer; a partial write re-arms the
//!   connection for *writability* and, crucially, stops reading — a peer
//!   that won't drain its replies cannot make the server buffer unboundedly
//!   (this is what defeats slow-loris-style clients);
//! * **Closing** — EOF, `QUIT` (answered `+BYE` and flushed first), or an
//!   I/O error.
//!
//! The worker never blocks in here: every socket op is nonblocking, and a
//! single `advance` bounds its own work so one firehose connection cannot
//! starve the rest of a worker's ready queue ([`Advance::Yield`]).
//!
//! `MGET` dispatches through the store's batched lookup into a per-
//! connection result buffer (the shard layer visits each shard once per
//! frame and no per-batch result vector is allocated); `GET` copies the
//! value out into a reused buffer. Malformed frames — oversized values
//! included — consume exactly one error reply and the connection keeps
//! serving (the parser resynchronizes past the offending input).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Instant;

use polling::Interest;

use crate::protocol::{wire, Request, RequestParser};
use crate::stats::{ServerStatsSnapshot, WorkerStats};
use crate::store::{KvStore, KEY_RANGE};

/// Everything a worker needs to serve one connection.
pub(crate) struct ConnCtx<'a> {
    /// The keyspace being served.
    pub store: &'a dyn KvStore,
    /// Most frames executed per batch (backpressure: a client that floods
    /// frames faster than they execute is drained in chunks this large).
    pub max_pipeline: usize,
    /// This worker's padded counters.
    pub stats: &'a WorkerStats,
    /// Aggregated counters across all workers (for `STATS` frames).
    pub totals: &'a dyn Fn() -> ServerStatsSnapshot,
}

/// Reusable per-connection buffers for value copy-out, so the serving hot
/// path allocates per payload copy, not per frame.
#[derive(Default)]
struct ConnBufs {
    /// `GET` value destination.
    value: Vec<u8>,
    /// `MGET` result destination.
    batch: Vec<Option<Vec<u8>>>,
}

/// Why a connection closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnExit {
    /// Peer closed the stream.
    Eof,
    /// Peer sent `QUIT` and was answered `+BYE`.
    Quit,
    /// An I/O error ended the connection.
    Error,
}

/// What the serving loop should do with the connection next.
pub(crate) enum Advance {
    /// No more progress without the socket: re-arm for the given readiness.
    Arm(Interest),
    /// Work remains buffered but this call's fairness budget ran out:
    /// re-queue the token without touching the poller.
    Yield,
    /// Done: deregister, drop, free the slot.
    Close(ConnExit),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Reading,
    Executing,
    Writing,
    Closing,
}

enum Flush {
    Done,
    Blocked,
    Failed,
}

/// Loop iterations (reads or execute batches) one `advance` performs before
/// yielding. Bounds a single wakeup's work so ready connections round-robin
/// within a worker.
const ADVANCE_BUDGET: usize = 32;

/// One nonblocking connection owned by the server's registry and advanced
/// by whichever worker the event loop hands its readiness token to.
pub(crate) struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    /// Pending reply bytes; `wpos..` is the unflushed tail.
    wbuf: Vec<u8>,
    wpos: usize,
    bufs: ConnBufs,
    state: State,
    /// Peer sent EOF; close once buffered frames are answered.
    eof: bool,
    /// Peer sent `QUIT`; close once `+BYE` is flushed.
    quit: bool,
    /// Last time the connection made progress (idle-timeout input; the
    /// timer wheel re-checks this lazily at each scheduled deadline).
    pub(crate) last_active: Instant,
}

impl Connection {
    /// Takes ownership of an accepted socket, switching it nonblocking.
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Connection> {
        stream.set_nonblocking(true)?;
        // NODELAY: un-pipelined request/response traffic must not sit out
        // Nagle/delayed-ACK timers.
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            parser: RequestParser::new(),
            wbuf: Vec::with_capacity(4096),
            wpos: 0,
            bufs: ConnBufs::default(),
            state: State::Reading,
            eof: false,
            quit: false,
            last_active: Instant::now(),
        })
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Drives the state machine as far as the socket allows. Never panics on
    /// malformed input; all protocol errors are answered in-band with `-ERR`
    /// frames.
    pub(crate) fn advance(&mut self, ctx: &ConnCtx<'_>, chunk: &mut [u8]) -> Advance {
        self.last_active = Instant::now();
        let mut budget = ADVANCE_BUDGET;
        loop {
            // Writing: pending replies leave first. While a flush is
            // blocked the machine never reads — that is the backpressure
            // that stops a non-draining peer from growing `wbuf` forever.
            if self.wpos < self.wbuf.len() {
                self.state = State::Writing;
                match self.flush_pending(ctx) {
                    Flush::Done => {
                        self.wbuf.clear();
                        self.wpos = 0;
                    }
                    Flush::Blocked => {
                        WorkerStats::bump(&ctx.stats.partial_writes, 1);
                        return Advance::Arm(Interest::WRITABLE);
                    }
                    Flush::Failed => return self.close(ConnExit::Error),
                }
            }
            if self.quit {
                return self.close(ConnExit::Quit);
            }
            if budget == 0 {
                return Advance::Yield;
            }
            budget -= 1;
            // Executing: frames already parsed, one pipeline batch at a
            // time; replies accumulate in `wbuf` and flush next iteration.
            self.state = State::Executing;
            if self.execute_batch(ctx) > 0 {
                continue;
            }
            // Parser dry. A recorded EOF only closes here, after every
            // buffered frame was answered and flushed.
            if self.eof {
                return self.close(ConnExit::Eof);
            }
            // Reading: pull whatever the socket has.
            self.state = State::Reading;
            match self.stream.read(chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    WorkerStats::bump(&ctx.stats.bytes_in, n as u64);
                    self.parser.feed(&chunk[..n]);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Advance::Arm(Interest::READABLE);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.close(ConnExit::Error),
            }
        }
    }

    /// Best-effort flush of buffered replies at server shutdown: responses
    /// already computed should reach peers, but a blocked or broken socket
    /// must not stall the sweep.
    pub(crate) fn final_flush(&mut self, stats: &WorkerStats) {
        if self.wpos < self.wbuf.len() {
            if let Ok(n) = self.stream.write(&self.wbuf[self.wpos..]) {
                WorkerStats::bump(&stats.bytes_out, n as u64);
            }
        }
        self.state = State::Closing;
    }

    fn close(&mut self, exit: ConnExit) -> Advance {
        self.state = State::Closing;
        Advance::Close(exit)
    }

    fn flush_pending(&mut self, ctx: &ConnCtx<'_>) -> Flush {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Flush::Failed,
                Ok(n) => {
                    self.wpos += n;
                    // Only bytes actually written count; a failed write must
                    // not inflate the STATS view of traffic served.
                    WorkerStats::bump(&ctx.stats.bytes_out, n as u64);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Flush::Blocked;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Flush::Failed,
            }
        }
        Flush::Done
    }

    /// Executes up to one pipeline batch of parsed frames, appending replies
    /// to `wbuf`. Returns how many frames (including malformed ones) were
    /// consumed.
    fn execute_batch(&mut self, ctx: &ConnCtx<'_>) -> usize {
        let mut consumed = 0;
        while consumed < ctx.max_pipeline {
            match self.parser.next() {
                Some(Ok(req)) => {
                    consumed += 1;
                    if execute(&req, ctx, &mut self.bufs, &mut self.wbuf) == Flow::Quit {
                        self.quit = true;
                        break;
                    }
                }
                Some(Err(e)) => {
                    consumed += 1;
                    WorkerStats::bump(&ctx.stats.errors, 1);
                    wire::error(&mut self.wbuf, &e.to_string());
                }
                None => break,
            }
        }
        consumed
    }
}

#[derive(PartialEq, Eq)]
enum Flow {
    Continue,
    Quit,
}

fn key_ok(key: u64) -> bool {
    (KEY_RANGE.0..=KEY_RANGE.1).contains(&key)
}

const KEY_RANGE_MSG: &str = "key out of usable range [1, 2^64-2]";

/// Executes one well-formed frame against the store, appending its reply.
fn execute(req: &Request, ctx: &ConnCtx<'_>, bufs: &mut ConnBufs, out: &mut Vec<u8>) -> Flow {
    let stats = ctx.stats;
    WorkerStats::bump(&stats.frames, 1);
    match req {
        Request::Get(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            if ctx.store.get(*k, &mut bufs.value) {
                wire::bulk(out, &bufs.value);
            } else {
                wire::null(out);
            }
        }
        Request::Set(k, v) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.set(*k, v) as u64);
        }
        Request::Del(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.del(*k) as u64);
        }
        Request::MGet(keys) => {
            // Validate the whole frame before executing any of it: a batch
            // either runs entirely or answers one error.
            if !keys.iter().all(|&k| key_ok(k)) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, keys.len() as u64);
            ctx.store.multi_get(keys, &mut bufs.batch);
            wire::array_header(out, bufs.batch.len());
            for item in &bufs.batch {
                match item {
                    Some(v) => wire::bulk(out, v),
                    None => wire::null(out),
                }
            }
        }
        Request::MSet(entries) => {
            if !entries.iter().all(|&(k, _)| key_ok(k)) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, entries.len() as u64);
            let outcomes = ctx.store.multi_set(entries);
            wire::array_header(out, outcomes.len());
            for created in outcomes {
                wire::int(out, created as u64);
            }
        }
        Request::Scan(from, n) => match ctx.store.scan(*from, *n) {
            Some(pairs) => {
                WorkerStats::bump(&stats.ops, 1);
                wire::array_header(out, pairs.len());
                for (k, v) in pairs {
                    wire::pair(out, k, &v);
                }
            }
            None => {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, "scans unsupported by this store (unordered backing)");
            }
        },
        Request::Ping => wire::simple(out, "PONG"),
        Request::Stats => {
            let totals = (ctx.totals)();
            let (store_ops, store_hits) = ctx.store.ops_and_hits();
            let info = format!(
                "size={} shards={} value_bytes={} store_ops={store_ops} store_hits={store_hits} conns={} curr_conns={} accepted={} timeouts={} wakeups={} partial_writes={} frames={} ops={} errors={} bytes_in={} bytes_out={}",
                ctx.store.size(),
                ctx.store.shard_count(),
                ctx.store.value_bytes(),
                totals.connections,
                totals.curr_connections,
                totals.accepted,
                totals.timeouts,
                totals.wakeups,
                totals.partial_writes,
                totals.frames,
                totals.ops,
                totals.errors,
                totals.bytes_in,
                totals.bytes_out,
            );
            wire::simple(out, &info);
        }
        Request::Quit => {
            wire::simple(out, "BYE");
            return Flow::Quit;
        }
    }
    Flow::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlobStore;
    use ascylib::hashtable::ClhtLb;
    use ascylib_shard::BlobMap;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::time::Duration;

    fn pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (Connection::new(accepted).unwrap(), peer)
    }

    fn run_ctx(test: impl FnOnce(&ConnCtx<'_>)) {
        let map = Arc::new(BlobMap::new(1, |_| ClhtLb::with_capacity(64)));
        let store = BlobStore::new(map);
        let stats = WorkerStats::default();
        let totals = || ServerStatsSnapshot::default();
        let ctx = ConnCtx { store: &store, max_pipeline: 4, stats: &stats, totals: &totals };
        test(&ctx);
    }

    #[test]
    fn idle_socket_arms_for_readability_then_serves_a_frame() {
        run_ctx(|ctx| {
            let (mut conn, mut peer) = pair();
            let mut chunk = [0u8; 4096];
            assert!(matches!(conn.advance(ctx, &mut chunk), Advance::Arm(i) if i.is_readable()));
            assert_eq!(conn.state, State::Reading);
            peer.write_all(b"PING\r\n").unwrap();
            // Loopback delivery is asynchronous; retry the advance until the
            // frame has been executed (visible in this worker's counters).
            let deadline = Instant::now() + Duration::from_secs(5);
            while ctx.stats.frames.load(std::sync::atomic::Ordering::Relaxed) == 0 {
                match conn.advance(ctx, &mut chunk) {
                    Advance::Arm(i) => assert!(i.is_readable()),
                    Advance::Yield => {}
                    Advance::Close(exit) => panic!("unexpected close: {exit:?}"),
                }
                assert!(Instant::now() < deadline, "frame not served before deadline");
                std::thread::sleep(Duration::from_millis(1));
            }
            let mut reply = [0u8; 16];
            peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let n = peer.read(&mut reply).unwrap();
            assert_eq!(&reply[..n], b"+PONG\r\n");
        });
    }

    #[test]
    fn quit_flushes_bye_then_closes() {
        run_ctx(|ctx| {
            let (mut conn, mut peer) = pair();
            peer.write_all(b"QUIT\r\n").unwrap();
            let mut chunk = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match conn.advance(ctx, &mut chunk) {
                    Advance::Close(exit) => {
                        assert_eq!(exit, ConnExit::Quit);
                        break;
                    }
                    _ => {
                        assert!(Instant::now() < deadline);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            assert_eq!(conn.state, State::Closing);
            drop(conn);
            let mut reply = Vec::new();
            peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            peer.read_to_end(&mut reply).unwrap();
            assert_eq!(reply, b"+BYE\r\n");
        });
    }

    #[test]
    fn peer_eof_closes_after_buffered_frames_are_answered() {
        run_ctx(|ctx| {
            let (mut conn, mut peer) = pair();
            peer.write_all(b"SET 1 3\r\nabc\r\n").unwrap();
            peer.shutdown(std::net::Shutdown::Write).unwrap();
            let mut chunk = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match conn.advance(ctx, &mut chunk) {
                    Advance::Close(exit) => {
                        assert_eq!(exit, ConnExit::Eof);
                        break;
                    }
                    _ => {
                        assert!(Instant::now() < deadline);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            // The SET was executed and its reply flushed before the close.
            assert_eq!(ctx.store.size(), 1);
            drop(conn);
            let mut reply = Vec::new();
            peer.read_to_end(&mut reply).unwrap();
            assert_eq!(reply, b":1\r\n");
        });
    }
}
