//! Per-connection serving state machine: nonblocking reads, pipelined
//! dispatch, in-order buffered replies, write backpressure.
//!
//! A connection is a small explicit state machine driven by
//! [`Connection::advance`], which a worker calls whenever the event loop
//! reports the socket ready (or the connection yielded with work still
//! buffered). One call makes as much progress as the socket allows and then
//! says how to continue:
//!
//! * **Reading** — drain the socket into the incremental [`RequestParser`]
//!   until it would block;
//! * **Executing** — run every complete frame that arrived (in
//!   pipeline-sized batches), appending replies to one write buffer in
//!   request order;
//! * **Writing** — flush the write buffer; a partial write re-arms the
//!   connection for *writability* and, crucially, stops reading — a peer
//!   that won't drain its replies cannot make the server buffer unboundedly
//!   (this is what defeats slow-loris-style clients);
//! * **Closing** — EOF, `QUIT` (answered `+BYE` and flushed first), or an
//!   I/O error.
//!
//! The worker never blocks in here: every socket op is nonblocking, and a
//! single `advance` bounds its own work so one firehose connection cannot
//! starve the rest of a worker's ready queue ([`Advance::Yield`]).
//!
//! `MGET` dispatches through the store's batched lookup into a per-
//! connection result buffer (the shard layer visits each shard once per
//! frame and no per-batch result vector is allocated); `GET` copies the
//! value out into a reused buffer. Malformed frames — oversized values
//! included — consume exactly one error reply and the connection keeps
//! serving (the parser resynchronizes past the offending input).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use polling::Interest;

use ascylib_telemetry::expo::Exposition;
use ascylib_telemetry::{
    clock, Family, HistogramSnapshot, Phase, SlowOp, TelemetrySnapshot, WindowDelta,
    WorkerTelemetry,
};

use crate::monitor::{MonitorEvent, MonitorHub, MonitorSink, MONITOR_DRAIN_BACKLOG};
use crate::protocol::{wire, Request, RequestParser, SlowlogCmd, MAX_VALUE};
use crate::stats::{ConcurrencySnapshot, ServerStatsSnapshot, WorkerStats};
use crate::store::{KvStore, KEY_RANGE};

/// Cross-worker telemetry aggregation, implemented by the server's shared
/// state (and by test fixtures). The hot path records into this worker's
/// own [`WorkerTelemetry`]; the observability verbs (`INFO`, `SLOWLOG`,
/// `METRICS`) read the whole server through this trait.
pub(crate) trait TelemetryHub {
    /// Merged telemetry across every worker block.
    fn telemetry_totals(&self) -> TelemetrySnapshot;
    /// Slow-op entries across every worker, newest first.
    fn slow_ops(&self) -> Vec<SlowOp>;
    /// Clears every worker's slow-op ring.
    fn slow_reset(&self);
    /// Total entries currently held across every ring.
    fn slow_len(&self) -> u64;
    /// Worker thread count.
    fn workers(&self) -> usize;
    /// Milliseconds since the server started.
    fn uptime_ms(&self) -> u64;
    /// Summed structure-level concurrency counters across every worker
    /// block: coherence events (stores, CAS, restarts) plus ssmem
    /// allocator state.
    fn concurrency_totals(&self) -> ConcurrencySnapshot;
    /// Rotates the telemetry sample ring if an interval elapsed and
    /// returns the delta over the default window. `None` until at least
    /// two samples exist (the window is still warming up).
    fn window(&self) -> Option<WindowDelta>;
}

/// Indices of the cumulative counters carried in every window sample
/// (`WindowSample::counters`); the hub's sampler and the scrape renderers
/// must agree on these.
pub(crate) const WIN_OPS: usize = 0;
/// Bytes read from sockets.
pub(crate) const WIN_BYTES_IN: usize = 1;
/// Bytes written to sockets.
pub(crate) const WIN_BYTES_OUT: usize = 2;
/// Error frames sent.
pub(crate) const WIN_ERRORS: usize = 3;
/// Failed CAS attempts inside the structures.
pub(crate) const WIN_CAS_FAILS: usize = 4;
/// Structure-level operation restarts.
pub(crate) const WIN_RESTARTS: usize = 5;
/// How many counters a window sample carries.
pub(crate) const WIN_COUNTERS: usize = 6;

/// Everything a worker needs to serve one connection.
pub(crate) struct ConnCtx<'a> {
    /// The keyspace being served.
    pub store: &'a dyn KvStore,
    /// Most frames executed per batch (backpressure: a client that floods
    /// frames faster than they execute is drained in chunks this large).
    pub max_pipeline: usize,
    /// This worker's padded counters.
    pub stats: &'a WorkerStats,
    /// Aggregated counters across all workers (for `STATS` frames).
    pub totals: &'a dyn Fn() -> ServerStatsSnapshot,
    /// This worker's telemetry block (hot-path recording).
    pub tel: &'a WorkerTelemetry,
    /// Whole-server telemetry (`INFO` / `SLOWLOG` / `METRICS`).
    pub hub: &'a dyn TelemetryHub,
    /// Latency recording switch. When off, the serving loop takes no clock
    /// readings at all — the fig15 overhead comparison flips exactly this.
    pub recording: bool,
    /// Requests at or above this service time (execute phase, ns) are
    /// captured in the slow-op ring.
    pub slow_ns: u64,
    /// This worker's index (slow-op and monitor-event attribution).
    pub worker: u32,
    /// The `MONITOR` broadcast hub: published on the sampled hot path,
    /// subscribed at dispatch, counted at scrape time.
    pub monitor: &'a MonitorHub,
}

/// Reusable per-connection buffers for value copy-out, so the serving hot
/// path allocates per payload copy, not per frame.
#[derive(Default)]
struct ConnBufs {
    /// `GET` value destination.
    value: Vec<u8>,
    /// `MGET` result destination.
    batch: Vec<Option<Vec<u8>>>,
}

/// Why a connection closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnExit {
    /// Peer closed the stream.
    Eof,
    /// Peer sent `QUIT` and was answered `+BYE`.
    Quit,
    /// An I/O error ended the connection.
    Error,
}

/// What the serving loop should do with the connection next.
pub(crate) enum Advance {
    /// No more progress without the socket: re-arm for the given readiness.
    Arm(Interest),
    /// Work remains buffered but this call's fairness budget ran out:
    /// re-queue the token without touching the poller.
    Yield,
    /// Done: deregister, drop, free the slot.
    Close(ConnExit),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Reading,
    Executing,
    Writing,
    Closing,
}

enum Flush {
    Done,
    Blocked,
    Failed,
}

/// Loop iterations (reads or execute batches) one `advance` performs before
/// yielding. Bounds a single wakeup's work so ready connections round-robin
/// within a worker.
const ADVANCE_BUDGET: usize = 32;

/// Service-time sampling stride inside a pipelined batch: point ops on
/// slots `0, N, 2N, …` of each batch are timed, the rest only counted.
/// Multi-key/scan/admin requests and one-frame batches are always timed
/// (see [`Connection::execute_batch`]).
const SAMPLE_EVERY: usize = 8;

/// One nonblocking connection owned by the server's registry and advanced
/// by whichever worker the event loop hands its readiness token to.
pub(crate) struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    /// Pending reply bytes; `wpos..` is the unflushed tail.
    wbuf: Vec<u8>,
    wpos: usize,
    bufs: ConnBufs,
    state: State,
    /// Peer sent EOF; close once buffered frames are answered.
    eof: bool,
    /// Peer sent `QUIT`; close once `+BYE` is flushed.
    quit: bool,
    /// Last time the connection made progress (idle-timeout input; the
    /// timer wheel re-checks this lazily at each scheduled deadline).
    pub(crate) last_active: Instant,
    /// Set when a `MONITOR` frame executed: the worker (which knows this
    /// connection's registry token) must subscribe it to the hub. Carries
    /// the optional sampling stride.
    pending_monitor: Option<Option<u64>>,
    /// The monitor mailbox once subscribed; drained into `wbuf` at the
    /// top of every `advance`.
    monitor: Option<Arc<MonitorSink>>,
}

impl Connection {
    /// Takes ownership of an accepted socket, switching it nonblocking.
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Connection> {
        stream.set_nonblocking(true)?;
        // NODELAY: un-pipelined request/response traffic must not sit out
        // Nagle/delayed-ACK timers.
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            parser: RequestParser::new(),
            wbuf: Vec::with_capacity(4096),
            wpos: 0,
            bufs: ConnBufs::default(),
            state: State::Reading,
            eof: false,
            quit: false,
            last_active: Instant::now(),
            pending_monitor: None,
            monitor: None,
        })
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Takes the sampling argument of a just-executed `MONITOR` frame, if
    /// any. The worker calls this after `advance` and performs the actual
    /// hub subscription — only it knows the connection's registry token.
    pub(crate) fn take_pending_monitor(&mut self) -> Option<Option<u64>> {
        self.pending_monitor.take()
    }

    /// Attaches the subscribed mailbox; queued trace frames reach this
    /// connection's write buffer on its next `advance`.
    pub(crate) fn attach_monitor(&mut self, sink: Arc<MonitorSink>) {
        self.monitor = Some(sink);
    }

    /// Drives the state machine as far as the socket allows. Never panics on
    /// malformed input; all protocol errors are answered in-band with `-ERR`
    /// frames.
    pub(crate) fn advance(&mut self, ctx: &ConnCtx<'_>, chunk: &mut [u8]) -> Advance {
        self.last_active = Instant::now();
        let mut budget = ADVANCE_BUDGET;
        loop {
            // Monitor subscribers: move queued trace frames into the write
            // buffer so they flush with everything else below. A large
            // unflushed backlog skips the drain — ordinary replies keep
            // flowing and the sink absorbs (or drops) the burst. An
            // evicted sink ends the stream loudly, in-band, reusing the
            // QUIT flush-then-close path.
            if let Some(sink) = &self.monitor {
                if sink.evicted() {
                    let dropped = sink.dropped();
                    sink.mark_gone();
                    self.monitor = None;
                    wire::error(
                        &mut self.wbuf,
                        &format!("monitor stream lagged too far behind ({dropped} events dropped); closing"),
                    );
                    self.quit = true;
                } else if self.wbuf.len() - self.wpos < MONITOR_DRAIN_BACKLOG {
                    sink.drain_into(&mut self.wbuf);
                }
            }
            // Writing: pending replies leave first. While a flush is
            // blocked the machine never reads — that is the backpressure
            // that stops a non-draining peer from growing `wbuf` forever.
            if self.wpos < self.wbuf.len() {
                self.state = State::Writing;
                let flush_start = if ctx.recording { Some(clock::now()) } else { None };
                let flushed = self.flush_pending(ctx);
                if let Some(start) = flush_start {
                    ctx.tel.record_phase(Phase::Flush, clock::delta_ns(start, clock::now()));
                }
                match flushed {
                    Flush::Done => {
                        self.wbuf.clear();
                        self.wpos = 0;
                    }
                    Flush::Blocked => {
                        WorkerStats::bump(&ctx.stats.partial_writes, 1);
                        return Advance::Arm(Interest::WRITABLE);
                    }
                    Flush::Failed => return self.close(ConnExit::Error),
                }
            }
            if self.quit {
                return self.close(ConnExit::Quit);
            }
            if budget == 0 {
                return Advance::Yield;
            }
            budget -= 1;
            // Executing: frames already parsed, one pipeline batch at a
            // time; replies accumulate in `wbuf` and flush next iteration.
            self.state = State::Executing;
            if self.execute_batch(ctx) > 0 {
                continue;
            }
            // Parser dry. A recorded EOF only closes here, after every
            // buffered frame was answered and flushed.
            if self.eof {
                return self.close(ConnExit::Eof);
            }
            // Reading: pull whatever the socket has.
            self.state = State::Reading;
            match self.stream.read(chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    WorkerStats::bump(&ctx.stats.bytes_in, n as u64);
                    self.parser.feed(&chunk[..n]);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Advance::Arm(Interest::READABLE);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.close(ConnExit::Error),
            }
        }
    }

    /// Best-effort flush of buffered replies at server shutdown: responses
    /// already computed should reach peers, but a blocked or broken socket
    /// must not stall the sweep.
    pub(crate) fn final_flush(&mut self, stats: &WorkerStats) {
        if self.wpos < self.wbuf.len() {
            if let Ok(n) = self.stream.write(&self.wbuf[self.wpos..]) {
                WorkerStats::bump(&stats.bytes_out, n as u64);
            }
        }
        self.state = State::Closing;
    }

    fn close(&mut self, exit: ConnExit) -> Advance {
        self.state = State::Closing;
        Advance::Close(exit)
    }

    fn flush_pending(&mut self, ctx: &ConnCtx<'_>) -> Flush {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Flush::Failed,
                Ok(n) => {
                    self.wpos += n;
                    // Only bytes actually written count; a failed write must
                    // not inflate the STATS view of traffic served.
                    WorkerStats::bump(&ctx.stats.bytes_out, n as u64);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Flush::Blocked;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Flush::Failed,
            }
        }
        Flush::Done
    }

    /// Executes up to one pipeline batch of parsed frames, appending replies
    /// to `wbuf`. Returns how many frames (including malformed ones) were
    /// consumed.
    fn execute_batch(&mut self, ctx: &ConnCtx<'_>) -> usize {
        let mut consumed = 0;
        // Recording strategy: clock reads are the dominant telemetry cost
        // (~25 ns each even via TSC on virtualized hosts), so service time
        // is *sampled*. Timed with a start/done reading pair: the first
        // slot of every batch, every `SAMPLE_EVERY`-th slot after it, and
        // every multi-key/scan/admin request. Point ops (GET/SET/DEL) in
        // the remaining slots only bump the exact per-family counters.
        // Unpipelined traffic (one-frame batches) is therefore always
        // fully timed, and slow-op detection is exact for the heavyweight
        // verbs that can plausibly be slow. The parse phase rides on the
        // first slot (batch start -> its start reading); its service time
        // doubles as the execute-phase sample. With recording off, no
        // clock is read at all.
        let batch_start = if ctx.recording { Some(clock::now()) } else { None };
        let mut slot = 0usize;
        while consumed < ctx.max_pipeline {
            match self.parser.next() {
                Some(Ok(req)) => {
                    consumed += 1;
                    let flow = if ctx.recording {
                        let family = family_of(&req);
                        let heavy =
                            !matches!(family, Family::Get | Family::Set | Family::Del);
                        if heavy || slot % SAMPLE_EVERY == 0 {
                            let start = clock::now();
                            if slot == 0 {
                                if let Some(t0) = batch_start {
                                    ctx.tel.record_phase(
                                        Phase::Parse,
                                        clock::delta_ns(t0, start),
                                    );
                                }
                            }
                            let flow = execute(&req, ctx, &mut self.bufs, &mut self.wbuf);
                            let done = clock::now();
                            let total = clock::delta_ns(start, done);
                            ctx.tel.record_request(family, total);
                            if slot == 0 {
                                ctx.tel.record_phase(Phase::Execute, total);
                            }
                            if total >= ctx.slow_ns {
                                let (key, bytes) = slow_fields(&req);
                                ctx.tel.record_slow(SlowOp {
                                    family,
                                    key,
                                    bytes,
                                    duration_ns: total,
                                    unix_ms: unix_ms_now(),
                                    worker: ctx.worker,
                                    shard: ctx.store.shard_of(key).unwrap_or(0) as u32,
                                });
                            }
                            // The MONITOR stream rides the sampled timing
                            // path (it needs the service clock); with no
                            // subscribers this is one relaxed load.
                            if ctx.monitor.active() {
                                let (key, bytes) = slow_fields(&req);
                                ctx.monitor.publish(&MonitorEvent {
                                    unix_ms: unix_ms_now(),
                                    family,
                                    key,
                                    bytes,
                                    service_ns: total,
                                    worker: ctx.worker,
                                });
                            }
                            flow
                        } else {
                            ctx.tel.count_request(family);
                            execute(&req, ctx, &mut self.bufs, &mut self.wbuf)
                        }
                    } else {
                        execute(&req, ctx, &mut self.bufs, &mut self.wbuf)
                    };
                    slot += 1;
                    match flow {
                        Flow::Quit => {
                            self.quit = true;
                            break;
                        }
                        Flow::Monitor(sample) => self.pending_monitor = Some(sample),
                        Flow::Continue => {}
                    }
                }
                Some(Err(e)) => {
                    consumed += 1;
                    // Malformed frames consume a slot but are not timed or
                    // counted (no store work was done).
                    slot += 1;
                    WorkerStats::bump(&ctx.stats.errors, 1);
                    wire::error(&mut self.wbuf, &e.to_string());
                }
                None => break,
            }
        }
        consumed
    }
}

pub(crate) fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// The telemetry family of a request.
fn family_of(req: &Request) -> Family {
    match req {
        Request::Get(_) => Family::Get,
        Request::Set(..) | Request::SetEx(..) => Family::Set,
        Request::Del(_) => Family::Del,
        Request::MGet(_) => Family::MGet,
        Request::MSet(_) => Family::MSet,
        Request::Scan(..) => Family::Scan,
        _ => Family::Other,
    }
}

/// The (key, payload bytes) a slow-op entry records for a request: the
/// primary key (first key for batched verbs, the cursor for `SCAN`) and the
/// total payload carried.
fn slow_fields(req: &Request) -> (u64, u64) {
    match req {
        Request::Get(k) | Request::Del(k) => (*k, 0),
        Request::Set(k, v) | Request::SetEx(k, v, _) => (*k, v.len() as u64),
        Request::Expire(k, _) | Request::Ttl(k) | Request::Persist(k) => (*k, 0),
        Request::MGet(keys) => (keys.first().copied().unwrap_or(0), 0),
        Request::MSet(entries) => (
            entries.first().map(|(k, _)| *k).unwrap_or(0),
            entries.iter().map(|(_, v)| v.len() as u64).sum(),
        ),
        Request::Scan(from, _) => (*from, 0),
        _ => (0, 0),
    }
}

#[derive(PartialEq, Eq)]
enum Flow {
    Continue,
    Quit,
    /// A `MONITOR` frame executed: the worker must subscribe this
    /// connection to the hub (the sampling stride rides along).
    Monitor(Option<u64>),
}

fn key_ok(key: u64) -> bool {
    (KEY_RANGE.0..=KEY_RANGE.1).contains(&key)
}

const KEY_RANGE_MSG: &str = "key out of usable range [1, 2^64-2]";

const EXPIRY_UNSUPPORTED_MSG: &str = "expiry unsupported by this store (no cache tier)";

/// Executes one well-formed frame against the store, appending its reply.
fn execute(req: &Request, ctx: &ConnCtx<'_>, bufs: &mut ConnBufs, out: &mut Vec<u8>) -> Flow {
    let stats = ctx.stats;
    WorkerStats::bump(&stats.frames, 1);
    match req {
        Request::Get(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            if ctx.store.get(*k, &mut bufs.value) {
                WorkerStats::bump(&stats.hits, 1);
                if ctx.recording {
                    ctx.tel.record_lookups(Family::Get, 1, 0);
                }
                wire::bulk(out, &bufs.value);
            } else {
                WorkerStats::bump(&stats.misses, 1);
                if ctx.recording {
                    ctx.tel.record_lookups(Family::Get, 0, 1);
                }
                wire::null(out);
            }
        }
        Request::Set(k, v) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.set(*k, v) as u64);
        }
        Request::SetEx(k, v, secs) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            if ctx.store.cache_stats().is_none() {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, EXPIRY_UNSUPPORTED_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.set_ex(*k, v, secs.saturating_mul(1000)) as u64);
        }
        Request::Expire(k, secs) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            if ctx.store.cache_stats().is_none() {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, EXPIRY_UNSUPPORTED_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.expire(*k, secs.saturating_mul(1000)) as u64);
        }
        Request::Ttl(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            if ctx.store.cache_stats().is_none() {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, EXPIRY_UNSUPPORTED_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            match ctx.store.ttl_ms(*k) {
                // Whole seconds on the wire, rounded up so a value with
                // 1 ms left still reports 1, not an already-dead 0.
                Some(Some(ms)) => wire::int(out, ms.div_ceil(1000)),
                Some(None) => wire::simple(out, "none"),
                None => wire::null(out),
            }
        }
        Request::Persist(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            if ctx.store.cache_stats().is_none() {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, EXPIRY_UNSUPPORTED_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.persist(*k) as u64);
        }
        Request::Del(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            let removed = ctx.store.del(*k);
            // DEL reuses the lookup cells as found / not-found (it is not a
            // read, so the server-wide read hit counters stay untouched).
            if ctx.recording {
                ctx.tel.record_lookups(Family::Del, removed as u64, !removed as u64);
            }
            wire::int(out, removed as u64);
        }
        Request::MGet(keys) => {
            // Validate the whole frame before executing any of it: a batch
            // either runs entirely or answers one error.
            if !keys.iter().all(|&k| key_ok(k)) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, keys.len() as u64);
            ctx.store.multi_get(keys, &mut bufs.batch);
            let found = bufs.batch.iter().filter(|v| v.is_some()).count() as u64;
            let missed = bufs.batch.len() as u64 - found;
            WorkerStats::bump(&stats.hits, found);
            WorkerStats::bump(&stats.misses, missed);
            if ctx.recording {
                ctx.tel.record_lookups(Family::MGet, found, missed);
            }
            wire::array_header(out, bufs.batch.len());
            for item in &bufs.batch {
                match item {
                    Some(v) => wire::bulk(out, v),
                    None => wire::null(out),
                }
            }
        }
        Request::MSet(entries) => {
            if !entries.iter().all(|&(k, _)| key_ok(k)) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, entries.len() as u64);
            let outcomes = ctx.store.multi_set(entries);
            wire::array_header(out, outcomes.len());
            for created in outcomes {
                wire::int(out, created as u64);
            }
        }
        Request::Scan(from, n) => match ctx.store.scan(*from, *n) {
            Some(pairs) => {
                WorkerStats::bump(&stats.ops, 1);
                wire::array_header(out, pairs.len());
                for (k, v) in pairs {
                    wire::pair(out, k, &v);
                }
            }
            None => {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, "scans unsupported by this store (unordered backing)");
            }
        },
        Request::Ping => wire::simple(out, "PONG"),
        Request::Stats => {
            let totals = (ctx.totals)();
            let (store_ops, store_hits) = ctx.store.ops_and_hits();
            let mut info = format!(
                "size={} shards={} value_bytes={} store_ops={store_ops} store_hits={store_hits} conns={} curr_conns={} accepted={} timeouts={} wakeups={} partial_writes={} frames={} ops={} hits={} misses={} errors={} bytes_in={} bytes_out={}",
                ctx.store.size(),
                ctx.store.shard_count(),
                ctx.store.value_bytes(),
                totals.connections,
                totals.curr_connections,
                totals.accepted,
                totals.timeouts,
                totals.wakeups,
                totals.partial_writes,
                totals.frames,
                totals.ops,
                totals.hits,
                totals.misses,
                totals.errors,
                totals.bytes_in,
                totals.bytes_out,
            );
            // Hot-key engine counters ride at the end of the line (new
            // fields append, existing parsers keep their positions).
            if let Some(h) = ctx.store.hotkey_stats() {
                use std::fmt::Write as _;
                let _ = write!(
                    info,
                    " hotkey_fronted={} hotkey_front_hits={} hotkey_front_absent={} hotkey_delegated={} hotkey_batches={}",
                    h.fronted, h.front_hits, h.front_absent, h.delegated, h.combined_batches,
                );
            }
            // Epoch-allocator aggregates, summed over every worker's
            // thread-local allocator.
            {
                use std::fmt::Write as _;
                let m = ctx.hub.concurrency_totals().ssmem;
                let _ = write!(
                    info,
                    " ssmem_allocations={} ssmem_frees={} ssmem_reclaimed={} ssmem_pending={} ssmem_pooled={}",
                    m.allocations, m.frees, m.reclaimed, m.pending, m.pooled,
                );
            }
            // Cache-tier gauges and counters (stores with a cache tier
            // only — same append-at-end discipline as the hotkey block).
            if let Some(c) = ctx.store.cache_stats() {
                use std::fmt::Write as _;
                let _ = write!(
                    info,
                    " cache_budget_bytes={} cache_live_bytes={} cache_evictions={} cache_expired_lazy={} cache_expired_swept={}",
                    c.budget_bytes, c.live_bytes, c.evictions, c.expired_lazy, c.expired_swept,
                );
            }
            wire::simple(out, &info);
        }
        Request::Info(section) => match render_info(ctx, section.as_deref()) {
            Ok(body) => bulk_capped(out, &body),
            Err(msg) => {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, msg);
            }
        },
        Request::Slowlog(cmd) => match cmd {
            SlowlogCmd::Get => bulk_capped(out, &render_slowlog(&ctx.hub.slow_ops())),
            SlowlogCmd::Reset => {
                ctx.hub.slow_reset();
                wire::simple(out, "OK");
            }
            SlowlogCmd::Len => wire::int(out, ctx.hub.slow_len()),
        },
        Request::Metrics => bulk_capped(out, &render_metrics(ctx)),
        Request::Monitor(sample) => {
            // The hub subscription happens back in the worker loop, which
            // knows this connection's registry token; from the peer's
            // view the `+OK` marks the start of the stream.
            wire::simple(out, "OK");
            return Flow::Monitor(*sample);
        }
        Request::Quit => {
            wire::simple(out, "BYE");
            return Flow::Quit;
        }
    }
    Flow::Continue
}

/// Writes `body` as one bulk frame, truncating at the last full line under
/// the reply value cap (with a marker line) — the client-side parser
/// rejects bulk frames over [`MAX_VALUE`], so a report body must never
/// exceed it.
fn bulk_capped(out: &mut Vec<u8>, body: &str) {
    const MARKER: &str = "# truncated\n";
    if body.len() <= MAX_VALUE {
        wire::bulk(out, body.as_bytes());
        return;
    }
    let budget = MAX_VALUE - MARKER.len();
    let cut = body.as_bytes()[..budget]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut truncated = String::with_capacity(cut + MARKER.len());
    truncated.push_str(&body[..cut]);
    truncated.push_str(MARKER);
    wire::bulk(out, truncated.as_bytes());
}

/// Renders the `INFO` report: all seven sections, or just the named one.
/// Unknown section names are a semantic error answered in-band.
fn render_info(ctx: &ConnCtx<'_>, section: Option<&str>) -> Result<String, &'static str> {
    use std::fmt::Write as _;
    const KNOWN: [&str; 7] =
        ["server", "commands", "latency", "memory", "concurrency", "hotkeys", "cache"];
    if let Some(s) = section {
        if !KNOWN.contains(&s) {
            return Err(
                "unknown INFO section (server|commands|latency|memory|concurrency|hotkeys|cache)",
            );
        }
    }
    let want = |name: &str| section.is_none() || section == Some(name);
    let totals = (ctx.totals)();
    let mut sections: Vec<String> = Vec::new();
    if want("server") {
        let mut s = String::new();
        let _ = writeln!(s, "# server");
        let _ = writeln!(s, "version:{}", env!("CARGO_PKG_VERSION"));
        let _ = writeln!(s, "workers:{}", ctx.hub.workers());
        let _ = writeln!(s, "uptime_ms:{}", ctx.hub.uptime_ms());
        let _ = writeln!(s, "telemetry:{}", if ctx.recording { "on" } else { "off" });
        let _ = writeln!(s, "slowlog_threshold_ns:{}", ctx.slow_ns);
        let _ = writeln!(s, "curr_connections:{}", totals.curr_connections);
        let _ = writeln!(s, "connections:{}", totals.connections);
        let _ = writeln!(s, "accepted:{}", totals.accepted);
        sections.push(s);
    }
    if want("commands") || want("latency") {
        let tel = ctx.hub.telemetry_totals();
        if want("commands") {
            let mut s = String::new();
            let _ = writeln!(s, "# commands");
            for f in Family::ALL {
                let fam = tel.family(f);
                let _ = writeln!(s, "cmd_{}_ops:{}", f.name(), fam.ops());
                match f {
                    Family::Get | Family::MGet => {
                        let _ = writeln!(s, "cmd_{}_hits:{}", f.name(), fam.hits);
                        let _ = writeln!(s, "cmd_{}_misses:{}", f.name(), fam.misses);
                    }
                    Family::Del => {
                        let _ = writeln!(s, "cmd_del_found:{}", fam.hits);
                        let _ = writeln!(s, "cmd_del_not_found:{}", fam.misses);
                    }
                    _ => {}
                }
            }
            let _ = writeln!(s, "frames:{}", totals.frames);
            let _ = writeln!(s, "ops:{}", totals.ops);
            let _ = writeln!(s, "hits:{}", totals.hits);
            let _ = writeln!(s, "misses:{}", totals.misses);
            let _ = writeln!(s, "errors:{}", totals.errors);
            sections.push(s);
        }
        if want("latency") {
            let mut s = String::new();
            let _ = writeln!(s, "# latency");
            let req = tel.data_requests();
            let _ = writeln!(s, "request_count:{}", tel.data_ops());
            let _ = writeln!(s, "request_samples:{}", req.count());
            let _ = writeln!(s, "request_mean_ns:{:.0}", req.mean());
            let _ = writeln!(s, "request_p50_ns:{}", req.quantile(0.50));
            let _ = writeln!(s, "request_p99_ns:{}", req.quantile(0.99));
            let _ = writeln!(s, "request_p999_ns:{}", req.quantile(0.999));
            let _ = writeln!(s, "request_max_ns:{}", req.max());
            for p in Phase::ALL {
                let h: &HistogramSnapshot = &tel.phases[p.index()];
                let _ = writeln!(s, "phase_{}_count:{}", p.name(), h.count());
                let _ = writeln!(s, "phase_{}_p99_ns:{}", p.name(), h.quantile(0.99));
            }
            for f in Family::DATA {
                let _ =
                    writeln!(s, "cmd_{}_p99_ns:{}", f.name(), tel.family(f).hist.quantile(0.99));
            }
            // Windowed tail latency: the same service-time histogram, but
            // only what landed in the last sampling window.
            if let Some(w) = ctx.hub.window() {
                let _ = writeln!(s, "request_p99_10s_ns:{}", w.hist.quantile(0.99));
                let _ = writeln!(s, "request_window_ms:{}", w.elapsed_ms());
            }
            sections.push(s);
        }
    }
    if want("memory") {
        let (store_ops, store_hits) = ctx.store.ops_and_hits();
        let mut s = String::new();
        let _ = writeln!(s, "# memory");
        let _ = writeln!(s, "keys:{}", ctx.store.size());
        let _ = writeln!(s, "shards:{}", ctx.store.shard_count());
        let _ = writeln!(s, "value_bytes:{}", ctx.store.value_bytes());
        let _ = writeln!(s, "store_ops:{store_ops}");
        let _ = writeln!(s, "store_hits:{store_hits}");
        let m = ctx.hub.concurrency_totals().ssmem;
        let _ = writeln!(s, "ssmem_allocations:{}", m.allocations);
        let _ = writeln!(s, "ssmem_frees:{}", m.frees);
        let _ = writeln!(s, "ssmem_reclaimed:{}", m.reclaimed);
        let _ = writeln!(s, "ssmem_reused:{}", m.reused);
        let _ = writeln!(s, "ssmem_gc_passes:{}", m.gc_passes);
        let _ = writeln!(s, "ssmem_pending:{}", m.pending);
        let _ = writeln!(s, "ssmem_pooled:{}", m.pooled);
        sections.push(s);
    }
    if want("concurrency") {
        let conc = ctx.hub.concurrency_totals();
        let mut s = String::new();
        let _ = writeln!(s, "# concurrency");
        let _ = writeln!(s, "coherence_shared_stores:{}", conc.ops.shared_stores);
        let _ = writeln!(s, "coherence_atomic_ops:{}", conc.ops.atomic_ops);
        let _ = writeln!(s, "coherence_atomic_failures:{}", conc.ops.atomic_failures);
        let _ = writeln!(s, "coherence_lock_acquisitions:{}", conc.ops.lock_acquisitions);
        let _ = writeln!(s, "coherence_restarts:{}", conc.ops.restarts);
        let _ = writeln!(s, "coherence_waits:{}", conc.ops.waits);
        let _ = writeln!(s, "coherence_nodes_traversed:{}", conc.ops.nodes_traversed);
        let _ = writeln!(s, "coherence_operations:{}", conc.ops.operations);
        if conc.ops.operations > 0 {
            // The paper's scalability determinants, normalized per
            // structure operation: stores to shared lines and atomics.
            let per = |n: u64| n as f64 / conc.ops.operations as f64;
            let _ = writeln!(s, "coherence_stores_per_op:{:.3}", per(conc.ops.shared_stores));
            let _ = writeln!(s, "coherence_atomics_per_op:{:.3}", per(conc.ops.atomic_ops));
        }
        let mon = ctx.monitor.stats();
        let _ = writeln!(s, "monitor_subscribers:{}", mon.subscribers);
        let _ = writeln!(s, "monitor_events:{}", mon.events);
        let _ = writeln!(s, "monitor_dropped:{}", mon.dropped);
        match ctx.hub.window() {
            Some(w) => {
                let _ = writeln!(s, "window_samples:{}", w.samples);
                let _ = writeln!(s, "window_span_ms:{}", w.elapsed_ms());
                let _ = writeln!(s, "ops_per_sec:{:.1}", w.rate(WIN_OPS));
                let _ = writeln!(s, "net_in_bytes_per_sec:{:.0}", w.rate(WIN_BYTES_IN));
                let _ = writeln!(s, "net_out_bytes_per_sec:{:.0}", w.rate(WIN_BYTES_OUT));
                let _ = writeln!(s, "errors_per_sec:{:.1}", w.rate(WIN_ERRORS));
                let _ = writeln!(s, "cas_fails_per_sec:{:.1}", w.rate(WIN_CAS_FAILS));
                let _ = writeln!(s, "restarts_per_sec:{:.1}", w.rate(WIN_RESTARTS));
            }
            None => {
                // Fewer than two samples so far; rates appear once the
                // ring has a measurable span.
                let _ = writeln!(s, "window_samples:0");
            }
        }
        sections.push(s);
    }
    if want("hotkeys") {
        let mut s = String::new();
        let _ = writeln!(s, "# hotkeys");
        match ctx.store.hotkey_stats() {
            Some(h) => {
                let _ = writeln!(s, "hotkey_engine:on");
                let _ = writeln!(s, "hotkey_fronted:{}", h.fronted);
                let _ = writeln!(s, "hotkey_sampled:{}", h.sampled);
                let _ = writeln!(s, "hotkey_promotions:{}", h.promotions);
                let _ = writeln!(s, "hotkey_demotions:{}", h.demotions);
                let _ = writeln!(s, "hotkey_front_hits:{}", h.front_hits);
                let _ = writeln!(s, "hotkey_front_absent:{}", h.front_absent);
                let _ = writeln!(s, "hotkey_front_pending:{}", h.front_pending);
                let _ = writeln!(s, "hotkey_front_hit_rate:{:.4}", h.front_hit_rate());
                let _ = writeln!(s, "hotkey_fills:{}", h.fills);
                let _ = writeln!(s, "hotkey_poisons:{}", h.poisons);
                let _ = writeln!(s, "hotkey_delegated:{}", h.delegated);
                let _ = writeln!(s, "hotkey_combined_batches:{}", h.combined_batches);
                let _ = writeln!(s, "hotkey_avg_batch:{:.2}", h.avg_batch());
                for (rank, (key, est)) in ctx.store.hot_keys().into_iter().enumerate() {
                    let _ = writeln!(s, "hot_key_{rank}:key={key} est={est}");
                }
            }
            None => {
                let _ = writeln!(s, "hotkey_engine:off");
            }
        }
        sections.push(s);
    }
    if want("cache") {
        let mut s = String::new();
        let _ = writeln!(s, "# cache");
        match ctx.store.cache_stats() {
            Some(c) => {
                let bounded = c.budget_bytes > 0;
                let _ = writeln!(s, "cache_tier:on");
                let _ = writeln!(s, "cache_budget:{}", if bounded { "on" } else { "off" });
                let _ = writeln!(s, "cache_budget_bytes:{}", c.budget_bytes);
                let _ = writeln!(s, "cache_live_bytes:{}", c.live_bytes);
                if bounded {
                    let _ = writeln!(
                        s,
                        "cache_fill_ratio:{:.4}",
                        c.live_bytes as f64 / c.budget_bytes as f64
                    );
                }
                let _ = writeln!(s, "cache_evictions:{}", c.evictions);
                let _ = writeln!(s, "cache_forced_admissions:{}", c.forced);
                let _ = writeln!(s, "cache_expired_lazy:{}", c.expired_lazy);
                let _ = writeln!(s, "cache_expired_swept:{}", c.expired_swept);
                let _ = writeln!(s, "cache_expired_total:{}", c.expired());
                let _ = writeln!(s, "cache_ttl_live:{}", c.ttl_live);
            }
            None => {
                let _ = writeln!(s, "cache_tier:off");
            }
        }
        sections.push(s);
    }
    Ok(sections.join("\n"))
}

/// Renders the `SLOWLOG GET` body: one line per entry, newest first.
fn render_slowlog(ops: &[SlowOp]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, op) in ops.iter().enumerate() {
        let _ = writeln!(
            out,
            "{i} family={} key={} bytes={} duration_ns={} unix_ms={} worker={} shard={}",
            op.family.name(),
            op.key,
            op.bytes,
            op.duration_ns,
            op.unix_ms,
            op.worker,
            op.shard,
        );
    }
    out
}

/// Renders the `METRICS` body: Prometheus text exposition over the server
/// counters, store gauges, and per-family / per-phase latency histograms.
fn render_metrics(ctx: &ConnCtx<'_>) -> String {
    let totals = (ctx.totals)();
    let tel = ctx.hub.telemetry_totals();
    let (store_ops, store_hits) = ctx.store.ops_and_hits();
    let mut e = Exposition::new();
    e.gauge("ascy_curr_connections", "Connections currently open.", &[], totals.curr_connections);
    e.counter("ascy_connections_total", "Connections fully served.", &[], totals.connections);
    e.counter("ascy_accepted_total", "Connections accepted.", &[], totals.accepted);
    e.counter("ascy_timeouts_total", "Connections evicted by the idle timeout.", &[], totals.timeouts);
    e.counter("ascy_frames_total", "Well-formed request frames executed.", &[], totals.frames);
    e.counter("ascy_ops_total", "Keyspace operations performed.", &[], totals.ops);
    e.counter("ascy_read_hits_total", "Per-key read lookups that found a value.", &[], totals.hits);
    e.counter("ascy_read_misses_total", "Per-key read lookups that missed.", &[], totals.misses);
    e.counter("ascy_errors_total", "Error frames sent.", &[], totals.errors);
    e.counter("ascy_bytes_in_total", "Bytes read from sockets.", &[], totals.bytes_in);
    e.counter("ascy_bytes_out_total", "Bytes written to sockets.", &[], totals.bytes_out);
    e.gauge("ascy_store_keys", "Elements in the served store.", &[], ctx.store.size() as u64);
    e.gauge("ascy_store_shards", "Shards backing the store.", &[], ctx.store.shard_count() as u64);
    e.gauge("ascy_store_value_bytes", "Live payload bytes in the value arena.", &[], ctx.store.value_bytes());
    e.counter("ascy_store_ops_total", "Structure-level operations.", &[], store_ops);
    e.counter("ascy_store_hits_total", "Structure-level lookup hits.", &[], store_hits);
    e.gauge("ascy_slowlog_len", "Slow-op entries currently held.", &[], ctx.hub.slow_len());
    if let Some(h) = ctx.store.hotkey_stats() {
        e.gauge("ascy_hotkey_fronted", "Hot keys currently holding a front-cache slot.", &[], h.fronted);
        e.counter("ascy_hotkey_sampled_total", "Accesses fed to the hot-key sketch.", &[], h.sampled);
        e.counter("ascy_hotkey_promotions_total", "Keys promoted into the top-k set.", &[], h.promotions);
        e.counter("ascy_hotkey_demotions_total", "Keys demoted out of the top-k set.", &[], h.demotions);
        e.counter(
            "ascy_hotkey_front_reads_total",
            "Front-cache read probes by outcome.",
            &[("result", "hit")],
            h.front_hits,
        );
        e.counter(
            "ascy_hotkey_front_reads_total",
            "Front-cache read probes by outcome.",
            &[("result", "absent")],
            h.front_absent,
        );
        e.counter(
            "ascy_hotkey_front_reads_total",
            "Front-cache read probes by outcome.",
            &[("result", "pending")],
            h.front_pending,
        );
        e.counter("ascy_hotkey_fills_total", "Front-cache slots filled from backing reads.", &[], h.fills);
        e.counter("ascy_hotkey_poisons_total", "Front-cache invalidations by bypassing writes.", &[], h.poisons);
        e.counter("ascy_hotkey_delegated_total", "Hot writes routed through flat combining.", &[], h.delegated);
        e.counter(
            "ascy_hotkey_combined_batches_total",
            "Flat-combining drain passes that applied at least one op.",
            &[],
            h.combined_batches,
        );
    }
    if let Some(c) = ctx.store.cache_stats() {
        e.gauge("ascy_cache_budget_bytes", "Configured payload-byte budget (0 = unbounded).", &[], c.budget_bytes);
        e.gauge("ascy_cache_live_bytes", "Payload bytes currently reserved against the budget.", &[], c.live_bytes);
        e.gauge("ascy_cache_ttl_live", "Live values currently carrying an expiry deadline.", &[], c.ttl_live);
        e.counter("ascy_cache_evictions_total", "Values evicted by the CLOCK policy to fit the budget.", &[], c.evictions);
        e.counter("ascy_cache_forced_admissions_total", "Over-budget stores admitted when nothing was evictable.", &[], c.forced);
        e.counter(
            "ascy_cache_expired_total",
            "Expired values reclaimed, by discovery mode.",
            &[("mode", "lazy")],
            c.expired_lazy,
        );
        e.counter(
            "ascy_cache_expired_total",
            "Expired values reclaimed, by discovery mode.",
            &[("mode", "swept")],
            c.expired_swept,
        );
    }
    for f in Family::ALL {
        let fam = tel.family(f);
        e.counter(
            "ascy_cmd_requests_total",
            "Requests recorded per command family.",
            &[("family", f.name())],
            fam.ops(),
        );
        e.counter(
            "ascy_cmd_hits_total",
            "Per-key hits (found keys for del) per command family.",
            &[("family", f.name())],
            fam.hits,
        );
        e.counter(
            "ascy_cmd_misses_total",
            "Per-key misses (absent keys for del) per command family.",
            &[("family", f.name())],
            fam.misses,
        );
        e.histogram(
            "ascy_request_duration_ns",
            "Request service time (execute phase, sampled) in nanoseconds.",
            &[("family", f.name())],
            &fam.hist,
        );
    }
    for p in Phase::ALL {
        e.histogram(
            "ascy_phase_duration_ns",
            "Time per request-processing phase in nanoseconds.",
            &[("phase", p.name())],
            &tel.phases[p.index()],
        );
    }
    let conc = ctx.hub.concurrency_totals();
    e.counter("ascy_coherence_shared_stores_total", "Stores to shared cache lines inside the structures.", &[], conc.ops.shared_stores);
    e.counter("ascy_coherence_atomic_ops_total", "Atomic RMW operations (CAS/TAS/FAI) attempted.", &[], conc.ops.atomic_ops);
    e.counter("ascy_coherence_atomic_failures_total", "Atomic RMW operations that failed and retried.", &[], conc.ops.atomic_failures);
    e.counter("ascy_coherence_lock_acquisitions_total", "Lock acquisitions inside lock-based structures.", &[], conc.ops.lock_acquisitions);
    e.counter("ascy_coherence_restarts_total", "Structure operations that restarted from scratch.", &[], conc.ops.restarts);
    e.counter("ascy_coherence_waits_total", "Spin-wait episodes on in-flight concurrent work.", &[], conc.ops.waits);
    e.counter("ascy_coherence_nodes_traversed_total", "Nodes visited during structure traversals.", &[], conc.ops.nodes_traversed);
    e.counter("ascy_coherence_operations_total", "Structure-level operations recorded.", &[], conc.ops.operations);
    e.counter("ascy_ssmem_allocations_total", "Epoch-allocator objects handed out.", &[], conc.ssmem.allocations);
    e.counter("ascy_ssmem_frees_total", "Objects released into the epoch limbo lists.", &[], conc.ssmem.frees);
    e.counter("ascy_ssmem_reclaimed_total", "Limbo objects whose grace period expired.", &[], conc.ssmem.reclaimed);
    e.counter("ascy_ssmem_reused_total", "Allocations served from reclaimed memory.", &[], conc.ssmem.reused);
    e.counter("ascy_ssmem_gc_passes_total", "Epoch-advance collection passes.", &[], conc.ssmem.gc_passes);
    e.gauge("ascy_ssmem_pending", "Objects waiting in limbo lists across workers.", &[], conc.ssmem.pending);
    e.gauge("ascy_ssmem_pooled", "Reclaimed objects pooled for reuse across workers.", &[], conc.ssmem.pooled);
    let mon = ctx.monitor.stats();
    e.gauge("ascy_monitor_subscribers", "Connections subscribed to the MONITOR stream.", &[], mon.subscribers);
    e.counter("ascy_monitor_events_total", "Trace events published to the MONITOR stream.", &[], mon.events);
    e.counter("ascy_monitor_dropped_total", "Trace events dropped on full subscriber sinks.", &[], mon.dropped);
    if let Some(w) = ctx.hub.window() {
        e.gauge("ascy_window_span_ms", "Span of the telemetry window backing the rate gauges.", &[], w.elapsed_ms());
        e.gauge("ascy_window_ops_per_sec", "Keyspace operations per second over the window.", &[], w.rate(WIN_OPS) as u64);
        e.gauge("ascy_window_bytes_in_per_sec", "Socket bytes read per second over the window.", &[], w.rate(WIN_BYTES_IN) as u64);
        e.gauge("ascy_window_bytes_out_per_sec", "Socket bytes written per second over the window.", &[], w.rate(WIN_BYTES_OUT) as u64);
        e.gauge("ascy_window_errors_per_sec", "Error frames per second over the window.", &[], w.rate(WIN_ERRORS) as u64);
        e.gauge("ascy_window_cas_fails_per_sec", "Failed structure CAS attempts per second over the window.", &[], w.rate(WIN_CAS_FAILS) as u64);
        e.gauge("ascy_window_restarts_per_sec", "Structure restarts per second over the window.", &[], w.rate(WIN_RESTARTS) as u64);
        e.gauge("ascy_window_request_p99_ns", "p99 service time over the window in nanoseconds.", &[], w.hist.quantile(0.99));
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlobStore;
    use ascylib::hashtable::ClhtLb;
    use ascylib_shard::BlobMap;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::time::Duration;

    fn pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (Connection::new(accepted).unwrap(), peer)
    }

    /// Single-worker hub over one telemetry block, standing in for the
    /// server's `Shared`. The test thread doubles as the worker: the
    /// concurrency fold that a real worker performs after each connection
    /// pass happens here at query time, and the window clock is a fake
    /// that advances one millisecond per call so two consecutive scrapes
    /// always produce a measurable window.
    struct TestHub<'a> {
        tel: &'a WorkerTelemetry,
        stats: &'a WorkerStats,
        conc: crate::stats::ConcurrencyStats,
        ring: ascylib_telemetry::WindowRing,
        ticks: std::sync::atomic::AtomicU64,
        started: Instant,
    }

    impl<'a> TestHub<'a> {
        fn new(tel: &'a WorkerTelemetry, stats: &'a WorkerStats) -> TestHub<'a> {
            TestHub {
                tel,
                stats,
                conc: crate::stats::ConcurrencyStats::default(),
                ring: ascylib_telemetry::WindowRing::new(1, 8),
                ticks: std::sync::atomic::AtomicU64::new(0),
                started: Instant::now(),
            }
        }
    }

    impl TelemetryHub for TestHub<'_> {
        fn telemetry_totals(&self) -> TelemetrySnapshot {
            self.tel.snapshot()
        }
        fn slow_ops(&self) -> Vec<SlowOp> {
            let mut ops = self.tel.slow_ops();
            ops.reverse();
            ops
        }
        fn slow_reset(&self) {
            self.tel.slow_reset();
        }
        fn slow_len(&self) -> u64 {
            self.tel.slow_len() as u64
        }
        fn workers(&self) -> usize {
            1
        }
        fn uptime_ms(&self) -> u64 {
            self.started.elapsed().as_millis() as u64
        }
        fn concurrency_totals(&self) -> ConcurrencySnapshot {
            self.conc.fold_ops(&ascylib::stats::drain_delta());
            self.conc.set_ssmem(&ascylib_ssmem::thread_stats());
            self.conc.snapshot()
        }
        fn window(&self) -> Option<WindowDelta> {
            use std::sync::atomic::Ordering;
            let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
            let t = self.stats.snapshot();
            let c = self.conc.snapshot();
            self.ring.rotate(ascylib_telemetry::WindowSample {
                unix_ms: tick,
                mono_ns: tick * 1_000_000,
                counters: vec![
                    t.ops,
                    t.bytes_in,
                    t.bytes_out,
                    t.errors,
                    c.ops.atomic_failures,
                    c.ops.restarts,
                ],
                hist: self.tel.snapshot().data_requests(),
            });
            self.ring.delta(ascylib_telemetry::window::DEFAULT_WINDOW_NS)
        }
    }

    fn run_ctx(test: impl FnOnce(&ConnCtx<'_>)) {
        let map = Arc::new(BlobMap::new(1, |_| ClhtLb::with_capacity(64)));
        let store = BlobStore::new(map);
        let stats = WorkerStats::default();
        let tel = WorkerTelemetry::new();
        let hub = TestHub::new(&tel, &stats);
        let monitor = MonitorHub::default();
        let totals = || ServerStatsSnapshot::default();
        let ctx = ConnCtx {
            store: &store,
            max_pipeline: 4,
            stats: &stats,
            totals: &totals,
            tel: &tel,
            hub: &hub,
            recording: true,
            slow_ns: u64::MAX,
            worker: 0,
            monitor: &monitor,
        };
        test(&ctx);
    }

    #[test]
    fn idle_socket_arms_for_readability_then_serves_a_frame() {
        run_ctx(|ctx| {
            let (mut conn, mut peer) = pair();
            let mut chunk = [0u8; 4096];
            assert!(matches!(conn.advance(ctx, &mut chunk), Advance::Arm(i) if i.is_readable()));
            assert_eq!(conn.state, State::Reading);
            peer.write_all(b"PING\r\n").unwrap();
            // Loopback delivery is asynchronous; retry the advance until the
            // frame has been executed (visible in this worker's counters).
            let deadline = Instant::now() + Duration::from_secs(5);
            while ctx.stats.frames.load(std::sync::atomic::Ordering::Relaxed) == 0 {
                match conn.advance(ctx, &mut chunk) {
                    Advance::Arm(i) => assert!(i.is_readable()),
                    Advance::Yield => {}
                    Advance::Close(exit) => panic!("unexpected close: {exit:?}"),
                }
                assert!(Instant::now() < deadline, "frame not served before deadline");
                std::thread::sleep(Duration::from_millis(1));
            }
            let mut reply = [0u8; 16];
            peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let n = peer.read(&mut reply).unwrap();
            assert_eq!(&reply[..n], b"+PONG\r\n");
        });
    }

    #[test]
    fn quit_flushes_bye_then_closes() {
        run_ctx(|ctx| {
            let (mut conn, mut peer) = pair();
            peer.write_all(b"QUIT\r\n").unwrap();
            let mut chunk = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match conn.advance(ctx, &mut chunk) {
                    Advance::Close(exit) => {
                        assert_eq!(exit, ConnExit::Quit);
                        break;
                    }
                    _ => {
                        assert!(Instant::now() < deadline);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            assert_eq!(conn.state, State::Closing);
            drop(conn);
            let mut reply = Vec::new();
            peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            peer.read_to_end(&mut reply).unwrap();
            assert_eq!(reply, b"+BYE\r\n");
        });
    }

    #[test]
    fn peer_eof_closes_after_buffered_frames_are_answered() {
        run_ctx(|ctx| {
            let (mut conn, mut peer) = pair();
            peer.write_all(b"SET 1 3\r\nabc\r\n").unwrap();
            peer.shutdown(std::net::Shutdown::Write).unwrap();
            let mut chunk = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match conn.advance(ctx, &mut chunk) {
                    Advance::Close(exit) => {
                        assert_eq!(exit, ConnExit::Eof);
                        break;
                    }
                    _ => {
                        assert!(Instant::now() < deadline);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            // The SET was executed and its reply flushed before the close.
            assert_eq!(ctx.store.size(), 1);
            drop(conn);
            let mut reply = Vec::new();
            peer.read_to_end(&mut reply).unwrap();
            assert_eq!(reply, b":1\r\n");
        });
    }

    #[test]
    fn info_and_metrics_render_from_served_traffic() {
        run_ctx(|ctx| {
            let mut bufs = ConnBufs::default();
            let mut out = Vec::new();
            execute(&Request::Set(5, b"abc".to_vec()), ctx, &mut bufs, &mut out);
            execute(&Request::Get(5), ctx, &mut bufs, &mut out);
            execute(&Request::Get(6), ctx, &mut bufs, &mut out);
            execute(&Request::Del(5), ctx, &mut bufs, &mut out);
            execute(&Request::Del(5), ctx, &mut bufs, &mut out);
            let load = |c: &std::sync::atomic::AtomicU64| {
                c.load(std::sync::atomic::Ordering::Relaxed)
            };
            assert_eq!(load(&ctx.stats.hits), 1);
            assert_eq!(load(&ctx.stats.misses), 1);

            let info = render_info(ctx, None).unwrap();
            for header in ["# server", "# commands", "# latency", "# memory", "# concurrency"] {
                assert!(info.contains(header), "INFO is missing {header}:\n{info}");
            }
            assert!(info.contains("cmd_get_hits:1"));
            assert!(info.contains("cmd_get_misses:1"));
            assert!(info.contains("cmd_del_found:1"));
            assert!(info.contains("cmd_del_not_found:1"));
            let only = render_info(ctx, Some("memory")).unwrap();
            assert!(only.starts_with("# memory") && !only.contains("# server"));
            assert!(render_info(ctx, Some("bogus")).is_err());

            let metrics = render_metrics(ctx);
            ascylib_telemetry::expo::validate(&metrics).expect("METRICS body validates");
            assert!(metrics.contains("ascy_cmd_requests_total{family=\"get\"}"));
            assert!(metrics.contains("ascy_request_duration_ns_bucket"));
        });
    }

    #[test]
    fn hotkey_surfaces_render_and_validate() {
        use ascylib_shard::HotKeyConfig;
        let map = Arc::new(BlobMap::with_hotkeys(1, HotKeyConfig::eager(8), |_| {
            ClhtLb::with_capacity(64)
        }));
        let store = BlobStore::new(Arc::clone(&map));
        let stats = WorkerStats::default();
        let tel = WorkerTelemetry::new();
        let hub = TestHub::new(&tel, &stats);
        let monitor = MonitorHub::default();
        let totals = || ServerStatsSnapshot::default();
        let ctx = ConnCtx {
            store: &store,
            max_pipeline: 4,
            stats: &stats,
            totals: &totals,
            tel: &tel,
            hub: &hub,
            recording: true,
            slow_ns: u64::MAX,
            worker: 0,
            monitor: &monitor,
        };
        let mut bufs = ConnBufs::default();
        let mut out = Vec::new();
        execute(&Request::Set(7, b"hot".to_vec()), &ctx, &mut bufs, &mut out);
        for _ in 0..64 {
            execute(&Request::Get(7), &ctx, &mut bufs, &mut out);
        }
        execute(&Request::Set(7, b"hotter".to_vec()), &ctx, &mut bufs, &mut out);
        execute(&Request::Get(7), &ctx, &mut bufs, &mut out);
        let h = store.hotkey_stats().expect("engine is attached");
        assert!(h.front_hits > 0, "64 gets on one key must hit the front cache: {h:?}");

        out.clear();
        execute(&Request::Stats, &ctx, &mut bufs, &mut out);
        let stats_line = String::from_utf8_lossy(&out).into_owned();
        for field in ["hotkey_fronted=", "hotkey_front_hits=", "hotkey_delegated="] {
            assert!(stats_line.contains(field), "STATS is missing {field}: {stats_line}");
        }

        let info = render_info(&ctx, Some("hotkeys")).unwrap();
        assert!(info.starts_with("# hotkeys"));
        assert!(info.contains("hotkey_engine:on"));
        assert!(info.contains("hotkey_front_hits:"));
        assert!(info.contains("hotkey_front_hit_rate:"));
        assert!(info.contains("hot_key_0:key=7 est="), "top-k line missing:\n{info}");
        assert!(render_info(&ctx, None).unwrap().contains("# hotkeys"));

        let metrics = render_metrics(&ctx);
        ascylib_telemetry::expo::validate(&metrics).expect("METRICS body validates");
        for family in [
            "ascy_hotkey_fronted ",
            "ascy_hotkey_sampled_total ",
            "ascy_hotkey_front_reads_total{result=\"hit\"}",
            "ascy_hotkey_front_reads_total{result=\"absent\"}",
            "ascy_hotkey_front_reads_total{result=\"pending\"}",
            "ascy_hotkey_fills_total ",
            "ascy_hotkey_delegated_total ",
            "ascy_hotkey_combined_batches_total ",
        ] {
            assert!(metrics.contains(family), "METRICS is missing {family}");
        }

        // Engine-less stores keep the section but mark the engine off and
        // export no hotkey metric families.
        run_ctx(|ctx| {
            let info = render_info(ctx, Some("hotkeys")).unwrap();
            assert!(info.contains("hotkey_engine:off"));
            assert!(!render_metrics(ctx).contains("ascy_hotkey"));
            out.clear();
            let mut bufs = ConnBufs::default();
            execute(&Request::Stats, ctx, &mut bufs, &mut out);
            assert!(!String::from_utf8_lossy(&out).contains("hotkey_"));
        });
    }

    /// A [`KvStore`] without a cache tier: delegates the byte-value surface
    /// to a blob store but keeps the trait's expiry defaults, so the
    /// connection layer's in-band rejection path is reachable in tests.
    struct NoCacheStore(BlobStore<ClhtLb>);

    impl KvStore for NoCacheStore {
        fn get(&self, key: u64, out: &mut Vec<u8>) -> bool {
            self.0.get(key, out)
        }
        fn set(&self, key: u64, value: &[u8]) -> bool {
            self.0.set(key, value)
        }
        fn del(&self, key: u64) -> bool {
            self.0.del(key)
        }
        fn multi_get(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>) {
            self.0.multi_get(keys, out)
        }
        fn multi_set(&self, entries: &[(u64, Vec<u8>)]) -> Vec<bool> {
            self.0.multi_set(entries)
        }
        fn scan(&self, from: u64, n: usize) -> Option<Vec<(u64, Vec<u8>)>> {
            self.0.scan(from, n)
        }
        fn size(&self) -> usize {
            self.0.size()
        }
        fn shard_count(&self) -> usize {
            self.0.shard_count()
        }
        fn ops_and_hits(&self) -> (u64, u64) {
            self.0.ops_and_hits()
        }
        fn value_bytes(&self) -> u64 {
            self.0.value_bytes()
        }
    }

    #[test]
    fn cache_surfaces_and_expiry_verbs_render_and_validate() {
        use ascylib_shard::{CacheConfig, FakeClock, HotKeyConfig};
        let clock = Arc::new(FakeClock::new());
        clock.set(1_000);
        let cfg = CacheConfig::unbounded()
            .with_budget(16 * 1024)
            .with_clock(clock.clone());
        let map = Arc::new(BlobMap::with_config(1, HotKeyConfig::default(), cfg, |_| {
            ClhtLb::with_capacity(1024)
        }));
        let store = BlobStore::new(Arc::clone(&map));
        let stats = WorkerStats::default();
        let tel = WorkerTelemetry::new();
        let hub = TestHub::new(&tel, &stats);
        let monitor = MonitorHub::default();
        let totals = || ServerStatsSnapshot::default();
        let ctx = ConnCtx {
            store: &store,
            max_pipeline: 4,
            stats: &stats,
            totals: &totals,
            tel: &tel,
            hub: &hub,
            recording: true,
            slow_ns: u64::MAX,
            worker: 0,
            monitor: &monitor,
        };
        let mut bufs = ConnBufs::default();
        let mut out = Vec::new();

        // The expiry verbs run end to end: lease a key, inspect the lease,
        // strip it, re-arm it, and probe a key that was never set.
        execute(&Request::SetEx(7, b"lease".to_vec(), 60), &ctx, &mut bufs, &mut out);
        execute(&Request::Ttl(7), &ctx, &mut bufs, &mut out);
        execute(&Request::Persist(7), &ctx, &mut bufs, &mut out);
        execute(&Request::Ttl(7), &ctx, &mut bufs, &mut out);
        execute(&Request::Expire(7, 5), &ctx, &mut bufs, &mut out);
        execute(&Request::Ttl(9), &ctx, &mut bufs, &mut out);
        assert_eq!(
            String::from_utf8_lossy(&out),
            ":1\r\n:60\r\n:1\r\n+none\r\n:1\r\n_\r\n",
            "SETEX/TTL/PERSIST/EXPIRE reply stream"
        );
        // Past the deadline the lease reads back as a miss (lazy expiry).
        clock.advance(6_000);
        out.clear();
        execute(&Request::Get(7), &ctx, &mut bufs, &mut out);
        assert_eq!(out, b"_\r\n", "an expired lease must read as a miss");

        // Churn well past the 16 KiB budget so CLOCK eviction engages.
        let payload = vec![0xAB; 256];
        for k in 1..=256u64 {
            execute(&Request::Set(k, payload.clone()), &ctx, &mut bufs, &mut out);
        }
        let c = store.cache_stats().expect("blob stores always report a cache tier");
        assert!(c.evictions > 0, "256 x 256 B against 16 KiB must evict: {c:?}");
        assert_eq!(c.forced, 0, "values fit the budget, nothing should be forced: {c:?}");
        assert!(c.live_bytes <= c.budget_bytes, "budget overrun: {c:?}");
        assert!(c.expired_lazy >= 1, "the lapsed lease was collected lazily: {c:?}");

        out.clear();
        execute(&Request::Stats, &ctx, &mut bufs, &mut out);
        let stats_line = String::from_utf8_lossy(&out).into_owned();
        for field in [
            "cache_budget_bytes=",
            "cache_live_bytes=",
            "cache_evictions=",
            "cache_expired_lazy=",
            "cache_expired_swept=",
        ] {
            assert!(stats_line.contains(field), "STATS is missing {field}: {stats_line}");
        }

        let info = render_info(&ctx, Some("cache")).unwrap();
        assert!(info.starts_with("# cache"));
        assert!(info.contains("cache_tier:on"));
        assert!(info.contains("cache_budget:on"));
        assert!(info.contains("cache_budget_bytes:16384"));
        assert!(info.contains("cache_fill_ratio:"), "bounded tiers report fill:\n{info}");
        assert!(info.contains("cache_ttl_live:"));
        assert!(render_info(&ctx, None).unwrap().contains("# cache"));

        let metrics = render_metrics(&ctx);
        ascylib_telemetry::expo::validate(&metrics).expect("METRICS body validates");
        for family in [
            "ascy_cache_budget_bytes ",
            "ascy_cache_live_bytes ",
            "ascy_cache_ttl_live ",
            "ascy_cache_evictions_total ",
            "ascy_cache_forced_admissions_total ",
            "ascy_cache_expired_total{mode=\"lazy\"}",
            "ascy_cache_expired_total{mode=\"swept\"}",
        ] {
            assert!(metrics.contains(family), "METRICS is missing {family}");
        }

        // A store without a cache tier rejects the expiry verbs in-band
        // and exports none of the cache surfaces.
        let plain = NoCacheStore(BlobStore::new(Arc::new(BlobMap::new(1, |_| {
            ClhtLb::with_capacity(64)
        }))));
        let ctx = ConnCtx { store: &plain, ..ctx };
        out.clear();
        execute(&Request::Set(3, b"v".to_vec()), &ctx, &mut bufs, &mut out);
        for req in [
            Request::SetEx(3, b"v".to_vec(), 5),
            Request::Expire(3, 5),
            Request::Ttl(3),
            Request::Persist(3),
        ] {
            out.clear();
            execute(&req, &ctx, &mut bufs, &mut out);
            let reply = String::from_utf8_lossy(&out).into_owned();
            assert!(
                reply.starts_with('-') && reply.contains(EXPIRY_UNSUPPORTED_MSG),
                "{req:?} must be rejected in-band: {reply}"
            );
        }
        let info = render_info(&ctx, Some("cache")).unwrap();
        assert!(info.contains("cache_tier:off"));
        assert!(!render_metrics(&ctx).contains("ascy_cache"));
        out.clear();
        execute(&Request::Stats, &ctx, &mut bufs, &mut out);
        assert!(!String::from_utf8_lossy(&out).contains("cache_"));
    }

    #[test]
    fn slowlog_threshold_zero_captures_everything() {
        run_ctx(|ctx| {
            let ctx = ConnCtx { slow_ns: 0, ..*ctx };
            let (mut conn, mut peer) = pair();
            peer.write_all(b"SET 9 3\r\nxyz\r\n").unwrap();
            let mut chunk = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(5);
            while ctx.hub.slow_len() == 0 {
                if let Advance::Close(exit) = conn.advance(&ctx, &mut chunk) {
                    panic!("unexpected close: {exit:?}");
                }
                assert!(Instant::now() < deadline, "slow op not captured before deadline");
                std::thread::sleep(Duration::from_millis(1));
            }
            let ops = ctx.hub.slow_ops();
            assert_eq!(ops[0].family, Family::Set);
            assert_eq!(ops[0].key, 9);
            assert_eq!(ops[0].bytes, 3);
            assert!(ops[0].unix_ms > 0);
            assert_eq!(ops[0].worker, 0);
            assert_eq!(ops[0].shard, 0, "single-shard store attributes shard 0");
            let body = render_slowlog(&ops);
            assert!(body.contains("family=set key=9 bytes=3"));
            assert!(body.contains("worker=0 shard=0"), "{body}");
            ctx.hub.slow_reset();
            assert_eq!(ctx.hub.slow_len(), 0);
        });
    }

    #[test]
    fn oversized_report_bodies_truncate_at_a_line_boundary() {
        let line = "x".repeat(99);
        let mut body = String::new();
        while body.len() <= MAX_VALUE + 1000 {
            body.push_str(&line);
            body.push('\n');
        }
        let mut out = Vec::new();
        bulk_capped(&mut out, &body);
        let header_end = out.iter().position(|&b| b == b'\n').unwrap();
        let header = std::str::from_utf8(&out[1..header_end - 1]).unwrap();
        let len: usize = header.parse().unwrap();
        assert!(len <= MAX_VALUE, "bulk of {len} bytes would be rejected client-side");
        let payload = &out[header_end + 1..header_end + 1 + len];
        assert!(payload.ends_with(b"# truncated\n"));
        // Whole lines only: every chunk before the marker is a full line.
        let text = std::str::from_utf8(payload).unwrap();
        for l in text.lines() {
            assert!(l == "# truncated" || l.len() == 99);
        }
        // Small bodies pass through untouched.
        let mut small = Vec::new();
        bulk_capped(&mut small, "hello\n");
        assert_eq!(small, b"$6\r\nhello\n\r\n");
    }

    #[test]
    fn info_concurrency_and_windowed_rates_render_from_served_traffic() {
        run_ctx(|ctx| {
            let mut bufs = ConnBufs::default();
            let mut out = Vec::new();
            for k in 1..=32u64 {
                execute(&Request::Set(k, b"v".to_vec()), ctx, &mut bufs, &mut out);
                execute(&Request::Get(k), ctx, &mut bufs, &mut out);
            }
            let first = render_info(ctx, Some("concurrency")).unwrap();
            assert!(first.starts_with("# concurrency"), "{first}");
            assert!(first.contains("coherence_atomic_ops:"), "{first}");
            assert!(first.contains("monitor_subscribers:0"), "{first}");
            // The structures really moved the coherence counters.
            let conc = ctx.hub.concurrency_totals();
            assert!(
                conc.ops.operations > 0,
                "served sets/gets must fold into the concurrency block: {conc:?}"
            );
            // The second scrape has two window samples and renders rates.
            let second = render_info(ctx, Some("concurrency")).unwrap();
            assert!(second.contains("ops_per_sec:"), "{second}");
            assert!(second.contains("window_span_ms:"), "{second}");
            assert!(second.contains("cas_fails_per_sec:"), "{second}");
            // Memory section carries the allocator aggregates.
            let mem = render_info(ctx, Some("memory")).unwrap();
            assert!(mem.contains("ssmem_allocations:"), "{mem}");
            assert!(mem.contains("ssmem_pending:"), "{mem}");
            // The windowed tail-latency fields land in the latency section.
            let lat = render_info(ctx, Some("latency")).unwrap();
            assert!(lat.contains("request_p99_10s_ns:"), "{lat}");
            // STATS rides the allocator aggregates at the end of the line.
            out.clear();
            execute(&Request::Stats, ctx, &mut bufs, &mut out);
            let line = String::from_utf8_lossy(&out).into_owned();
            assert!(line.contains("ssmem_allocations="), "{line}");
            // METRICS exports the new families and still validates.
            let metrics = render_metrics(ctx);
            ascylib_telemetry::expo::validate(&metrics).expect("METRICS body validates");
            for family in [
                "ascy_coherence_atomic_ops_total ",
                "ascy_coherence_operations_total ",
                "ascy_ssmem_allocations_total ",
                "ascy_ssmem_pending ",
                "ascy_monitor_subscribers ",
                "ascy_window_ops_per_sec ",
                "ascy_window_request_p99_ns ",
            ] {
                assert!(metrics.contains(family), "METRICS is missing {family}:\n{metrics}");
            }
        });
    }

    #[test]
    fn monitor_subscription_streams_trace_events_over_loopback() {
        run_ctx(|ctx| {
            // Subscribe one connection: MONITOR answers +OK and surfaces
            // the subscribe intent for the "worker" (this test) to act on.
            let (mut sub, mut sub_peer) = pair();
            sub_peer.write_all(b"MONITOR\r\n").unwrap();
            let mut chunk = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(5);
            let sample = loop {
                if let Advance::Close(exit) = sub.advance(ctx, &mut chunk) {
                    panic!("unexpected close: {exit:?}");
                }
                if let Some(sample) = sub.take_pending_monitor() {
                    break sample;
                }
                assert!(Instant::now() < deadline, "MONITOR frame not served");
                std::thread::sleep(Duration::from_millis(1));
            };
            assert_eq!(sample, None, "bare MONITOR keeps every sampled event");
            sub.attach_monitor(ctx.monitor.subscribe(1, sample));
            assert!(ctx.monitor.active());

            // Traffic on a second connection publishes into the hub (the
            // first slot of every batch is always timed, hence eligible).
            let (mut data, mut data_peer) = pair();
            data_peer.write_all(b"SET 5 3\r\nabc\r\n").unwrap();
            while ctx.monitor.stats().events == 0 {
                if let Advance::Close(exit) = data.advance(ctx, &mut chunk) {
                    panic!("unexpected close: {exit:?}");
                }
                assert!(Instant::now() < deadline, "no event published");
                std::thread::sleep(Duration::from_millis(1));
            }
            // The publishing pass noted the subscriber's token for wake-up.
            assert!(ctx.monitor.take_wakes().contains(&1), "publish queues a wake");

            // The subscriber's own advance drains the sink into its write
            // buffer; the peer sees +OK then the trace frame.
            let mut got = Vec::new();
            let mut buf = [0u8; 4096];
            sub_peer.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            while !String::from_utf8_lossy(&got).contains("+monitor ") {
                if let Advance::Close(exit) = sub.advance(ctx, &mut chunk) {
                    panic!("unexpected close: {exit:?}");
                }
                if let Ok(n) = sub_peer.read(&mut buf) {
                    got.extend_from_slice(&buf[..n]);
                }
                assert!(Instant::now() < deadline, "trace frame never arrived: {got:?}");
            }
            let text = String::from_utf8_lossy(&got);
            assert!(text.starts_with("+OK\r\n"), "{text}");
            assert!(text.contains("family=set"), "{text}");
            assert!(text.contains("key=5"), "{text}");
            assert!(text.contains("worker=0"), "{text}");
        });
    }

    #[test]
    fn evicted_monitor_subscriber_is_closed_in_band() {
        run_ctx(|ctx| {
            // A hub no frame fits into: the first publish drops, and one
            // drop is already the eviction threshold.
            let tiny = MonitorHub::with_limits(8, 1);
            let ctx = ConnCtx { monitor: &tiny, ..*ctx };
            let (mut conn, mut peer) = pair();
            conn.attach_monitor(tiny.subscribe(1, None));
            tiny.publish(&MonitorEvent {
                unix_ms: 1,
                family: Family::Get,
                key: 1,
                bytes: 0,
                service_ns: 100,
                worker: 0,
            });
            assert!(tiny.take_wakes().contains(&1), "eviction crossing wakes the victim");
            let mut chunk = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match conn.advance(&ctx, &mut chunk) {
                    Advance::Close(exit) => {
                        assert_eq!(exit, ConnExit::Quit);
                        break;
                    }
                    _ => {
                        assert!(Instant::now() < deadline);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            drop(conn);
            let mut reply = Vec::new();
            peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            peer.read_to_end(&mut reply).unwrap();
            let text = String::from_utf8_lossy(&reply);
            assert!(text.contains("-ERR monitor stream lagged"), "{text}");
            assert_eq!(tiny.stats().subscribers, 0, "the sink marked itself gone");
        });
    }
}
