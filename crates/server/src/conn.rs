//! Per-connection serving state: buffered reads, pipelined dispatch,
//! in-order responses.
//!
//! A connection is served by one worker thread at a time. Each iteration
//! reads whatever bytes the socket has, feeds them to the incremental
//! [`RequestParser`], and then executes *every* complete frame that arrived
//! — that batch is the pipelining unit. Responses are appended to one write
//! buffer in request order and flushed once per batch, so a client that
//! pipelines `k` frames pays one round trip instead of `k`.
//!
//! `MGET` dispatches through the store's batched lookup into a per-
//! connection result buffer (the shard layer visits each shard once per
//! frame and no per-batch result vector is allocated); `GET` copies the
//! value out into a reused buffer. Malformed frames — oversized values
//! included — consume exactly one error reply and the connection keeps
//! serving (the parser resynchronizes past the offending input).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::protocol::{wire, ParseError, Request, RequestParser};
use crate::stats::{ServerStatsSnapshot, WorkerStats};
use crate::store::{KvStore, KEY_RANGE};

/// Everything a worker needs to serve one connection.
pub(crate) struct ConnCtx<'a> {
    /// The keyspace being served.
    pub store: &'a dyn KvStore,
    /// Server-wide shutdown flag, polled at read-timeout granularity.
    pub shutdown: &'a AtomicBool,
    /// Most frames executed per batch (backpressure: a client that floods
    /// frames faster than they execute is drained in chunks this large).
    pub max_pipeline: usize,
    /// Socket read timeout; doubles as the shutdown poll interval.
    pub read_timeout: Duration,
    /// This worker's padded counters.
    pub stats: &'a WorkerStats,
    /// Aggregated counters across all workers (for `STATS` frames).
    pub totals: &'a dyn Fn() -> ServerStatsSnapshot,
}

/// Reusable per-connection buffers for value copy-out, so the serving hot
/// path allocates per payload copy, not per frame.
#[derive(Default)]
struct ConnBufs {
    /// `GET` value destination.
    value: Vec<u8>,
    /// `MGET` result destination.
    batch: Vec<Option<Vec<u8>>>,
}

/// Why [`serve_connection`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnExit {
    /// Peer closed the stream.
    Eof,
    /// Peer sent `QUIT` and was answered `+BYE`.
    Quit,
    /// The server is shutting down.
    Shutdown,
    /// An I/O error ended the connection.
    Error,
}

/// Serves one connection to completion. Never panics on malformed input;
/// all protocol errors are answered in-band with `-ERR` frames.
pub(crate) fn serve_connection(mut stream: TcpStream, ctx: &ConnCtx<'_>) -> ConnExit {
    // NODELAY: un-pipelined request/response traffic must not sit out
    // Nagle/delayed-ACK timers. Write timeout: a peer that stops draining
    // cannot wedge a worker past shutdown.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));

    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut batch: Vec<Result<Request, ParseError>> = Vec::new();
    let mut bufs = ConnBufs::default();

    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return ConnExit::Eof,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if ctx.shutdown.load(Ordering::Acquire) {
                    return ConnExit::Shutdown;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ConnExit::Error,
        };
        WorkerStats::bump(&ctx.stats.bytes_in, n as u64);
        parser.feed(&chunk[..n]);

        // Drain the parser in pipeline-sized batches. The inner loop keeps
        // going until the parser runs dry, so a read() that delivered 500
        // frames answers all 500 before blocking again.
        loop {
            batch.clear();
            while batch.len() < ctx.max_pipeline {
                match parser.next() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            let mut quit = false;
            for item in &batch {
                match item {
                    Ok(req) => {
                        if execute(req, ctx, &mut bufs, &mut wbuf) == Flow::Quit {
                            quit = true;
                            break;
                        }
                    }
                    Err(e) => {
                        WorkerStats::bump(&ctx.stats.errors, 1);
                        wire::error(&mut wbuf, &e.to_string());
                    }
                }
            }
            let flushed = flush(&mut stream, &mut wbuf, ctx);
            if quit {
                return ConnExit::Quit;
            }
            if !flushed {
                return ConnExit::Error;
            }
        }
        if ctx.shutdown.load(Ordering::Acquire) {
            return ConnExit::Shutdown;
        }
    }
}

fn flush(stream: &mut TcpStream, wbuf: &mut Vec<u8>, ctx: &ConnCtx<'_>) -> bool {
    if wbuf.is_empty() {
        return true;
    }
    let ok = stream.write_all(wbuf).and_then(|()| stream.flush()).is_ok();
    if ok {
        // Only bytes actually written count; a failed/timed-out write must
        // not inflate the STATS view of traffic served.
        WorkerStats::bump(&ctx.stats.bytes_out, wbuf.len() as u64);
    }
    wbuf.clear();
    ok
}

#[derive(PartialEq, Eq)]
enum Flow {
    Continue,
    Quit,
}

fn key_ok(key: u64) -> bool {
    (KEY_RANGE.0..=KEY_RANGE.1).contains(&key)
}

const KEY_RANGE_MSG: &str = "key out of usable range [1, 2^64-2]";

/// Executes one well-formed frame against the store, appending its reply.
fn execute(req: &Request, ctx: &ConnCtx<'_>, bufs: &mut ConnBufs, out: &mut Vec<u8>) -> Flow {
    let stats = ctx.stats;
    WorkerStats::bump(&stats.frames, 1);
    match req {
        Request::Get(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            if ctx.store.get(*k, &mut bufs.value) {
                wire::bulk(out, &bufs.value);
            } else {
                wire::null(out);
            }
        }
        Request::Set(k, v) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.set(*k, v) as u64);
        }
        Request::Del(k) => {
            if !key_ok(*k) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, 1);
            wire::int(out, ctx.store.del(*k) as u64);
        }
        Request::MGet(keys) => {
            // Validate the whole frame before executing any of it: a batch
            // either runs entirely or answers one error.
            if !keys.iter().all(|&k| key_ok(k)) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, keys.len() as u64);
            ctx.store.multi_get(keys, &mut bufs.batch);
            wire::array_header(out, bufs.batch.len());
            for item in &bufs.batch {
                match item {
                    Some(v) => wire::bulk(out, v),
                    None => wire::null(out),
                }
            }
        }
        Request::MSet(entries) => {
            if !entries.iter().all(|&(k, _)| key_ok(k)) {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, KEY_RANGE_MSG);
                return Flow::Continue;
            }
            WorkerStats::bump(&stats.ops, entries.len() as u64);
            let outcomes = ctx.store.multi_set(entries);
            wire::array_header(out, outcomes.len());
            for created in outcomes {
                wire::int(out, created as u64);
            }
        }
        Request::Scan(from, n) => match ctx.store.scan(*from, *n) {
            Some(pairs) => {
                WorkerStats::bump(&stats.ops, 1);
                wire::array_header(out, pairs.len());
                for (k, v) in pairs {
                    wire::pair(out, k, &v);
                }
            }
            None => {
                WorkerStats::bump(&stats.errors, 1);
                wire::error(out, "scans unsupported by this store (unordered backing)");
            }
        },
        Request::Ping => wire::simple(out, "PONG"),
        Request::Stats => {
            let totals = (ctx.totals)();
            let (store_ops, store_hits) = ctx.store.ops_and_hits();
            let info = format!(
                "size={} shards={} value_bytes={} store_ops={store_ops} store_hits={store_hits} conns={} frames={} ops={} errors={} bytes_in={} bytes_out={}",
                ctx.store.size(),
                ctx.store.shard_count(),
                ctx.store.value_bytes(),
                totals.connections,
                totals.frames,
                totals.ops,
                totals.errors,
                totals.bytes_in,
                totals.bytes_out,
            );
            wire::simple(out, &info);
        }
        Request::Quit => {
            wire::simple(out, "BYE");
            return Flow::Quit;
        }
    }
    Flow::Continue
}
