//! Multi-connection load generators for the wire protocol, with payload
//! generation, in two driving disciplines.
//!
//! Replays the harness's workload vocabulary — any
//! [`OpMix`] (YCSB A–E presets included) under any
//! [`KeyDist`] (uniform / Zipfian / hotspot) — over real sockets, with a
//! **value-size axis**: every `SET` carries a payload drawn from a
//! [`ValueSize`] distribution (fixed, uniform, or bimodal — the classic
//! "mostly small values, a tail of big ones" production shape), generated
//! with `Rng::fill_bytes`, so the measured traffic moves real bytes, not
//! just 64-bit tokens.
//!
//! **Closed loop** ([`LoadMode::Closed`]): each connection keeps at most
//! `pipeline_depth` requests in flight and issues the next batch only after
//! the previous one is fully answered, so measured throughput is bounded by
//! round trips (depth 1) or by server capacity (deep pipelines). A closed
//! loop self-throttles: when the server slows down, the clients slow down
//! with it — which also means its latency numbers silently *exclude* the
//! queueing delay a real open population would have suffered (coordinated
//! omission).
//!
//! **Open loop** ([`LoadMode::Open`]): requests arrive on a schedule —
//! fixed-rate or Poisson — independent of how fast the server answers, and
//! every operation's latency is measured from its **intended send time**,
//! not from when the socket finally accepted it. If the server stalls for
//! 100 ms, the operations scheduled during the stall each record their full
//! queueing delay, exactly as a real user would have experienced it. This
//! is the discipline that makes tail percentiles (p999/p9999) honest, and
//! it is how the connection-sweep figure is measured.
//!
//! Alongside operation throughput and latency percentiles, the result
//! reports **payload bandwidth**: bytes of values written (`SET` payloads
//! sent) and read (`GET` hits and `SCAN` pairs received), as MB/s — the
//! number that shows when a workload stops being latency-bound and starts
//! being memory/bandwidth-bound.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use polling::{Events, Interest, Poller};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use ascylib_harness::{KeyDist, KeySampler, LatencyStats, OpMix, Operation};
use ascylib_telemetry::{Histogram, HistogramSnapshot};

use crate::client::Client;
use crate::protocol::{encode_request, encode_set, Reply, ReplyParser, Request, MAX_SCAN, MAX_VALUE};

/// Distribution of `SET` payload sizes (bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueSize {
    /// Every value is exactly this many bytes.
    Fixed(usize),
    /// Uniform in `[min, max]` (inclusive).
    Uniform {
        /// Smallest value size.
        min: usize,
        /// Largest value size.
        max: usize,
    },
    /// `large_pct`% of values are `large` bytes, the rest `small` — the
    /// "metadata plus occasional media" shape of production KV traffic.
    Bimodal {
        /// Size of the common small values.
        small: usize,
        /// Size of the rare large values.
        large: usize,
        /// Percentage (0–100) of values that are large.
        large_pct: u32,
    },
}

impl ValueSize {
    /// Draws one payload size. Sizes are clamped to the protocol's
    /// [`MAX_VALUE`] so generated traffic is always conforming.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let raw = match *self {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform { min, max } => {
                let (lo, hi) = (min.min(max), min.max(max));
                rng.random_range(lo as u64..=hi as u64) as usize
            }
            ValueSize::Bimodal { small, large, large_pct } => {
                if rng.random_range(0..100u32) < large_pct.min(100) {
                    large
                } else {
                    small
                }
            }
        };
        raw.min(MAX_VALUE)
    }

    /// Parses a CLI/environment spec: `fixed:<n>`, `uniform:<min>,<max>`,
    /// or `bimodal:<small>,<large>,<large_pct>` (a bare number means
    /// `fixed`). Returns `None` on anything else.
    pub fn parse(spec: &str) -> Option<ValueSize> {
        if let Ok(n) = spec.parse::<usize>() {
            return Some(ValueSize::Fixed(n));
        }
        let (kind, args) = spec.split_once(':')?;
        let parts: Vec<usize> = args
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .ok()?;
        match (kind, parts.as_slice()) {
            ("fixed", [n]) => Some(ValueSize::Fixed(*n)),
            ("uniform", [min, max]) => Some(ValueSize::Uniform { min: *min, max: *max }),
            ("bimodal", [small, large, pct]) if *pct <= 100 => Some(ValueSize::Bimodal {
                small: *small,
                large: *large,
                large_pct: *pct as u32,
            }),
            _ => None,
        }
    }

    /// Reads the `ASCYLIB_VALUES` environment spec (see
    /// [`parse`](Self::parse)); defaults to `bimodal:16,256,10` — the
    /// mostly-small-with-a-large-tail shape of production KV traffic.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec (the examples want a loud failure, not a
    /// silently substituted default).
    pub fn from_env() -> ValueSize {
        match std::env::var("ASCYLIB_VALUES") {
            Ok(spec) => ValueSize::parse(&spec)
                .unwrap_or_else(|| panic!("bad ASCYLIB_VALUES spec {spec:?}")),
            Err(_) => ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 },
        }
    }

    /// Largest size this distribution can produce (for buffer sizing).
    pub fn max_size(&self) -> usize {
        let raw = match *self {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform { min, max } => min.max(max),
            ValueSize::Bimodal { small, large, .. } => small.max(large),
        };
        raw.min(MAX_VALUE)
    }
}

impl Default for ValueSize {
    /// 64-byte fixed values.
    fn default() -> Self {
        ValueSize::Fixed(64)
    }
}

impl fmt::Display for ValueSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueSize::Fixed(n) => write!(f, "fixed({n}B)"),
            ValueSize::Uniform { min, max } => write!(f, "uniform({min}-{max}B)"),
            ValueSize::Bimodal { small, large, large_pct } => {
                write!(f, "bimodal({small}B/{large}B@{large_pct}%)")
            }
        }
    }
}

/// Interarrival-time distribution for [`LoadMode::Open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Exactly `1/rate` between arrivals (a deterministic pacer).
    Fixed,
    /// Exponential interarrivals (a Poisson process — the memoryless
    /// arrival pattern of independent users, and the default).
    Poisson,
}

/// How the load generator drives the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Each connection waits for its batch to be answered before sending
    /// the next (self-throttling; subject to coordinated omission).
    Closed,
    /// Requests are *scheduled* at `rate` operations per second across all
    /// connections, regardless of how fast the server answers; latency is
    /// measured from each operation's intended send time.
    Open {
        /// Aggregate offered load, operations per second.
        rate: f64,
        /// Interarrival shape.
        arrival: Arrival,
    },
}

impl LoadMode {
    /// Parses a CLI/environment spec: `closed`, `open:<rate>`,
    /// `open:<rate>:poisson`, or `open:<rate>:fixed`. Returns `None` on
    /// anything else (non-positive rates included).
    pub fn parse(spec: &str) -> Option<LoadMode> {
        if spec.eq_ignore_ascii_case("closed") {
            return Some(LoadMode::Closed);
        }
        let rest = spec.strip_prefix("open:")?;
        let (rate_str, arrival) = match rest.split_once(':') {
            None => (rest, Arrival::Poisson),
            Some((r, "poisson")) => (r, Arrival::Poisson),
            Some((r, "fixed")) => (r, Arrival::Fixed),
            Some(_) => return None,
        };
        let rate: f64 = rate_str.parse().ok()?;
        (rate.is_finite() && rate > 0.0).then_some(LoadMode::Open { rate, arrival })
    }

    /// Reads the `ASCYLIB_MODE` environment spec (see
    /// [`parse`](Self::parse)); defaults to `closed`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec (the examples want a loud failure, not a
    /// silently substituted default).
    pub fn from_env() -> LoadMode {
        match std::env::var("ASCYLIB_MODE") {
            Ok(spec) => LoadMode::parse(&spec)
                .unwrap_or_else(|| panic!("bad ASCYLIB_MODE spec {spec:?}")),
            Err(_) => LoadMode::Closed,
        }
    }
}

impl fmt::Display for LoadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadMode::Closed => write!(f, "closed"),
            LoadMode::Open { rate, arrival: Arrival::Poisson } => {
                write!(f, "open({rate:.0}/s poisson)")
            }
            LoadMode::Open { rate, arrival: Arrival::Fixed } => {
                write!(f, "open({rate:.0}/s fixed)")
            }
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent connections.
    pub connections: usize,
    /// Measurement duration in milliseconds.
    pub duration_ms: u64,
    /// Driving discipline (closed loop or scheduled open-loop arrivals).
    pub mode: LoadMode,
    /// Operation mix (read → `GET`, insert → `SET`, remove → `DEL`,
    /// scan → `SCAN`; scans need an ordered store).
    pub mix: OpMix,
    /// Key popularity distribution.
    pub dist: KeyDist,
    /// Keys are drawn from `[1, key_range]`.
    pub key_range: u64,
    /// Payload size distribution for `SET` values.
    pub value_size: ValueSize,
    /// Frames kept in flight per connection in closed-loop mode
    /// (1 = strict request/response). Open-loop mode ignores this: its
    /// in-flight depth is whatever the arrival schedule demands.
    pub pipeline_depth: usize,
    /// Base RNG seed (each connection derives its own stream).
    pub seed: u64,
    /// Emit a one-line status to stderr this often while the run is in
    /// flight (ops so far, current ops/s, errors, and latency quantiles
    /// over the interval just ended). `None` (the default) runs silently —
    /// the long multi-minute sweeps are the audience, not tests.
    pub progress: Option<Duration>,
}

impl Default for LoadGenConfig {
    /// Four connections, closed loop, 300 ms, the paper's 10%-update mix,
    /// uniform keys over `[1, 8192]`, 64-byte values, pipeline depth 16.
    fn default() -> Self {
        Self {
            connections: 4,
            duration_ms: 300,
            mode: LoadMode::Closed,
            mix: OpMix::default(),
            dist: KeyDist::Uniform,
            key_range: 8192,
            value_size: ValueSize::default(),
            pipeline_depth: 16,
            seed: 0x10AD_9E4E,
            progress: None,
        }
    }
}

/// Shared live-run counters behind [`LoadGenConfig::progress`]: each
/// connection (closed loop) or driver (open loop) publishes its running
/// totals into its own cache-padded slot — plain relaxed stores, no
/// cross-thread contention on the hot path — and records latency samples
/// into a lock-free [`Histogram`]. A detached printer thread sums the
/// slots once per interval and prints one status line.
struct ProgressBoard {
    slots: Vec<CachePadded<ProgressSlot>>,
    /// Latency samples: batch round trips (closed loop) or per-operation
    /// intended-send-time latency (open loop).
    hist: Histogram,
    /// What `hist` holds, for the status line.
    lat_label: &'static str,
}

#[derive(Default)]
struct ProgressSlot {
    ops: AtomicU64,
    errors: AtomicU64,
}

impl ProgressBoard {
    fn new(slots: usize, lat_label: &'static str) -> Arc<Self> {
        Arc::new(ProgressBoard {
            slots: (0..slots.max(1)).map(|_| CachePadded::new(ProgressSlot::default())).collect(),
            hist: Histogram::new(),
            lat_label,
        })
    }

    /// Publishes one worker's running totals (monotone, so relaxed plain
    /// stores are enough — the printer tolerates slightly stale slots).
    fn publish(&self, slot: usize, out: &ConnOutput) {
        let s = &self.slots[slot];
        s.ops.store(out.ops, Ordering::Relaxed);
        s.errors.store(out.errors, Ordering::Relaxed);
    }

    fn totals(&self) -> (u64, u64) {
        self.slots.iter().fold((0, 0), |(ops, errs), s| {
            (ops + s.ops.load(Ordering::Relaxed), errs + s.errors.load(Ordering::Relaxed))
        })
    }
}

/// The progress printer: wakes a few times per interval (so stop latency
/// stays low), and on each elapsed interval prints answered-op totals, the
/// rate over the interval, and latency quantiles of the samples recorded
/// *during* the interval (cumulative-snapshot subtraction — the same
/// windowing discipline the server's own telemetry uses).
fn spawn_progress_printer(
    board: Arc<ProgressBoard>,
    every: Duration,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let start = Instant::now();
        let mut last_at = start;
        let mut last_ops = 0u64;
        let mut last_hist = HistogramSnapshot::empty();
        let nap = (every / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(nap);
            let now = Instant::now();
            if now.duration_since(last_at) < every {
                continue;
            }
            let (ops, errors) = board.totals();
            let hist = board.hist.snapshot();
            let win = hist.delta_since(&last_hist);
            let rate = (ops - last_ops) as f64 / now.duration_since(last_at).as_secs_f64();
            eprintln!(
                "[loadgen +{:>6.1}s] ops={ops} ({rate:.0}/s) errors={errors} \
                 {} p50={}us p99={}us ({} samples)",
                now.duration_since(start).as_secs_f64(),
                board.lat_label,
                win.quantile(0.50) / 1_000,
                win.quantile(0.99) / 1_000,
                win.count(),
            );
            last_at = now;
            last_ops = ops;
            last_hist = hist;
        }
    })
}

/// Aggregate outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenResult {
    /// Operations answered across all connections (scans count one each).
    pub total_ops: u64,
    /// Operations scheduled (open loop; equals answered + unanswered).
    /// Closed-loop runs report it equal to `total_ops`.
    pub scheduled_ops: u64,
    /// Operations scheduled and sent but never answered before the drain
    /// window closed (open loop only; 0 in closed loop).
    pub unanswered: u64,
    /// Operations per second (answered / duration).
    pub throughput: f64,
    /// Mega-operations per second.
    pub mops: f64,
    /// `GET` frames answered.
    pub gets: u64,
    /// `SET` frames answered.
    pub sets: u64,
    /// `DEL` frames answered.
    pub dels: u64,
    /// `SCAN` frames answered.
    pub scans: u64,
    /// `GET` hits (bulk answers).
    pub hits: u64,
    /// Keys returned across all scans.
    pub scan_keys_returned: u64,
    /// Payload bytes written (`SET` values sent).
    pub payload_bytes_written: u64,
    /// Payload bytes read (`GET` hit values + `SCAN` pair values received).
    pub payload_bytes_read: u64,
    /// `-ERR` replies received (the run continues past them).
    pub errors: u64,
    /// Round-trip latency of one flushed batch (nanoseconds; closed loop
    /// only — at depth 1 this is per-operation latency).
    pub batch_rtt: LatencyStats,
    /// Per-operation latency measured from the *intended* send time
    /// (nanoseconds; open loop only — free of coordinated omission, so the
    /// p999/p9999 tails are honest). Empty in closed-loop runs.
    pub latency: LatencyStats,
    /// The server's own service-time view of the run, scraped from
    /// `INFO latency` after the load stops (`None` when the server has
    /// telemetry disabled or the scrape fails).
    pub server_latency: Option<ServerLatency>,
    /// Wall-clock measurement duration.
    pub elapsed: Duration,
}

impl LoadGenResult {
    /// `GET` hit rate in `[0, 1]` (0 if no `GET`s ran).
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }

    /// Payload write bandwidth in MB/s (`SET` values sent).
    pub fn write_mbps(&self) -> f64 {
        ascylib_harness::report::mbps(self.payload_bytes_written, self.elapsed)
    }

    /// Payload read bandwidth in MB/s (`GET`/`SCAN` values received).
    pub fn read_mbps(&self) -> f64 {
        ascylib_harness::report::mbps(self.payload_bytes_read, self.elapsed)
    }
}

/// Server-side request latency scraped from `INFO latency` at the end of a
/// run: what the *server* measured for the same traffic (parse → reply
/// queued), free of client-side scheduling and socket noise. Comparing this
/// against the client-observed [`LatencyStats`] separates server service
/// time from everything the network and the load generator added.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerLatency {
    /// Data requests the server served (GET/SET/DEL/MGET/MSET/SCAN
    /// frames) — the exact count; percentiles come from the timed sample.
    pub count: u64,
    /// Median service time, nanoseconds (histogram bucket upper bound).
    pub p50_ns: u64,
    /// 99th-percentile service time, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile service time, nanoseconds.
    pub p999_ns: u64,
    /// Largest service time recorded, nanoseconds.
    pub max_ns: u64,
}

impl ServerLatency {
    /// Parses the `request_*` lines of an `INFO latency` body. Returns
    /// `None` when the section carries no samples (telemetry off, or no
    /// data requests served).
    fn parse(info: &str) -> Option<ServerLatency> {
        let field = |name: &str| -> Option<u64> {
            info.lines()
                .find_map(|l| l.strip_prefix(name).and_then(|v| v.strip_prefix(':')))
                .and_then(|v| v.trim().parse().ok())
        };
        let count = field("request_count")?;
        if count == 0 {
            return None;
        }
        Some(ServerLatency {
            count,
            p50_ns: field("request_p50_ns")?,
            p99_ns: field("request_p99_ns")?,
            p999_ns: field("request_p999_ns")?,
            max_ns: field("request_max_ns")?,
        })
    }
}

/// Scrapes the server's own latency view over a fresh connection. Any
/// failure (connect refused, telemetry disabled, nothing recorded) yields
/// `None` — the scrape is best-effort garnish on the client-side numbers.
fn scrape_server_latency(addr: SocketAddr) -> Option<ServerLatency> {
    let mut client = Client::connect(addr).ok()?;
    let info = client.info(Some("latency")).ok()?;
    let _ = client.quit();
    ServerLatency::parse(&info)
}

/// Which verb occupied one in-flight slot (with the payload bytes a `SET`
/// carried), so replies classify without keeping whole `Request`s around.
#[derive(Clone, Copy)]
enum SlotKind {
    Get,
    Set(usize),
    Del,
    Scan,
}

/// One sampled operation, before encoding (shared between the closed and
/// open engines so both drive byte-identical workloads).
enum GenOp {
    Get(u64),
    Set(u64, usize),
    Del(u64),
    Scan(u64, usize),
}

fn sample_op(
    rng: &mut SmallRng,
    sampler: &KeySampler,
    mix: &OpMix,
    dice_range: u32,
    value_size: ValueSize,
) -> GenOp {
    let key = sampler.sample(rng);
    match mix.sample(rng.random_range(0..dice_range)) {
        Operation::Read => GenOp::Get(key),
        Operation::Insert => GenOp::Set(key, value_size.sample(rng)),
        Operation::Remove => GenOp::Del(key),
        Operation::Scan { len } => {
            let want = rng.random_range(1..=len.min(MAX_SCAN) as u64);
            GenOp::Scan(key, want as usize)
        }
    }
}

#[derive(Default)]
struct ConnOutput {
    ops: u64,
    scheduled: u64,
    unanswered: u64,
    gets: u64,
    sets: u64,
    dels: u64,
    scans: u64,
    hits: u64,
    scan_keys: u64,
    bytes_written: u64,
    bytes_read: u64,
    errors: u64,
    rtt_samples: Vec<u64>,
    lat_samples: Vec<u64>,
}

/// Classifies one reply against the slot kind that requested it (shared by
/// both engines so the tallies mean the same thing in either mode).
fn tally_reply(kind: SlotKind, reply: &Reply, out: &mut ConnOutput) {
    out.ops += 1;
    if let Reply::Error(_) = reply {
        out.errors += 1;
        return;
    }
    match kind {
        SlotKind::Get => {
            out.gets += 1;
            if let Reply::Bulk(v) = reply {
                out.hits += 1;
                out.bytes_read += v.len() as u64;
            }
        }
        SlotKind::Set(len) => {
            out.sets += 1;
            out.bytes_written += len as u64;
        }
        SlotKind::Del => out.dels += 1,
        SlotKind::Scan => {
            out.scans += 1;
            if let Reply::Array(elems) = reply {
                out.scan_keys += elems.len() as u64;
                for e in elems {
                    if let Reply::Pair(_, v) = e {
                        out.bytes_read += v.len() as u64;
                    }
                }
            }
        }
    }
}

fn merge_outputs(outputs: Vec<ConnOutput>, elapsed: Duration) -> LoadGenResult {
    let mut result = LoadGenResult {
        total_ops: 0,
        scheduled_ops: 0,
        unanswered: 0,
        throughput: 0.0,
        mops: 0.0,
        gets: 0,
        sets: 0,
        dels: 0,
        scans: 0,
        hits: 0,
        scan_keys_returned: 0,
        payload_bytes_written: 0,
        payload_bytes_read: 0,
        errors: 0,
        batch_rtt: LatencyStats::default(),
        latency: LatencyStats::default(),
        server_latency: None,
        elapsed,
    };
    let mut rtt_samples = Vec::new();
    let mut lat_samples = Vec::new();
    for out in outputs {
        result.total_ops = result.total_ops.saturating_add(out.ops);
        result.scheduled_ops = result.scheduled_ops.saturating_add(out.scheduled);
        result.unanswered = result.unanswered.saturating_add(out.unanswered);
        result.gets = result.gets.saturating_add(out.gets);
        result.sets = result.sets.saturating_add(out.sets);
        result.dels = result.dels.saturating_add(out.dels);
        result.scans = result.scans.saturating_add(out.scans);
        result.hits = result.hits.saturating_add(out.hits);
        result.scan_keys_returned = result.scan_keys_returned.saturating_add(out.scan_keys);
        result.payload_bytes_written =
            result.payload_bytes_written.saturating_add(out.bytes_written);
        result.payload_bytes_read = result.payload_bytes_read.saturating_add(out.bytes_read);
        result.errors = result.errors.saturating_add(out.errors);
        rtt_samples.extend(out.rtt_samples);
        lat_samples.extend(out.lat_samples);
    }
    if result.scheduled_ops == 0 {
        result.scheduled_ops = result.total_ops; // closed loop: 1:1
    }
    result.throughput = result.total_ops as f64 / elapsed.as_secs_f64().max(1e-9);
    result.mops = result.throughput / 1e6;
    result.batch_rtt = LatencyStats::from_samples(rtt_samples);
    result.latency = LatencyStats::from_samples(lat_samples);
    result
}

/// Runs the configured load against `addr` and merges the per-connection
/// tallies. Fails if any connection cannot be established or dies mid-run.
/// With [`LoadGenConfig::progress`] set, a printer thread narrates the run
/// on stderr once per interval.
pub fn run(addr: SocketAddr, cfg: &LoadGenConfig) -> io::Result<LoadGenResult> {
    let board = cfg.progress.map(|_| {
        let label = match cfg.mode {
            LoadMode::Closed => "batch_rtt",
            LoadMode::Open { .. } => "latency",
        };
        ProgressBoard::new(cfg.connections.max(1), label)
    });
    let printer = cfg.progress.map(|every| {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_progress_printer(
            Arc::clone(board.as_ref().expect("board exists with progress")),
            every,
            Arc::clone(&stop),
        );
        (stop, handle)
    });
    let run_result = match cfg.mode {
        LoadMode::Closed => run_closed(addr, cfg, board.as_deref()),
        LoadMode::Open { rate, arrival } => run_open(addr, cfg, rate, arrival, board.as_deref()),
    };
    if let Some((stop, handle)) = printer {
        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }
    let mut result = run_result?;
    result.server_latency = scrape_server_latency(addr);
    Ok(result)
}

/// The closed loop: `connections` threads connect to `addr` and apply the
/// mix in pipelined batches until the duration elapses.
fn run_closed(
    addr: SocketAddr,
    cfg: &LoadGenConfig,
    board: Option<&ProgressBoard>,
) -> io::Result<LoadGenResult> {
    let connections = cfg.connections.max(1);
    let depth = cfg.pipeline_depth.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(connections + 1));

    let outputs = std::thread::scope(|scope| -> io::Result<Vec<ConnOutput>> {
        let mut handles = Vec::with_capacity(connections);
        for conn_id in 0..connections {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || -> io::Result<ConnOutput> {
                // Connect before the start barrier, but reach the barrier
                // even on failure — the controller and every sibling wait at
                // it, and a missing participant would deadlock the run.
                let connected = Client::connect(addr);
                barrier.wait();
                let mut client = connected?;
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ ((conn_id as u64 + 1) * 0x9E37_79B9));
                let sampler = KeySampler::new(cfg.dist, cfg.key_range.max(1));
                let mix = cfg.mix.validated();
                let dice_range = mix.total();
                let mut out = ConnOutput::default();
                let mut kinds: Vec<SlotKind> = Vec::with_capacity(depth);
                let mut value_buf = vec![0u8; cfg.value_size.max_size()];
                while !stop.load(Ordering::Relaxed) {
                    kinds.clear();
                    let mut p = client.pipeline();
                    for _ in 0..depth {
                        match sample_op(&mut rng, &sampler, &mix, dice_range, cfg.value_size) {
                            GenOp::Get(key) => {
                                p.get(key);
                                kinds.push(SlotKind::Get);
                            }
                            GenOp::Set(key, len) => {
                                rng.fill_bytes(&mut value_buf[..len]);
                                p.set(key, &value_buf[..len]);
                                kinds.push(SlotKind::Set(len));
                            }
                            GenOp::Del(key) => {
                                p.del(key);
                                kinds.push(SlotKind::Del);
                            }
                            GenOp::Scan(key, want) => {
                                p.scan(key, want);
                                kinds.push(SlotKind::Scan);
                            }
                        }
                    }
                    let start = Instant::now();
                    let replies = p.run()?;
                    let rtt = start.elapsed().as_nanos() as u64;
                    out.rtt_samples.push(rtt);
                    for (kind, reply) in kinds.iter().zip(&replies) {
                        tally_reply(*kind, reply, &mut out);
                    }
                    if let Some(b) = board {
                        b.hist.record(rtt);
                        b.publish(conn_id, &out);
                    }
                }
                let _ = client.quit();
                Ok(out)
            }));
        }
        barrier.wait();
        std::thread::sleep(Duration::from_millis(cfg.duration_ms.max(1)));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    })?;
    Ok(merge_outputs(outputs, Duration::from_millis(cfg.duration_ms.max(1))))
}

/// Per-connection state inside an open-loop driver thread.
struct OpenConn {
    stream: TcpStream,
    parser: ReplyParser,
    /// Encoded-but-unflushed request bytes; `wpos..` is the unsent tail.
    out: Vec<u8>,
    wpos: usize,
    /// In-flight operations, in send order: (intended send time, kind).
    pending: VecDeque<(Instant, SlotKind)>,
    /// The next scheduled arrival. Never pushed back by server slowness —
    /// that is the whole point of the open loop.
    next_send: Instant,
    /// What the poller currently has this socket armed for (`None` after a
    /// delivered oneshot event).
    armed: Option<Interest>,
    rng: SmallRng,
    open: bool,
}

/// Stop encoding new requests for a connection while this many bytes are
/// already queued on it; the schedule keeps its intended times, so the
/// deferred operations still measure their full delay once sent.
const OPEN_OUT_SOFT_CAP: usize = 1 << 20;

/// How long after the measurement deadline the drain phase waits for
/// in-flight replies before declaring them unanswered.
const OPEN_DRAIN_WINDOW: Duration = Duration::from_millis(500);

fn connect_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    // Large sweeps can outrun the accept loop; brief retries absorb
    // transient RST/backlog rejections without failing the run.
    let mut last = None;
    for attempt in 0..20 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(5 * (attempt + 1)));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect failed")))
}

fn interarrival(arrival: Arrival, mean_ns: f64, rng: &mut SmallRng) -> Duration {
    let ns = match arrival {
        Arrival::Fixed => mean_ns,
        Arrival::Poisson => {
            // u uniform in (0, 1]: the +1 keeps ln away from zero.
            let u = (rng.random_range(0..(1u64 << 53)) as f64 + 1.0) / (1u64 << 53) as f64;
            -u.ln() * mean_ns
        }
    };
    Duration::from_nanos(ns.clamp(0.0, 60e9) as u64)
}

/// Writes a connection's queued bytes until done or the socket pushes back.
/// Transport errors close the connection (its in-flight ops end up
/// unanswered).
fn open_flush(conn: &mut OpenConn) {
    while conn.wpos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.wpos..]) {
            Ok(0) => {
                conn.open = false;
                return;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.open = false;
                return;
            }
        }
    }
    conn.out.clear();
    conn.wpos = 0;
}

/// Reads everything available, pairing replies with pending slots and
/// recording intended-time latency (into the progress histogram too, when
/// a live status line was asked for).
fn open_drain_replies(
    conn: &mut OpenConn,
    out: &mut ConnOutput,
    chunk: &mut [u8],
    hist: Option<&Histogram>,
) {
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => {
                conn.open = false;
                return;
            }
            Ok(n) => {
                conn.parser.feed(&chunk[..n]);
                let now = Instant::now();
                loop {
                    match conn.parser.next() {
                        Some(Ok(reply)) => {
                            let Some((intended, kind)) = conn.pending.pop_front() else {
                                // A reply with no matching request: protocol
                                // desync; abandon the connection.
                                conn.open = false;
                                return;
                            };
                            let lat = now.saturating_duration_since(intended).as_nanos() as u64;
                            out.lat_samples.push(lat);
                            if let Some(h) = hist {
                                h.record(lat);
                            }
                            tally_reply(kind, &reply, out);
                        }
                        Some(Err(_)) => {
                            conn.open = false;
                            return;
                        }
                        None => break,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.open = false;
                return;
            }
        }
    }
}

/// Re-arms a connection for what it is actually waiting on: always
/// readability, plus writability while queued bytes remain.
fn open_ensure_armed(poller: &Poller, conn: &mut OpenConn, token: u64) {
    if !conn.open {
        return;
    }
    let want =
        if conn.wpos < conn.out.len() { Interest::BOTH } else { Interest::READABLE };
    if conn.armed != Some(want) && poller.rearm(conn.stream.as_raw_fd(), token, want).is_ok()
    {
        conn.armed = Some(want);
    }
}

/// The open loop: a few driver threads, each running a private poller over
/// its share of nonblocking connections, encode requests on a fixed or
/// Poisson schedule and measure every reply against its intended send time.
fn run_open(
    addr: SocketAddr,
    cfg: &LoadGenConfig,
    rate: f64,
    arrival: Arrival,
    board: Option<&ProgressBoard>,
) -> io::Result<LoadGenResult> {
    let connections = cfg.connections.max(1);
    let drivers = connections.min(4);
    // Each connection runs an independent arrival process at its share of
    // the aggregate rate; superposed they offer `rate` ops/s.
    let mean_ns = connections as f64 * 1e9 / rate.max(1e-3);
    let duration = Duration::from_millis(cfg.duration_ms.max(1));
    let barrier = Arc::new(Barrier::new(drivers));

    let outputs = std::thread::scope(|scope| -> io::Result<Vec<ConnOutput>> {
        let mut handles = Vec::with_capacity(drivers);
        for driver in 0..drivers {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || -> io::Result<ConnOutput> {
                // Connect this driver's share up front; reach the barrier
                // even on failure so siblings are not deadlocked.
                let setup = (|| -> io::Result<(Poller, Vec<OpenConn>)> {
                    let poller = Poller::new()?;
                    let mut conns = Vec::new();
                    for global_id in (driver..connections).step_by(drivers) {
                        let stream = connect_retry(addr)?;
                        stream.set_nonblocking(true)?;
                        let _ = stream.set_nodelay(true);
                        let token = conns.len() as u64;
                        poller.register(stream.as_raw_fd(), token, Interest::READABLE)?;
                        conns.push(OpenConn {
                            stream,
                            parser: ReplyParser::new(),
                            out: Vec::with_capacity(4096),
                            wpos: 0,
                            pending: VecDeque::new(),
                            next_send: Instant::now(), // re-based after the barrier
                            armed: Some(Interest::READABLE),
                            rng: SmallRng::seed_from_u64(
                                cfg.seed ^ ((global_id as u64 + 1) * 0x9E37_79B9),
                            ),
                            open: true,
                        });
                    }
                    Ok((poller, conns))
                })();
                barrier.wait();
                let (poller, mut conns) = setup?;
                let hist = board.map(|b| &b.hist);

                let sampler = KeySampler::new(cfg.dist, cfg.key_range.max(1));
                let mix = cfg.mix.validated();
                let dice_range = mix.total();
                let mut out = ConnOutput::default();
                let mut value_buf = vec![0u8; cfg.value_size.max_size()];
                let mut chunk = vec![0u8; 16 * 1024];
                let mut events = Events::new();

                let start = Instant::now();
                let deadline = start + duration;
                for conn in conns.iter_mut() {
                    conn.next_send = start + interarrival(arrival, mean_ns, &mut conn.rng);
                }

                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let mut min_next: Option<Instant> = None;
                    for (i, conn) in conns.iter_mut().enumerate() {
                        if !conn.open {
                            continue;
                        }
                        // Encode every arrival whose scheduled time has
                        // come. A stalled server defers the *sending*, never
                        // the schedule — intended times are kept, so the
                        // stall shows up in the measured latency.
                        while conn.next_send <= now
                            && conn.out.len() - conn.wpos < OPEN_OUT_SOFT_CAP
                        {
                            let intended = conn.next_send;
                            let kind = match sample_op(
                                &mut conn.rng,
                                &sampler,
                                &mix,
                                dice_range,
                                cfg.value_size,
                            ) {
                                GenOp::Get(key) => {
                                    encode_request(&Request::Get(key), &mut conn.out);
                                    SlotKind::Get
                                }
                                GenOp::Set(key, len) => {
                                    conn.rng.fill_bytes(&mut value_buf[..len]);
                                    encode_set(&mut conn.out, key, &value_buf[..len]);
                                    SlotKind::Set(len)
                                }
                                GenOp::Del(key) => {
                                    encode_request(&Request::Del(key), &mut conn.out);
                                    SlotKind::Del
                                }
                                GenOp::Scan(key, want) => {
                                    encode_request(&Request::Scan(key, want), &mut conn.out);
                                    SlotKind::Scan
                                }
                            };
                            conn.pending.push_back((intended, kind));
                            out.scheduled += 1;
                            conn.next_send += interarrival(arrival, mean_ns, &mut conn.rng);
                        }
                        open_flush(conn);
                        open_ensure_armed(&poller, conn, i as u64);
                        if conn.open {
                            min_next = Some(match min_next {
                                Some(t) => t.min(conn.next_send),
                                None => conn.next_send,
                            });
                        }
                    }
                    if conns.iter().all(|c| !c.open) {
                        break;
                    }
                    let now = Instant::now();
                    let until_send = min_next
                        .map_or(Duration::from_millis(10), |t| t.saturating_duration_since(now));
                    let timeout = until_send
                        .min(deadline.saturating_duration_since(now))
                        .min(Duration::from_millis(10));
                    let _ = poller.wait(&mut events, Some(timeout));
                    for ev in events.iter() {
                        let conn = &mut conns[ev.token as usize];
                        conn.armed = None;
                        if ev.readable {
                            open_drain_replies(conn, &mut out, &mut chunk, hist);
                        }
                        if ev.writable && conn.open {
                            open_flush(conn);
                        }
                        open_ensure_armed(&poller, conn, ev.token);
                    }
                    if let Some(b) = board {
                        b.publish(driver, &out);
                    }
                }

                // Drain: no new arrivals; give in-flight replies a bounded
                // window before declaring them unanswered.
                let drain_deadline = Instant::now() + OPEN_DRAIN_WINDOW;
                loop {
                    let all_done = conns.iter().all(|c| {
                        !c.open || (c.pending.is_empty() && c.wpos >= c.out.len())
                    });
                    if all_done || Instant::now() >= drain_deadline {
                        break;
                    }
                    let _ = poller.wait(&mut events, Some(Duration::from_millis(20)));
                    for ev in events.iter() {
                        let conn = &mut conns[ev.token as usize];
                        conn.armed = None;
                        if ev.readable {
                            open_drain_replies(conn, &mut out, &mut chunk, hist);
                        }
                        if ev.writable && conn.open {
                            open_flush(conn);
                        }
                        open_ensure_armed(&poller, conn, ev.token);
                    }
                }
                for conn in &conns {
                    out.unanswered += conn.pending.len() as u64;
                }
                if let Some(b) = board {
                    b.publish(driver, &out);
                }
                Ok(out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen driver thread panicked"))
            .collect()
    })?;
    Ok(merge_outputs(outputs, duration))
}

/// Prefills the keyspace over the wire: pipelined `MSET` batches upserting
/// `initial_size` distinct keys spread evenly across `[1, key_range]` (the
/// same even-coverage shape the in-process harness starts from), with
/// payloads drawn from `value_size`. Returns the number of newly created
/// keys.
pub fn prefill(
    addr: SocketAddr,
    initial_size: u64,
    key_range: u64,
    value_size: ValueSize,
    seed: u64,
) -> io::Result<u64> {
    let mut client = Client::connect(addr)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let range = key_range.max(initial_size).max(1);
    let step = (range / initial_size.max(1)).max(1);
    let mut created = 0u64;
    let mut entries: Vec<(u64, Vec<u8>)> = Vec::with_capacity(128);
    let mut key = 1u64;
    let mut remaining = initial_size;
    // Batches are bounded by payload bytes as well as entry count: any
    // legal per-value size (up to MAX_VALUE) must yield conforming MSET
    // frames, which cap the *total* payload at MAX_BATCH_PAYLOAD.
    let payload_budget = crate::protocol::MAX_BATCH_PAYLOAD / 2;
    while remaining > 0 {
        entries.clear();
        let mut batch_bytes = 0usize;
        while remaining > 0 && entries.len() < 128 {
            let len = value_size.sample(&mut rng);
            if !entries.is_empty() && batch_bytes + len > payload_budget {
                break;
            }
            batch_bytes += len;
            let mut value = vec![0u8; len];
            rng.fill_bytes(&mut value);
            entries.push((key, value));
            key = key.saturating_add(step).min(u64::MAX - 1);
            remaining -= 1;
        }
        let borrowed: Vec<(u64, &[u8])> =
            entries.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        for newly in client.mset(&borrowed)? {
            created += newly as u64;
        }
    }
    client.quit()?;
    Ok(created)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::store::BlobOrderedStore;
    use ascylib::skiplist::FraserOptSkipList;
    use ascylib_shard::BlobMap;

    #[test]
    fn value_size_distributions_sample_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(ValueSize::Fixed(100).sample(&mut rng), 100);
        assert_eq!(ValueSize::Fixed(MAX_VALUE * 4).sample(&mut rng), MAX_VALUE, "clamped");
        let u = ValueSize::Uniform { min: 10, max: 50 };
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2_000 {
            let s = u.sample(&mut rng);
            assert!((10..=50).contains(&s));
            seen_low |= s < 20;
            seen_high |= s > 40;
        }
        assert!(seen_low && seen_high, "uniform must cover its range");
        let b = ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 };
        let mut larges = 0;
        for _ in 0..2_000 {
            let s = b.sample(&mut rng);
            assert!(s == 16 || s == 256);
            larges += (s == 256) as u32;
        }
        assert!((100..400).contains(&larges), "~10% large values, got {larges}/2000");
        assert_eq!(b.max_size(), 256);
        assert_eq!(b.to_string(), "bimodal(16B/256B@10%)");
    }

    #[test]
    fn value_size_specs_parse() {
        assert_eq!(ValueSize::parse("256"), Some(ValueSize::Fixed(256)));
        assert_eq!(ValueSize::parse("fixed:8"), Some(ValueSize::Fixed(8)));
        assert_eq!(
            ValueSize::parse("uniform:16,4096"),
            Some(ValueSize::Uniform { min: 16, max: 4096 })
        );
        assert_eq!(
            ValueSize::parse("bimodal:16,256,10"),
            Some(ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 })
        );
        for bad in [
            "", "fixed", "fixed:x", "uniform:1", "bimodal:1,2", "huge:9",
            // An impossible percentage is a config error, not a wrap/clamp.
            "bimodal:16,256,101", "bimodal:16,256,4294967306",
        ] {
            assert_eq!(ValueSize::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn load_mode_specs_parse() {
        assert_eq!(LoadMode::parse("closed"), Some(LoadMode::Closed));
        assert_eq!(LoadMode::parse("CLOSED"), Some(LoadMode::Closed));
        assert_eq!(
            LoadMode::parse("open:5000"),
            Some(LoadMode::Open { rate: 5000.0, arrival: Arrival::Poisson })
        );
        assert_eq!(
            LoadMode::parse("open:2500.5:fixed"),
            Some(LoadMode::Open { rate: 2500.5, arrival: Arrival::Fixed })
        );
        assert_eq!(
            LoadMode::parse("open:100:poisson"),
            Some(LoadMode::Open { rate: 100.0, arrival: Arrival::Poisson })
        );
        for bad in ["", "open", "open:", "open:x", "open:0", "open:-5", "open:inf",
                    "open:100:weird", "closed:1"] {
            assert_eq!(LoadMode::parse(bad), None, "{bad:?} must not parse");
        }
        assert_eq!(LoadMode::Closed.to_string(), "closed");
        assert_eq!(
            LoadMode::Open { rate: 4000.0, arrival: Arrival::Poisson }.to_string(),
            "open(4000/s poisson)"
        );
    }

    #[test]
    fn poisson_interarrivals_average_to_the_mean() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mean_ns = 1e6; // 1 ms
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| interarrival(Arrival::Poisson, mean_ns, &mut rng).as_nanos() as u64)
            .sum();
        let avg = total as f64 / n as f64;
        assert!(
            (avg - mean_ns).abs() < mean_ns * 0.05,
            "sample mean {avg} vs expected {mean_ns}"
        );
        // Fixed arrivals are exactly the mean.
        assert_eq!(
            interarrival(Arrival::Fixed, mean_ns, &mut rng),
            Duration::from_nanos(mean_ns as u64)
        );
    }

    #[test]
    fn progress_board_totals_and_printer_lifecycle() {
        let board = ProgressBoard::new(2, "batch_rtt");
        let mut a = ConnOutput { ops: 10, errors: 1, ..ConnOutput::default() };
        board.publish(0, &a);
        let b = ConnOutput { ops: 5, ..ConnOutput::default() };
        board.publish(1, &b);
        board.hist.record(1_000_000);
        assert_eq!(board.totals(), (15, 1));
        // Slots are overwritten, not accumulated: each worker owns one and
        // publishes its own running total.
        a.ops = 20;
        board.publish(0, &a);
        assert_eq!(board.totals(), (25, 1));
        // The printer fires at least once and stops promptly when asked.
        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_progress_printer(
            Arc::clone(&board),
            Duration::from_millis(10),
            Arc::clone(&stop),
        );
        std::thread::sleep(Duration::from_millis(40));
        stop.store(true, Ordering::Relaxed);
        handle.join().expect("printer thread exits cleanly");
    }

    #[test]
    fn progress_enabled_runs_complete_in_both_modes() {
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(map),
            ServerConfig::for_connections(3),
        )
        .unwrap();
        prefill(server.addr(), 128, 256, ValueSize::Fixed(32), 7).unwrap();
        let closed = LoadGenConfig {
            connections: 2,
            duration_ms: 80,
            key_range: 256,
            progress: Some(Duration::from_millis(20)),
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &closed).unwrap();
        assert!(r.total_ops > 0, "progress narration must not stall the run");
        assert_eq!(r.errors, 0);
        let open = LoadGenConfig {
            mode: LoadMode::Open { rate: 2000.0, arrival: Arrival::Poisson },
            ..closed
        };
        let r = run(server.addr(), &open).unwrap();
        assert!(r.scheduled_ops > 0);
        assert!(r.latency.samples > 0);
        server.join();
    }

    #[test]
    fn closed_loop_run_reports_traffic_and_bandwidth() {
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(Arc::clone(&map)),
            ServerConfig::for_connections(2),
        )
        .unwrap();
        let created =
            prefill(server.addr(), 256, 512, ValueSize::Fixed(64), 7).unwrap();
        assert_eq!(created, 256);
        assert_eq!(map.len(), 256);
        assert_eq!(map.total_arena_stats().live_bytes(), 256 * 64);

        let cfg = LoadGenConfig {
            connections: 2,
            duration_ms: 80,
            mix: OpMix::update(20),
            key_range: 512,
            value_size: ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 },
            pipeline_depth: 8,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.total_ops > 0);
        assert_eq!(r.total_ops, r.gets + r.sets + r.dels + r.scans + r.errors);
        assert_eq!(r.scheduled_ops, r.total_ops, "closed loop schedules what it answers");
        assert_eq!(r.unanswered, 0);
        assert_eq!(r.errors, 0, "well-formed traffic must not error");
        assert!(r.gets > r.sets, "80% reads dominate");
        assert!(r.hits > 0, "prefilled keyspace yields GET hits");
        assert!(r.hit_rate() > 0.0 && r.hit_rate() <= 1.0);
        assert!(r.throughput > 0.0);
        assert!(r.batch_rtt.samples > 0);
        assert!(r.batch_rtt.p50 > 0);
        // Payload movement in both directions, at plausible magnitudes.
        assert!(r.payload_bytes_written > 0, "SETs carried payloads");
        assert!(r.payload_bytes_read > 0, "GET hits returned payloads");
        assert!(r.payload_bytes_written >= r.sets * 16);
        assert!(r.write_mbps() > 0.0 && r.read_mbps() > 0.0);
        // The end-of-run scrape captures the server's own view of the same
        // traffic (prefill MSETs included, INFO itself excluded).
        let sl = r.server_latency.expect("telemetry is on by default");
        assert!(sl.count >= r.total_ops, "server counted at least the answered ops");
        assert!(sl.p50_ns > 0 && sl.p99_ns >= sl.p50_ns && sl.max_ns >= sl.p999_ns);
        server.join();
    }

    #[test]
    fn open_loop_run_measures_from_intended_send_times() {
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(Arc::clone(&map)),
            ServerConfig::for_connections(4),
        )
        .unwrap();
        prefill(server.addr(), 256, 512, ValueSize::Fixed(64), 7).unwrap();

        let cfg = LoadGenConfig {
            connections: 3,
            duration_ms: 150,
            mode: LoadMode::Open { rate: 3000.0, arrival: Arrival::Poisson },
            mix: OpMix::update(10),
            key_range: 512,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.scheduled_ops > 0, "the schedule must have fired");
        assert_eq!(
            r.total_ops + r.unanswered,
            r.scheduled_ops,
            "every scheduled op is answered or reported unanswered"
        );
        assert!(r.total_ops > 0, "a loopback server answers most of the offered load");
        assert_eq!(r.errors, 0, "well-formed traffic must not error");
        assert!(r.latency.samples > 0, "open loop records per-op latency");
        assert!(r.latency.p50 > 0);
        assert!(r.latency.p999 >= r.latency.p50, "tail at least the median");
        assert_eq!(r.batch_rtt.samples, 0, "batch RTT is a closed-loop metric");
        // ~3000/s for 150 ms ≈ 450 scheduled ops; allow wide slack but
        // catch a schedule that silently stops early.
        assert!(
            r.scheduled_ops >= 150,
            "offered load too low: {} scheduled",
            r.scheduled_ops
        );
        assert!(r.hits > 0, "prefilled keyspace yields GET hits");
        server.join();
    }

    #[test]
    fn open_loop_fixed_arrivals_approximate_the_offered_rate() {
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(map),
            ServerConfig::for_connections(2),
        )
        .unwrap();
        let cfg = LoadGenConfig {
            connections: 2,
            duration_ms: 200,
            mode: LoadMode::Open { rate: 2000.0, arrival: Arrival::Fixed },
            key_range: 256,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        // 2000/s over 200 ms = 400 expected arrivals; the pacer should land
        // within a generous factor on a loopback.
        assert!(
            (200..=800).contains(&r.scheduled_ops),
            "fixed pacer scheduled {} ops, expected about 400",
            r.scheduled_ops
        );
        assert!(r.unanswered <= r.scheduled_ops / 4, "loopback drain leaves little behind");
        server.join();
    }

    #[test]
    fn prefill_with_large_values_respects_the_batch_payload_cap() {
        // 128 x 16 KiB would be a 2 MiB MSET frame — over the 1 MiB batch
        // cap; prefill must split by payload bytes, not just entry count.
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(Arc::clone(&map)),
            ServerConfig::for_connections(1),
        )
        .unwrap();
        let created =
            prefill(server.addr(), 64, 128, ValueSize::Fixed(16 * 1024), 3).unwrap();
        assert_eq!(created, 64);
        assert_eq!(map.len(), 64);
        assert_eq!(map.total_arena_stats().live_bytes(), 64 * 16 * 1024);
        server.join();
    }

    #[test]
    fn scan_mix_over_the_wire_returns_keys_and_bytes() {
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(map),
            ServerConfig::for_connections(2),
        )
        .unwrap();
        prefill(server.addr(), 256, 512, ValueSize::Fixed(32), 7).unwrap();
        let cfg = LoadGenConfig {
            connections: 2,
            duration_ms: 60,
            mix: OpMix::ycsb_e(),
            key_range: 512,
            pipeline_depth: 4,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.scans > 0, "YCSB-E is 95% scans");
        assert!(r.scan_keys_returned > 0);
        assert!(
            r.payload_bytes_read >= r.scan_keys_returned * 32,
            "every scanned pair carries its 32-byte payload"
        );
        assert_eq!(r.errors, 0);
        server.join();
    }

    #[test]
    fn unsupported_scans_surface_as_error_replies_not_failures() {
        use crate::store::BlobStore;
        use ascylib::hashtable::ClhtLb;
        let map = Arc::new(BlobMap::new(2, |_| ClhtLb::with_capacity(256)));
        let server = Server::start(
            "127.0.0.1:0",
            BlobStore::new(map),
            ServerConfig::for_connections(1),
        )
        .unwrap();
        let cfg = LoadGenConfig {
            connections: 1,
            duration_ms: 40,
            mix: OpMix::ycsb_e(),
            key_range: 128,
            pipeline_depth: 4,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.errors > 0, "hash shards reject SCAN in-band");
        assert_eq!(r.scans, 0);
        assert!(r.total_ops > 0, "the run continues past error replies");
        server.join();
    }
}
