//! A closed-loop, multi-connection load generator for the wire protocol,
//! with payload generation.
//!
//! Replays the harness's workload vocabulary — any
//! [`OpMix`] (YCSB A–E presets included) under any
//! [`KeyDist`] (uniform / Zipfian / hotspot) — over real sockets, now with
//! a **value-size axis**: every `SET` carries a payload drawn from a
//! [`ValueSize`] distribution (fixed, uniform, or bimodal — the classic
//! "mostly small values, a tail of big ones" production shape), generated
//! with `Rng::fill_bytes`, so the measured traffic moves real bytes, not
//! just 64-bit tokens.
//!
//! **Closed loop:** each connection keeps at most `pipeline_depth` requests
//! in flight and issues the next batch only after the previous one is fully
//! answered, so measured throughput is bounded by round trips (depth 1) or
//! by server capacity (deep pipelines).
//!
//! Alongside operation throughput and per-round-trip latency percentiles,
//! the result reports **payload bandwidth**: bytes of values written
//! (`SET` payloads sent) and read (`GET` hits and `SCAN` pairs received),
//! as MB/s — the number that shows when a workload stops being
//! latency-bound and starts being memory/bandwidth-bound.

use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use ascylib_harness::{KeyDist, LatencyStats, OpMix, Operation};

use crate::client::Client;
use crate::protocol::{Reply, MAX_SCAN, MAX_VALUE};

/// Distribution of `SET` payload sizes (bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueSize {
    /// Every value is exactly this many bytes.
    Fixed(usize),
    /// Uniform in `[min, max]` (inclusive).
    Uniform {
        /// Smallest value size.
        min: usize,
        /// Largest value size.
        max: usize,
    },
    /// `large_pct`% of values are `large` bytes, the rest `small` — the
    /// "metadata plus occasional media" shape of production KV traffic.
    Bimodal {
        /// Size of the common small values.
        small: usize,
        /// Size of the rare large values.
        large: usize,
        /// Percentage (0–100) of values that are large.
        large_pct: u32,
    },
}

impl ValueSize {
    /// Draws one payload size. Sizes are clamped to the protocol's
    /// [`MAX_VALUE`] so generated traffic is always conforming.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let raw = match *self {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform { min, max } => {
                let (lo, hi) = (min.min(max), min.max(max));
                rng.random_range(lo as u64..=hi as u64) as usize
            }
            ValueSize::Bimodal { small, large, large_pct } => {
                if rng.random_range(0..100u32) < large_pct.min(100) {
                    large
                } else {
                    small
                }
            }
        };
        raw.min(MAX_VALUE)
    }

    /// Parses a CLI/environment spec: `fixed:<n>`, `uniform:<min>,<max>`,
    /// or `bimodal:<small>,<large>,<large_pct>` (a bare number means
    /// `fixed`). Returns `None` on anything else.
    pub fn parse(spec: &str) -> Option<ValueSize> {
        if let Ok(n) = spec.parse::<usize>() {
            return Some(ValueSize::Fixed(n));
        }
        let (kind, args) = spec.split_once(':')?;
        let parts: Vec<usize> = args
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .ok()?;
        match (kind, parts.as_slice()) {
            ("fixed", [n]) => Some(ValueSize::Fixed(*n)),
            ("uniform", [min, max]) => Some(ValueSize::Uniform { min: *min, max: *max }),
            ("bimodal", [small, large, pct]) if *pct <= 100 => Some(ValueSize::Bimodal {
                small: *small,
                large: *large,
                large_pct: *pct as u32,
            }),
            _ => None,
        }
    }

    /// Reads the `ASCYLIB_VALUES` environment spec (see
    /// [`parse`](Self::parse)); defaults to `bimodal:16,256,10` — the
    /// mostly-small-with-a-large-tail shape of production KV traffic.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec (the examples want a loud failure, not a
    /// silently substituted default).
    pub fn from_env() -> ValueSize {
        match std::env::var("ASCYLIB_VALUES") {
            Ok(spec) => ValueSize::parse(&spec)
                .unwrap_or_else(|| panic!("bad ASCYLIB_VALUES spec {spec:?}")),
            Err(_) => ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 },
        }
    }

    /// Largest size this distribution can produce (for buffer sizing).
    pub fn max_size(&self) -> usize {
        let raw = match *self {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform { min, max } => min.max(max),
            ValueSize::Bimodal { small, large, .. } => small.max(large),
        };
        raw.min(MAX_VALUE)
    }
}

impl Default for ValueSize {
    /// 64-byte fixed values.
    fn default() -> Self {
        ValueSize::Fixed(64)
    }
}

impl fmt::Display for ValueSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueSize::Fixed(n) => write!(f, "fixed({n}B)"),
            ValueSize::Uniform { min, max } => write!(f, "uniform({min}-{max}B)"),
            ValueSize::Bimodal { small, large, large_pct } => {
                write!(f, "bimodal({small}B/{large}B@{large_pct}%)")
            }
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent connections (one thread each). The server must have at
    /// least this many workers, or the surplus waits in its accept queue.
    pub connections: usize,
    /// Measurement duration in milliseconds.
    pub duration_ms: u64,
    /// Operation mix (read → `GET`, insert → `SET`, remove → `DEL`,
    /// scan → `SCAN`; scans need an ordered store).
    pub mix: OpMix,
    /// Key popularity distribution.
    pub dist: KeyDist,
    /// Keys are drawn from `[1, key_range]`.
    pub key_range: u64,
    /// Payload size distribution for `SET` values.
    pub value_size: ValueSize,
    /// Frames kept in flight per connection (1 = strict request/response).
    pub pipeline_depth: usize,
    /// Base RNG seed (each connection derives its own stream).
    pub seed: u64,
}

impl Default for LoadGenConfig {
    /// Four connections, 300 ms, the paper's 10%-update mix, uniform keys
    /// over `[1, 8192]`, 64-byte values, pipeline depth 16.
    fn default() -> Self {
        Self {
            connections: 4,
            duration_ms: 300,
            mix: OpMix::default(),
            dist: KeyDist::Uniform,
            key_range: 8192,
            value_size: ValueSize::default(),
            pipeline_depth: 16,
            seed: 0x10AD_9E4E,
        }
    }
}

/// Aggregate outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenResult {
    /// Operations answered across all connections (scans count one each).
    pub total_ops: u64,
    /// Operations per second.
    pub throughput: f64,
    /// Mega-operations per second.
    pub mops: f64,
    /// `GET` frames answered.
    pub gets: u64,
    /// `SET` frames answered.
    pub sets: u64,
    /// `DEL` frames answered.
    pub dels: u64,
    /// `SCAN` frames answered.
    pub scans: u64,
    /// `GET` hits (bulk answers).
    pub hits: u64,
    /// Keys returned across all scans.
    pub scan_keys_returned: u64,
    /// Payload bytes written (`SET` values sent).
    pub payload_bytes_written: u64,
    /// Payload bytes read (`GET` hit values + `SCAN` pair values received).
    pub payload_bytes_read: u64,
    /// `-ERR` replies received (the run continues past them).
    pub errors: u64,
    /// Round-trip latency of one flushed batch (nanoseconds; at depth 1
    /// this is per-operation latency).
    pub batch_rtt: LatencyStats,
    /// Wall-clock measurement duration.
    pub elapsed: Duration,
}

impl LoadGenResult {
    /// `GET` hit rate in `[0, 1]` (0 if no `GET`s ran).
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }

    /// Payload write bandwidth in MB/s (`SET` values sent).
    pub fn write_mbps(&self) -> f64 {
        ascylib_harness::report::mbps(self.payload_bytes_written, self.elapsed)
    }

    /// Payload read bandwidth in MB/s (`GET`/`SCAN` values received).
    pub fn read_mbps(&self) -> f64 {
        ascylib_harness::report::mbps(self.payload_bytes_read, self.elapsed)
    }
}

/// Which verb occupied one pipeline slot (with the payload bytes a `SET`
/// carried), so replies classify without keeping whole `Request`s around.
#[derive(Clone, Copy)]
enum SlotKind {
    Get,
    Set(usize),
    Del,
    Scan,
}

#[derive(Default)]
struct ConnOutput {
    ops: u64,
    gets: u64,
    sets: u64,
    dels: u64,
    scans: u64,
    hits: u64,
    scan_keys: u64,
    bytes_written: u64,
    bytes_read: u64,
    errors: u64,
    rtt_samples: Vec<u64>,
}

/// Runs the closed loop: `connections` threads connect to `addr`, apply the
/// mix until the duration elapses, and the per-connection tallies are
/// merged. Fails if any connection cannot be established or dies mid-run.
pub fn run(addr: SocketAddr, cfg: &LoadGenConfig) -> io::Result<LoadGenResult> {
    let connections = cfg.connections.max(1);
    let depth = cfg.pipeline_depth.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(connections + 1));

    let outputs = std::thread::scope(|scope| -> io::Result<Vec<ConnOutput>> {
        let mut handles = Vec::with_capacity(connections);
        for conn_id in 0..connections {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || -> io::Result<ConnOutput> {
                // Connect before the start barrier, but reach the barrier
                // even on failure — the controller and every sibling wait at
                // it, and a missing participant would deadlock the run.
                let connected = Client::connect(addr);
                barrier.wait();
                let mut client = connected?;
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ ((conn_id as u64 + 1) * 0x9E37_79B9));
                let sampler = ascylib_harness::KeySampler::new(cfg.dist, cfg.key_range.max(1));
                let mix = cfg.mix.validated();
                let dice_range = mix.total();
                let mut out = ConnOutput::default();
                let mut kinds: Vec<SlotKind> = Vec::with_capacity(depth);
                let mut value_buf = vec![0u8; cfg.value_size.max_size()];
                while !stop.load(Ordering::Relaxed) {
                    kinds.clear();
                    let mut p = client.pipeline();
                    for _ in 0..depth {
                        let key = sampler.sample(&mut rng);
                        match mix.sample(rng.random_range(0..dice_range)) {
                            Operation::Read => {
                                p.get(key);
                                kinds.push(SlotKind::Get);
                            }
                            Operation::Insert => {
                                let len = cfg.value_size.sample(&mut rng);
                                rng.fill_bytes(&mut value_buf[..len]);
                                p.set(key, &value_buf[..len]);
                                kinds.push(SlotKind::Set(len));
                            }
                            Operation::Remove => {
                                p.del(key);
                                kinds.push(SlotKind::Del);
                            }
                            Operation::Scan { len } => {
                                let want = rng.random_range(1..=len.min(MAX_SCAN) as u64);
                                p.scan(key, want as usize);
                                kinds.push(SlotKind::Scan);
                            }
                        }
                    }
                    let start = Instant::now();
                    let replies = p.run()?;
                    out.rtt_samples.push(start.elapsed().as_nanos() as u64);
                    for (kind, reply) in kinds.iter().zip(replies) {
                        out.ops += 1;
                        if let Reply::Error(_) = reply {
                            out.errors += 1;
                            continue;
                        }
                        match kind {
                            SlotKind::Get => {
                                out.gets += 1;
                                if let Reply::Bulk(v) = &reply {
                                    out.hits += 1;
                                    out.bytes_read += v.len() as u64;
                                }
                            }
                            SlotKind::Set(len) => {
                                out.sets += 1;
                                out.bytes_written += *len as u64;
                            }
                            SlotKind::Del => out.dels += 1,
                            SlotKind::Scan => {
                                out.scans += 1;
                                if let Reply::Array(elems) = &reply {
                                    out.scan_keys += elems.len() as u64;
                                    for e in elems {
                                        if let Reply::Pair(_, v) = e {
                                            out.bytes_read += v.len() as u64;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                let _ = client.quit();
                Ok(out)
            }));
        }
        barrier.wait();
        std::thread::sleep(Duration::from_millis(cfg.duration_ms.max(1)));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    })?;
    let elapsed = Duration::from_millis(cfg.duration_ms.max(1));

    let mut result = LoadGenResult {
        total_ops: 0,
        throughput: 0.0,
        mops: 0.0,
        gets: 0,
        sets: 0,
        dels: 0,
        scans: 0,
        hits: 0,
        scan_keys_returned: 0,
        payload_bytes_written: 0,
        payload_bytes_read: 0,
        errors: 0,
        batch_rtt: LatencyStats::default(),
        elapsed,
    };
    let mut rtt_samples = Vec::new();
    for out in outputs {
        result.total_ops = result.total_ops.saturating_add(out.ops);
        result.gets = result.gets.saturating_add(out.gets);
        result.sets = result.sets.saturating_add(out.sets);
        result.dels = result.dels.saturating_add(out.dels);
        result.scans = result.scans.saturating_add(out.scans);
        result.hits = result.hits.saturating_add(out.hits);
        result.scan_keys_returned = result.scan_keys_returned.saturating_add(out.scan_keys);
        result.payload_bytes_written =
            result.payload_bytes_written.saturating_add(out.bytes_written);
        result.payload_bytes_read = result.payload_bytes_read.saturating_add(out.bytes_read);
        result.errors = result.errors.saturating_add(out.errors);
        rtt_samples.extend(out.rtt_samples);
    }
    result.throughput = result.total_ops as f64 / elapsed.as_secs_f64().max(1e-9);
    result.mops = result.throughput / 1e6;
    result.batch_rtt = LatencyStats::from_samples(rtt_samples);
    Ok(result)
}

/// Prefills the keyspace over the wire: pipelined `MSET` batches upserting
/// `initial_size` distinct keys spread evenly across `[1, key_range]` (the
/// same even-coverage shape the in-process harness starts from), with
/// payloads drawn from `value_size`. Returns the number of newly created
/// keys.
pub fn prefill(
    addr: SocketAddr,
    initial_size: u64,
    key_range: u64,
    value_size: ValueSize,
    seed: u64,
) -> io::Result<u64> {
    let mut client = Client::connect(addr)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let range = key_range.max(initial_size).max(1);
    let step = (range / initial_size.max(1)).max(1);
    let mut created = 0u64;
    let mut entries: Vec<(u64, Vec<u8>)> = Vec::with_capacity(128);
    let mut key = 1u64;
    let mut remaining = initial_size;
    // Batches are bounded by payload bytes as well as entry count: any
    // legal per-value size (up to MAX_VALUE) must yield conforming MSET
    // frames, which cap the *total* payload at MAX_BATCH_PAYLOAD.
    let payload_budget = crate::protocol::MAX_BATCH_PAYLOAD / 2;
    while remaining > 0 {
        entries.clear();
        let mut batch_bytes = 0usize;
        while remaining > 0 && entries.len() < 128 {
            let len = value_size.sample(&mut rng);
            if !entries.is_empty() && batch_bytes + len > payload_budget {
                break;
            }
            batch_bytes += len;
            let mut value = vec![0u8; len];
            rng.fill_bytes(&mut value);
            entries.push((key, value));
            key = key.saturating_add(step).min(u64::MAX - 1);
            remaining -= 1;
        }
        let borrowed: Vec<(u64, &[u8])> =
            entries.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        for newly in client.mset(&borrowed)? {
            created += newly as u64;
        }
    }
    client.quit()?;
    Ok(created)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::store::BlobOrderedStore;
    use ascylib::skiplist::FraserOptSkipList;
    use ascylib_shard::BlobMap;

    #[test]
    fn value_size_distributions_sample_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(ValueSize::Fixed(100).sample(&mut rng), 100);
        assert_eq!(ValueSize::Fixed(MAX_VALUE * 4).sample(&mut rng), MAX_VALUE, "clamped");
        let u = ValueSize::Uniform { min: 10, max: 50 };
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2_000 {
            let s = u.sample(&mut rng);
            assert!((10..=50).contains(&s));
            seen_low |= s < 20;
            seen_high |= s > 40;
        }
        assert!(seen_low && seen_high, "uniform must cover its range");
        let b = ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 };
        let mut larges = 0;
        for _ in 0..2_000 {
            let s = b.sample(&mut rng);
            assert!(s == 16 || s == 256);
            larges += (s == 256) as u32;
        }
        assert!((100..400).contains(&larges), "~10% large values, got {larges}/2000");
        assert_eq!(b.max_size(), 256);
        assert_eq!(b.to_string(), "bimodal(16B/256B@10%)");
    }

    #[test]
    fn value_size_specs_parse() {
        assert_eq!(ValueSize::parse("256"), Some(ValueSize::Fixed(256)));
        assert_eq!(ValueSize::parse("fixed:8"), Some(ValueSize::Fixed(8)));
        assert_eq!(
            ValueSize::parse("uniform:16,4096"),
            Some(ValueSize::Uniform { min: 16, max: 4096 })
        );
        assert_eq!(
            ValueSize::parse("bimodal:16,256,10"),
            Some(ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 })
        );
        for bad in [
            "", "fixed", "fixed:x", "uniform:1", "bimodal:1,2", "huge:9",
            // An impossible percentage is a config error, not a wrap/clamp.
            "bimodal:16,256,101", "bimodal:16,256,4294967306",
        ] {
            assert_eq!(ValueSize::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn closed_loop_run_reports_traffic_and_bandwidth() {
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(Arc::clone(&map)),
            ServerConfig::for_connections(2),
        )
        .unwrap();
        let created =
            prefill(server.addr(), 256, 512, ValueSize::Fixed(64), 7).unwrap();
        assert_eq!(created, 256);
        assert_eq!(map.len(), 256);
        assert_eq!(map.total_arena_stats().live_bytes(), 256 * 64);

        let cfg = LoadGenConfig {
            connections: 2,
            duration_ms: 80,
            mix: OpMix::update(20),
            key_range: 512,
            value_size: ValueSize::Bimodal { small: 16, large: 256, large_pct: 10 },
            pipeline_depth: 8,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.total_ops > 0);
        assert_eq!(r.total_ops, r.gets + r.sets + r.dels + r.scans + r.errors);
        assert_eq!(r.errors, 0, "well-formed traffic must not error");
        assert!(r.gets > r.sets, "80% reads dominate");
        assert!(r.hits > 0, "prefilled keyspace yields GET hits");
        assert!(r.hit_rate() > 0.0 && r.hit_rate() <= 1.0);
        assert!(r.throughput > 0.0);
        assert!(r.batch_rtt.samples > 0);
        assert!(r.batch_rtt.p50 > 0);
        // Payload movement in both directions, at plausible magnitudes.
        assert!(r.payload_bytes_written > 0, "SETs carried payloads");
        assert!(r.payload_bytes_read > 0, "GET hits returned payloads");
        assert!(r.payload_bytes_written >= r.sets * 16);
        assert!(r.write_mbps() > 0.0 && r.read_mbps() > 0.0);
        server.join();
    }

    #[test]
    fn prefill_with_large_values_respects_the_batch_payload_cap() {
        // 128 x 16 KiB would be a 2 MiB MSET frame — over the 1 MiB batch
        // cap; prefill must split by payload bytes, not just entry count.
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(Arc::clone(&map)),
            ServerConfig::for_connections(1),
        )
        .unwrap();
        let created =
            prefill(server.addr(), 64, 128, ValueSize::Fixed(16 * 1024), 3).unwrap();
        assert_eq!(created, 64);
        assert_eq!(map.len(), 64);
        assert_eq!(map.total_arena_stats().live_bytes(), 64 * 16 * 1024);
        server.join();
    }

    #[test]
    fn scan_mix_over_the_wire_returns_keys_and_bytes() {
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            BlobOrderedStore::new(map),
            ServerConfig::for_connections(2),
        )
        .unwrap();
        prefill(server.addr(), 256, 512, ValueSize::Fixed(32), 7).unwrap();
        let cfg = LoadGenConfig {
            connections: 2,
            duration_ms: 60,
            mix: OpMix::ycsb_e(),
            key_range: 512,
            pipeline_depth: 4,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.scans > 0, "YCSB-E is 95% scans");
        assert!(r.scan_keys_returned > 0);
        assert!(
            r.payload_bytes_read >= r.scan_keys_returned * 32,
            "every scanned pair carries its 32-byte payload"
        );
        assert_eq!(r.errors, 0);
        server.join();
    }

    #[test]
    fn unsupported_scans_surface_as_error_replies_not_failures() {
        use crate::store::BlobStore;
        use ascylib::hashtable::ClhtLb;
        let map = Arc::new(BlobMap::new(2, |_| ClhtLb::with_capacity(256)));
        let server = Server::start(
            "127.0.0.1:0",
            BlobStore::new(map),
            ServerConfig::for_connections(1),
        )
        .unwrap();
        let cfg = LoadGenConfig {
            connections: 1,
            duration_ms: 40,
            mix: OpMix::ycsb_e(),
            key_range: 128,
            pipeline_depth: 4,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.errors > 0, "hash shards reject SCAN in-band");
        assert_eq!(r.scans, 0);
        assert!(r.total_ops > 0, "the run continues past error replies");
        server.join();
    }
}
