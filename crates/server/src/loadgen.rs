//! A closed-loop, multi-connection load generator for the wire protocol.
//!
//! Replays the harness's workload vocabulary — any
//! [`OpMix`] (YCSB A–E presets included) under any
//! [`KeyDist`] (uniform / Zipfian / hotspot) — over real sockets: every
//! in-process benchmark scenario can be re-run against a server and the
//! results compared apples-to-apples (`fig12_server` in the bench crate
//! does exactly that).
//!
//! **Closed loop:** each connection keeps at most `pipeline_depth` requests
//! in flight and issues the next batch only after the previous one is fully
//! answered, so measured throughput is bounded by round trips (depth 1) or
//! by server capacity (deep pipelines) — the contrast between those two is
//! the serving tier's pipelining win.
//!
//! Latency is recorded per *round trip* (one flushed batch of
//! `pipeline_depth` frames), the unit a closed-loop client actually waits
//! for; percentiles come from the same [`LatencyStats`] machinery the
//! in-process harness reports.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ascylib_harness::{KeyDist, LatencyStats, OpMix, Operation};

use crate::client::Client;
use crate::protocol::{Reply, Request, MAX_SCAN};

/// Load-generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent connections (one thread each). The server must have at
    /// least this many workers, or the surplus waits in its accept queue.
    pub connections: usize,
    /// Measurement duration in milliseconds.
    pub duration_ms: u64,
    /// Operation mix (read → `GET`, insert → `SET`, remove → `DEL`,
    /// scan → `SCAN`; scans need an ordered store).
    pub mix: OpMix,
    /// Key popularity distribution.
    pub dist: KeyDist,
    /// Keys are drawn from `[1, key_range]`.
    pub key_range: u64,
    /// Frames kept in flight per connection (1 = strict request/response).
    pub pipeline_depth: usize,
    /// Base RNG seed (each connection derives its own stream).
    pub seed: u64,
}

impl Default for LoadGenConfig {
    /// Four connections, 300 ms, the paper's 10%-update mix, uniform keys
    /// over `[1, 8192]`, pipeline depth 16.
    fn default() -> Self {
        Self {
            connections: 4,
            duration_ms: 300,
            mix: OpMix::default(),
            dist: KeyDist::Uniform,
            key_range: 8192,
            pipeline_depth: 16,
            seed: 0x10AD_9E4E,
        }
    }
}

/// Aggregate outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenResult {
    /// Operations answered across all connections (scans count one each).
    pub total_ops: u64,
    /// Operations per second.
    pub throughput: f64,
    /// Mega-operations per second.
    pub mops: f64,
    /// `GET` frames answered.
    pub gets: u64,
    /// `SET` frames answered.
    pub sets: u64,
    /// `DEL` frames answered.
    pub dels: u64,
    /// `SCAN` frames answered.
    pub scans: u64,
    /// `GET` hits (non-null answers).
    pub hits: u64,
    /// Keys returned across all scans.
    pub scan_keys_returned: u64,
    /// `-ERR` replies received (the run continues past them).
    pub errors: u64,
    /// Round-trip latency of one flushed batch (nanoseconds; at depth 1
    /// this is per-operation latency).
    pub batch_rtt: LatencyStats,
    /// Wall-clock measurement duration.
    pub elapsed: Duration,
}

impl LoadGenResult {
    /// `GET` hit rate in `[0, 1]` (0 if no `GET`s ran).
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }
}

#[derive(Default)]
struct ConnOutput {
    ops: u64,
    gets: u64,
    sets: u64,
    dels: u64,
    scans: u64,
    hits: u64,
    scan_keys: u64,
    errors: u64,
    rtt_samples: Vec<u64>,
}

/// Runs the closed loop: `connections` threads connect to `addr`, apply the
/// mix until the duration elapses, and the per-connection tallies are
/// merged. Fails if any connection cannot be established or dies mid-run.
pub fn run(addr: SocketAddr, cfg: &LoadGenConfig) -> io::Result<LoadGenResult> {
    let connections = cfg.connections.max(1);
    let depth = cfg.pipeline_depth.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(connections + 1));

    let outputs = std::thread::scope(|scope| -> io::Result<Vec<ConnOutput>> {
        let mut handles = Vec::with_capacity(connections);
        for conn_id in 0..connections {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || -> io::Result<ConnOutput> {
                // Connect before the start barrier, but reach the barrier
                // even on failure — the controller and every sibling wait at
                // it, and a missing participant would deadlock the run.
                let connected = Client::connect(addr);
                barrier.wait();
                let mut client = connected?;
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ ((conn_id as u64 + 1) * 0x9E37_79B9));
                let sampler = ascylib_harness::KeySampler::new(cfg.dist, cfg.key_range.max(1));
                let mix = cfg.mix.validated();
                let dice_range = mix.total();
                let mut out = ConnOutput::default();
                let mut batch: Vec<Request> = Vec::with_capacity(depth);
                while !stop.load(Ordering::Relaxed) {
                    batch.clear();
                    for _ in 0..depth {
                        let key = sampler.sample(&mut rng);
                        batch.push(match mix.sample(rng.random_range(0..dice_range)) {
                            Operation::Read => Request::Get(key),
                            Operation::Insert => Request::Set(key, key.wrapping_mul(10)),
                            Operation::Remove => Request::Del(key),
                            Operation::Scan { len } => {
                                let want = rng.random_range(1..=len.min(MAX_SCAN) as u64);
                                Request::Scan(key, want as usize)
                            }
                        });
                    }
                    let start = Instant::now();
                    let mut p = client.pipeline();
                    for req in &batch {
                        p.push(req);
                    }
                    let replies = p.run()?;
                    out.rtt_samples.push(start.elapsed().as_nanos() as u64);
                    for (req, reply) in batch.iter().zip(replies) {
                        out.ops += 1;
                        if let Reply::Error(_) = reply {
                            out.errors += 1;
                            continue;
                        }
                        match req {
                            Request::Get(_) => {
                                out.gets += 1;
                                if matches!(reply, Reply::Int(_)) {
                                    out.hits += 1;
                                }
                            }
                            Request::Set(..) => out.sets += 1,
                            Request::Del(_) => out.dels += 1,
                            Request::Scan(..) => {
                                out.scans += 1;
                                if let Reply::Array(elems) = reply {
                                    out.scan_keys += elems.len() as u64;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                let _ = client.quit();
                Ok(out)
            }));
        }
        barrier.wait();
        std::thread::sleep(Duration::from_millis(cfg.duration_ms.max(1)));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    })?;
    let elapsed = Duration::from_millis(cfg.duration_ms.max(1));

    let mut result = LoadGenResult {
        total_ops: 0,
        throughput: 0.0,
        mops: 0.0,
        gets: 0,
        sets: 0,
        dels: 0,
        scans: 0,
        hits: 0,
        scan_keys_returned: 0,
        errors: 0,
        batch_rtt: LatencyStats::default(),
        elapsed,
    };
    let mut rtt_samples = Vec::new();
    for out in outputs {
        result.total_ops = result.total_ops.saturating_add(out.ops);
        result.gets = result.gets.saturating_add(out.gets);
        result.sets = result.sets.saturating_add(out.sets);
        result.dels = result.dels.saturating_add(out.dels);
        result.scans = result.scans.saturating_add(out.scans);
        result.hits = result.hits.saturating_add(out.hits);
        result.scan_keys_returned = result.scan_keys_returned.saturating_add(out.scan_keys);
        result.errors = result.errors.saturating_add(out.errors);
        rtt_samples.extend(out.rtt_samples);
    }
    result.throughput = result.total_ops as f64 / elapsed.as_secs_f64().max(1e-9);
    result.mops = result.throughput / 1e6;
    result.batch_rtt = LatencyStats::from_samples(rtt_samples);
    Ok(result)
}

/// Prefills the keyspace over the wire: pipelined `MSET` batches inserting
/// `initial_size` distinct keys spread evenly across `[1, key_range]` (the
/// same even-coverage shape the in-process harness starts from). Returns
/// the number of newly inserted keys.
pub fn prefill(addr: SocketAddr, initial_size: u64, key_range: u64) -> io::Result<u64> {
    let mut client = Client::connect(addr)?;
    let range = key_range.max(initial_size).max(1);
    let step = (range / initial_size.max(1)).max(1);
    let mut inserted = 0u64;
    let mut entries: Vec<(u64, u64)> = Vec::with_capacity(256);
    let mut key = 1u64;
    let mut remaining = initial_size;
    while remaining > 0 {
        entries.clear();
        while remaining > 0 && entries.len() < 256 {
            entries.push((key, key.wrapping_mul(10)));
            key = key.saturating_add(step).min(u64::MAX - 1);
            remaining -= 1;
        }
        for ok in client.mset(&entries)? {
            inserted += ok as u64;
        }
    }
    client.quit()?;
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::store::ShardedOrderedStore;
    use ascylib::api::ConcurrentMap;
    use ascylib::skiplist::FraserOptSkipList;
    use ascylib_shard::ShardedMap;

    #[test]
    fn closed_loop_run_reports_traffic() {
        let map = Arc::new(ShardedMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            ShardedOrderedStore::new(Arc::clone(&map)),
            ServerConfig::for_connections(2),
        )
        .unwrap();
        let inserted = prefill(server.addr(), 256, 512).unwrap();
        assert_eq!(inserted, 256);
        assert_eq!(map.size(), 256);

        let cfg = LoadGenConfig {
            connections: 2,
            duration_ms: 80,
            mix: OpMix::update(20),
            key_range: 512,
            pipeline_depth: 8,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.total_ops > 0);
        assert_eq!(r.total_ops, r.gets + r.sets + r.dels + r.scans + r.errors);
        assert_eq!(r.errors, 0, "well-formed traffic must not error");
        assert!(r.gets > r.sets, "80% reads dominate");
        assert!(r.hits > 0, "prefilled keyspace yields GET hits");
        assert!(r.hit_rate() > 0.0 && r.hit_rate() <= 1.0);
        assert!(r.throughput > 0.0);
        assert!(r.batch_rtt.samples > 0);
        assert!(r.batch_rtt.p50 > 0);
        server.join();
    }

    #[test]
    fn scan_mix_over_the_wire_returns_keys() {
        let map = Arc::new(ShardedMap::new(2, |_| FraserOptSkipList::new()));
        let server = Server::start(
            "127.0.0.1:0",
            ShardedOrderedStore::new(map),
            ServerConfig::for_connections(2),
        )
        .unwrap();
        prefill(server.addr(), 256, 512).unwrap();
        let cfg = LoadGenConfig {
            connections: 2,
            duration_ms: 60,
            mix: OpMix::ycsb_e(),
            key_range: 512,
            pipeline_depth: 4,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.scans > 0, "YCSB-E is 95% scans");
        assert!(r.scan_keys_returned > 0);
        assert_eq!(r.errors, 0);
        server.join();
    }

    #[test]
    fn unsupported_scans_surface_as_error_replies_not_failures() {
        use crate::store::ShardedStore;
        use ascylib::hashtable::ClhtLb;
        let map = Arc::new(ShardedMap::new(2, |_| ClhtLb::with_capacity(256)));
        let server = Server::start(
            "127.0.0.1:0",
            ShardedStore::new(map),
            ServerConfig::for_connections(1),
        )
        .unwrap();
        let cfg = LoadGenConfig {
            connections: 1,
            duration_ms: 40,
            mix: OpMix::ycsb_e(),
            key_range: 128,
            pipeline_depth: 4,
            ..LoadGenConfig::default()
        };
        let r = run(server.addr(), &cfg).unwrap();
        assert!(r.errors > 0, "hash shards reject SCAN in-band");
        assert_eq!(r.scans, 0);
        assert!(r.total_ops > 0, "the run continues past error replies");
        server.join();
    }
}
