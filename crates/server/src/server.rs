//! The TCP serving tier: an event-driven readiness loop over a worker pool.
//!
//! [`Server::start`] binds a nonblocking listener and spawns one **event
//! loop** thread plus `N` **worker** threads. The event loop owns a oneshot
//! [`Poller`] (epoll on Linux, poll(2) elsewhere — see `vendor/polling`):
//! it accepts new sockets, registers each under a generation-tagged token,
//! and pushes ready tokens onto a queue the workers drain. A worker locks
//! the connection's slot, drives its state machine (`Connection::advance`
//! in `conn.rs`) as far as the socket allows, and re-arms the descriptor
//! for whatever readiness the machine is waiting on.
//!
//! **Why oneshot readiness:** a delivered event disarms the descriptor
//! until the serving worker re-arms it, so two workers can never be woken
//! for the same connection — cross-thread dispatch is race-free by
//! construction, and each connection's frames stay strictly ordered.
//!
//! **Capacity:** connections are no longer pinned to threads. A handful of
//! workers serves any number of concurrent connections (the registry grows
//! slab-style, slots are recycled through a free list), bounded by file
//! descriptors rather than threads — this is the refactor that takes the
//! tier from `workers` concurrent clients to thousands.
//!
//! **Token hygiene:** a token packs `(generation << 32) | slot-index`. The
//! generation bumps whenever a slot's connection closes, so a stale token —
//! still in the ready queue, or filed in the idle timer wheel — fails the
//! generation check and is dropped instead of touching a recycled slot.
//! Descriptors are closed while the slot lock is held, which is what makes
//! a worker's re-arm race against fd reuse impossible.
//!
//! **Idle eviction:** the event loop files one deadline per connection in a
//! coarse timer wheel (`timer.rs`) and lazily re-checks `last_active` when it comes
//! due — active connections just reschedule, idle ones (and slow-loris
//! trickles that never complete a frame... which *do* update `last_active`,
//! so "idle" means no socket progress at all) are closed and counted in
//! `timeouts`.
//!
//! **Shutdown** ([`ServerHandle::shutdown`]) is graceful and bounded: the
//! event loop wakes via [`Poller::notify`], stops accepting, best-effort
//! flushes every live connection's buffered replies, and closes them;
//! workers drain and exit. [`ServerHandle::join`] (or dropping the handle)
//! blocks until every thread has exited.
//!
//! Per-worker counters live in cache-line-padded blocks
//! ([`crate::stats::WorkerStats`]); the event loop owns one extra block for
//! accept/timeout/wakeup counts.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ascylib_telemetry::window::{
    DEFAULT_WINDOW_CAPACITY, DEFAULT_WINDOW_INTERVAL_NS, DEFAULT_WINDOW_NS,
};
use ascylib_telemetry::{SlowOp, TelemetrySnapshot, WindowDelta, WindowRing, WindowSample, WorkerTelemetry};
use crossbeam_utils::CachePadded;
use polling::{Events, Interest, Poller};

use crate::conn::{
    unix_ms_now, Advance, ConnCtx, Connection, TelemetryHub, WIN_BYTES_IN, WIN_BYTES_OUT,
    WIN_CAS_FAILS, WIN_COUNTERS, WIN_ERRORS, WIN_OPS, WIN_RESTARTS,
};
use crate::monitor::{MonitorHub, MonitorStats};
use crate::stats::{ConcurrencySnapshot, ConcurrencyStats, ServerStatsSnapshot, WorkerStats};
use crate::store::KvStore;
use crate::timer::TimerWheel;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing ready connections. Decoupled from the
    /// connection count: a few workers serve thousands of connections.
    pub workers: usize,
    /// Most frames executed per pipelining batch.
    pub max_pipeline: usize,
    /// Close connections with no socket progress for this long (`None`
    /// disables eviction). Enforced lazily at timer-wheel granularity
    /// (about an eighth of the timeout), so eviction can run a tick late.
    pub idle_timeout: Option<Duration>,
    /// Latency recording (histograms, phase timings, slow-op capture).
    /// Always on by default; turning it off removes every clock reading
    /// from the serving loop (the `fig15_observability` bench measures
    /// exactly this delta). The `INFO`/`SLOWLOG`/`METRICS` verbs answer
    /// either way — with zeroed latency data when recording is off.
    pub telemetry: bool,
    /// Requests with service time (execute phase) at or above this are
    /// captured in the per-worker slow-op rings.
    pub slowlog_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_pipeline: 128,
            idle_timeout: Some(Duration::from_secs(60)),
            telemetry: true,
            slowlog_threshold: Duration::from_millis(10),
        }
    }
}

impl ServerConfig {
    /// A config sized to serve `n` concurrent connections. The event-driven
    /// tier decouples workers from connections, so this only nudges the
    /// worker count up for parallel execution — it is *not* a capacity
    /// limit the way it was for the thread-per-connection design.
    pub fn for_connections(n: usize) -> Self {
        Self { workers: n.clamp(1, 8), ..Self::default() }
    }
}

/// Reserved readiness token for the listening socket (distinct from every
/// `(generation, index)` connection token in practice, and from the
/// poller's internal waker at `u64::MAX`).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Most sockets accepted per listener readiness event before re-arming, so
/// an accept flood cannot starve ready-connection dispatch.
const ACCEPT_BURST: usize = 64;

#[inline]
fn make_token(idx: u32, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

#[inline]
fn split_token(token: u64) -> (u32, u32) {
    (token as u32, (token >> 32) as u32)
}

/// One registry slot: the connection (if open) and the generation its
/// token must carry to be considered current.
struct Slot {
    gen: u32,
    conn: Option<Connection>,
}

/// Slab-style connection registry: an append-only vector of slots plus a
/// free list. Lookup by index is a read-lock and a clone of the slot's
/// `Arc`; the vector's write lock is taken only when the slab grows.
struct Registry {
    slots: RwLock<Vec<Arc<Mutex<Slot>>>>,
    free: Mutex<Vec<u32>>,
}

impl Registry {
    fn new() -> Registry {
        Registry { slots: RwLock::new(Vec::new()), free: Mutex::new(Vec::new()) }
    }

    /// A free slot (recycled or freshly grown) and its index.
    fn alloc(&self) -> (u32, Arc<Mutex<Slot>>) {
        if let Some(idx) = self.free.lock().expect("free list poisoned").pop() {
            let slot =
                Arc::clone(&self.slots.read().expect("registry poisoned")[idx as usize]);
            return (idx, slot);
        }
        let mut slots = self.slots.write().expect("registry poisoned");
        let idx = slots.len() as u32;
        let slot = Arc::new(Mutex::new(Slot { gen: 0, conn: None }));
        slots.push(Arc::clone(&slot));
        (idx, slot)
    }

    fn slot(&self, idx: u32) -> Option<Arc<Mutex<Slot>>> {
        self.slots.read().expect("registry poisoned").get(idx as usize).cloned()
    }

    /// Returns `idx` to the free list. Call only after the slot's
    /// connection was taken and its generation bumped.
    fn release(&self, idx: u32) {
        self.free.lock().expect("free list poisoned").push(idx);
    }

    fn all(&self) -> Vec<Arc<Mutex<Slot>>> {
        self.slots.read().expect("registry poisoned").clone()
    }
}

/// Shared state between the event loop, the workers, and the handle.
struct Shared {
    store: Arc<dyn KvStore>,
    shutdown: AtomicBool,
    poller: Poller,
    registry: Registry,
    /// Tokens whose connections are ready to advance.
    ready: Mutex<VecDeque<u64>>,
    available: Condvar,
    /// `workers` blocks for the workers plus one trailing block owned by
    /// the event loop (accepts, timeouts, wakeups, swept connections).
    stats: Box<[CachePadded<WorkerStats>]>,
    /// One telemetry block per worker (the event loop executes no frames,
    /// so it needs none).
    tel: Box<[CachePadded<WorkerTelemetry>]>,
    /// One structure-level concurrency block per worker: each worker
    /// drains its thread-local [`ascylib::stats::OpCounters`] delta and
    /// refreshes its allocator view here after every connection pass.
    conc: Box<[CachePadded<ConcurrencyStats>]>,
    /// Cumulative-sample ring behind the windowed rates and quantiles.
    /// Rotation is reader-driven: scrapes elect one sampler, the serving
    /// hot path never touches it.
    window: WindowRing,
    /// The `MONITOR` broadcast hub.
    monitor: MonitorHub,
    /// Gauge of currently open connections.
    curr_conns: AtomicU64,
    started: Instant,
    config: ServerConfig,
}

impl Shared {
    fn totals(&self) -> ServerStatsSnapshot {
        let mut total = ServerStatsSnapshot::default();
        for s in self.stats.iter() {
            total.merge_counters(&s.snapshot());
        }
        // Gauge contract (see `stats.rs`): the merge leaves the gauge at
        // zero; the aggregator overwrites it from the live source.
        total.curr_connections = self.curr_conns.load(Ordering::Relaxed);
        total
    }

    fn enqueue(&self, token: u64) {
        self.ready.lock().expect("ready queue poisoned").push_back(token);
        self.available.notify_one();
    }

    /// Takes the connection out of a locked slot, deregisters it, and
    /// closes it — all under the slot lock, so a racing worker can never
    /// re-arm a recycled descriptor. The caller releases the index (after
    /// dropping the lock) and does its own counting.
    fn retire(&self, slot: &mut Slot) {
        if let Some(conn) = slot.conn.take() {
            let _ = self.poller.deregister(conn.fd());
            drop(conn);
            self.curr_conns.fetch_sub(1, Ordering::Relaxed);
        }
        slot.gen = slot.gen.wrapping_add(1);
    }
}

impl TelemetryHub for Shared {
    fn telemetry_totals(&self) -> TelemetrySnapshot {
        let mut total = TelemetrySnapshot::default();
        for t in self.tel.iter() {
            total.merge(&t.snapshot());
        }
        total
    }

    fn slow_ops(&self) -> Vec<SlowOp> {
        let mut ops: Vec<SlowOp> = self.tel.iter().flat_map(|t| t.slow_ops()).collect();
        // Newest first across workers (each ring is oldest-first locally).
        ops.sort_by_key(|op| std::cmp::Reverse(op.unix_ms));
        ops
    }

    fn slow_reset(&self) {
        for t in self.tel.iter() {
            t.slow_reset();
        }
    }

    fn slow_len(&self) -> u64 {
        self.tel.iter().map(|t| t.slow_len() as u64).sum()
    }

    fn workers(&self) -> usize {
        self.config.workers
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    fn concurrency_totals(&self) -> ConcurrencySnapshot {
        let mut total = ConcurrencySnapshot::default();
        for c in self.conc.iter() {
            total.merge(&c.snapshot());
        }
        total
    }

    fn window(&self) -> Option<WindowDelta> {
        // Reader-driven rotation: a scrape landing past the interval takes
        // a whole-server cumulative sample (`rotate` elects exactly one
        // contender under concurrent scrapes). The monotonic clock is the
        // server's uptime — `Instant`-based, so it needs no calibration
        // and works with telemetry recording off.
        let mono_ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if self.window.due(mono_ns) {
            let totals = self.totals();
            let conc = self.concurrency_totals();
            let mut counters = vec![0u64; WIN_COUNTERS];
            counters[WIN_OPS] = totals.ops;
            counters[WIN_BYTES_IN] = totals.bytes_in;
            counters[WIN_BYTES_OUT] = totals.bytes_out;
            counters[WIN_ERRORS] = totals.errors;
            counters[WIN_CAS_FAILS] = conc.ops.atomic_failures;
            counters[WIN_RESTARTS] = conc.ops.restarts;
            self.window.rotate(WindowSample {
                unix_ms: unix_ms_now(),
                mono_ns,
                counters,
                hist: self.telemetry_totals().data_requests(),
            });
        }
        self.window.delta(DEFAULT_WINDOW_NS)
    }
}

/// The serving tier. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port — the bound address
    /// is on the handle) and starts the event loop + worker threads serving
    /// `store`.
    pub fn start<S: KvStore>(
        addr: impl ToSocketAddrs,
        store: S,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        // Calibrate the telemetry fast clock before any request is timed,
        // so the one-time spin (~200 µs) never lands on a served frame.
        if config.telemetry {
            ascylib_telemetry::clock::calibrate();
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = config.workers.max(1);
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        let shared = Arc::new(Shared {
            store: Arc::new(store),
            shutdown: AtomicBool::new(false),
            poller,
            registry: Registry::new(),
            ready: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stats: (0..workers + 1).map(|_| CachePadded::new(WorkerStats::default())).collect(),
            tel: (0..workers).map(|_| CachePadded::new(WorkerTelemetry::new())).collect(),
            conc: (0..workers).map(|_| CachePadded::new(ConcurrencyStats::default())).collect(),
            window: WindowRing::new(DEFAULT_WINDOW_INTERVAL_NS, DEFAULT_WINDOW_CAPACITY),
            monitor: MonitorHub::default(),
            curr_conns: AtomicU64::new(0),
            started: Instant::now(),
            config: ServerConfig { workers, ..config },
        });

        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ascy-events".into())
                    .spawn(move || event_loop(listener, &shared))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ascy-worker-{i}"))
                    .spawn(move || worker_loop(i, &shared))?,
            );
        }
        Ok(ServerHandle { addr: local, shared, threads })
    }
}

fn event_loop(listener: TcpListener, shared: &Shared) {
    // The trailing stats block belongs to the event loop.
    let stats = &shared.stats[shared.config.workers];
    let idle = shared.config.idle_timeout;
    let mut wheel = idle.map(|t| {
        let gran = (t / 8).clamp(Duration::from_millis(5), Duration::from_millis(500));
        TimerWheel::new(t, gran, Instant::now())
    });
    let tick = wheel.as_ref().map_or(Duration::from_millis(200), |w| w.granularity());
    let mut events = Events::new();
    let mut expired: Vec<u64> = Vec::new();

    while !shared.shutdown.load(Ordering::Acquire) {
        if shared.poller.wait(&mut events, Some(tick)).is_err() {
            break;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        for ev in events.iter() {
            if ev.token == LISTENER_TOKEN {
                accept_burst(&listener, shared, stats, wheel.as_mut(), idle);
                let _ = shared.poller.rearm(
                    listener.as_raw_fd(),
                    LISTENER_TOKEN,
                    Interest::READABLE,
                );
            } else {
                WorkerStats::bump(&stats.wakeups, 1);
                shared.enqueue(ev.token);
            }
        }
        if let (Some(wheel), Some(idle)) = (wheel.as_mut(), idle) {
            expired.clear();
            wheel.advance(Instant::now(), &mut expired);
            for &token in &expired {
                check_idle(shared, stats, wheel, token, idle);
            }
        }
    }

    // Final sweep: flush what was already computed, close everything. Swept
    // connections count as served so accept/close bookkeeping balances.
    for slot_arc in shared.registry.all() {
        let mut slot = slot_arc.lock().expect("slot poisoned");
        if let Some(conn) = slot.conn.as_mut() {
            conn.final_flush(stats);
            shared.retire(&mut slot);
            WorkerStats::bump(&stats.connections, 1);
        }
    }
    shared.ready.lock().expect("ready queue poisoned").clear();
    // Dropping the listener here closes the accept socket.
}

fn accept_burst(
    listener: &TcpListener,
    shared: &Shared,
    stats: &WorkerStats,
    mut wheel: Option<&mut TimerWheel>,
    idle: Option<Duration>,
) {
    for _ in 0..ACCEPT_BURST {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            // Transient accept failure (e.g. aborted handshake): the
            // listener re-arms and the next readiness event retries.
            Err(_) => break,
        };
        let Ok(conn) = Connection::new(stream) else { continue };
        let fd = conn.fd();
        let (idx, slot_arc) = shared.registry.alloc();
        let mut slot = slot_arc.lock().expect("slot poisoned");
        let token = make_token(idx, slot.gen);
        if shared.poller.register(fd, token, Interest::READABLE).is_err() {
            slot.gen = slot.gen.wrapping_add(1);
            drop(slot);
            shared.registry.release(idx);
            continue;
        }
        slot.conn = Some(conn);
        drop(slot);
        WorkerStats::bump(&stats.accepted, 1);
        shared.curr_conns.fetch_add(1, Ordering::Relaxed);
        if let (Some(wheel), Some(idle)) = (wheel.as_deref_mut(), idle) {
            wheel.schedule(token, Instant::now() + idle);
        }
    }
}

/// A wheel deadline came due: evict if the connection really made no
/// progress for the whole timeout, otherwise reschedule from its actual
/// last activity (the lazy re-check that keeps activity O(1)).
fn check_idle(
    shared: &Shared,
    stats: &WorkerStats,
    wheel: &mut TimerWheel,
    token: u64,
    idle: Duration,
) {
    let (idx, gen) = split_token(token);
    let Some(slot_arc) = shared.registry.slot(idx) else { return };
    let mut slot = slot_arc.lock().expect("slot poisoned");
    if slot.gen != gen {
        return; // stale: the connection this deadline was for is gone
    }
    let Some(conn) = slot.conn.as_ref() else { return };
    let deadline = conn.last_active + idle;
    if Instant::now() >= deadline {
        shared.retire(&mut slot);
        drop(slot);
        shared.registry.release(idx);
        WorkerStats::bump(&stats.timeouts, 1);
        WorkerStats::bump(&stats.connections, 1);
    } else {
        drop(slot);
        wheel.schedule(token, deadline);
    }
}

fn worker_loop(index: usize, shared: &Shared) {
    let stats = &shared.stats[index];
    let totals = || shared.totals();
    let ctx = ConnCtx {
        store: &*shared.store,
        max_pipeline: shared.config.max_pipeline,
        stats,
        totals: &totals,
        tel: &shared.tel[index],
        hub: shared,
        recording: shared.config.telemetry,
        slow_ns: shared.config.slowlog_threshold.as_nanos().min(u64::MAX as u128) as u64,
        worker: index as u32,
        monitor: &shared.monitor,
    };
    let mut chunk = vec![0u8; 16 * 1024];
    loop {
        let token = {
            let mut ready = shared.ready.lock().expect("ready queue poisoned");
            loop {
                if let Some(token) = ready.pop_front() {
                    break Some(token);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .available
                    .wait_timeout(ready, Duration::from_millis(100))
                    .expect("ready queue poisoned");
                ready = guard;
            }
        };
        let Some(token) = token else { return };
        let (idx, gen) = split_token(token);
        let Some(slot_arc) = shared.registry.slot(idx) else { continue };
        let mut slot = slot_arc.lock().expect("slot poisoned");
        if slot.gen != gen {
            continue; // stale wakeup for a recycled slot
        }
        let Some(conn) = slot.conn.as_mut() else { continue };
        let fd = conn.fd();
        let outcome = conn.advance(&ctx, &mut chunk);
        // A MONITOR frame executed this pass: perform the subscription
        // here, where the connection's registry token is known (the wake
        // path enqueues exactly this token).
        if let Some(sample) = conn.take_pending_monitor() {
            conn.attach_monitor(shared.monitor.subscribe(token, sample));
        }
        // Per-pass drain: fold the structure-level counter deltas this
        // pass generated (the store work ran on this thread) into the
        // worker's padded block, and refresh the allocator absolutes.
        shared.conc[index].fold_ops(&ascylib::stats::drain_delta());
        shared.conc[index].set_ssmem(&ascylib_ssmem::thread_stats());
        // Wake subscribers whose monitor sinks went non-empty under this
        // pass's publishes.
        for wake in shared.monitor.take_wakes() {
            shared.enqueue(wake);
        }
        match outcome {
            Advance::Arm(interest) => {
                // Re-arm while still holding the slot lock: eviction closes
                // descriptors under this same lock, so the fd cannot have
                // been recycled out from under the token.
                if shared.poller.rearm(fd, token, interest).is_ok() {
                    continue;
                }
                // Un-armable (poller torn down or fd invalid): close.
                shared.retire(&mut slot);
                drop(slot);
                shared.registry.release(idx);
                WorkerStats::bump(&stats.connections, 1);
            }
            Advance::Yield => {
                drop(slot);
                shared.enqueue(token);
            }
            Advance::Close(_exit) => {
                shared.retire(&mut slot);
                drop(slot);
                shared.registry.release(idx);
                WorkerStats::bump(&stats.connections, 1);
            }
        }
    }
}

/// Handle to a running server: its bound address, live statistics, and
/// shutdown/join control. Dropping the handle shuts the server down and
/// joins its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregated per-worker counters (plus the current-connection gauge).
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.totals()
    }

    /// Elements currently in the served store.
    pub fn store_size(&self) -> usize {
        self.shared.store.size()
    }

    /// Merged server-side telemetry (per-family/per-phase histograms and
    /// hit/miss counters) across every worker.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.shared.telemetry_totals()
    }

    /// Slow-op entries across every worker, newest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        TelemetryHub::slow_ops(&*self.shared)
    }

    /// Summed structure-level concurrency counters (coherence events plus
    /// ssmem allocator state) across every worker block.
    pub fn concurrency(&self) -> ConcurrencySnapshot {
        self.shared.concurrency_totals()
    }

    /// `MONITOR` broadcast counters: live subscribers, events published,
    /// events dropped on full subscriber sinks.
    pub fn monitor_stats(&self) -> MonitorStats {
        self.shared.monitor.stats()
    }

    /// Signals shutdown (idempotent, non-blocking): stop accepting, flush
    /// buffered replies, close connections.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.shared.poller.notify();
        self.shared.available.notify_all();
    }

    /// Shuts down, blocks until the event loop and every worker exited, and
    /// returns the final (race-free: all threads joined) counters.
    pub fn join(mut self) -> ServerStatsSnapshot {
        self.join_inner();
        self.shared.totals()
    }

    fn join_inner(&mut self) {
        self.shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlobStore;
    use ascylib::hashtable::ClhtLb;
    use ascylib_shard::BlobMap;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn tiny_server(workers: usize) -> ServerHandle {
        let map = Arc::new(BlobMap::new(2, |_| ClhtLb::with_capacity(64)));
        Server::start(
            "127.0.0.1:0",
            BlobStore::new(map),
            ServerConfig { workers, ..ServerConfig::default() },
        )
        .expect("bind ephemeral")
    }

    #[test]
    fn starts_serves_raw_frames_and_shuts_down() {
        let server = tiny_server(2);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"SET 5 2\r\n50\r\nGET 5\r\nGET 6\r\nbogus\r\nPING\r\nQUIT\r\n").unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        assert_eq!(reply, ":1\r\n$2\r\n50\r\n_\r\n-ERR unknown verb\r\n+PONG\r\n+BYE\r\n");
        assert_eq!(server.store_size(), 1);
        let stats = server.join();
        assert_eq!(stats.connections, 1, "QUIT closes and the worker records the connection");
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.frames, 5, "bogus line is an error, not a frame");
        assert_eq!(stats.errors, 1);
        assert!(stats.wakeups >= 1, "serving required at least one readiness dispatch");
        assert_eq!(stats.curr_connections, 0, "nothing left open after join");
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    }

    #[test]
    fn shutdown_unblocks_idle_connections_and_workers() {
        let server = tiny_server(2);
        // One idle connection parked in the poller.
        let mut idle = TcpStream::connect(server.addr()).unwrap();
        idle.write_all(b"PING\r\n").unwrap();
        let mut buf = [0u8; 16];
        let n = idle.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"+PONG\r\n");
        let addr = server.addr();
        server.join(); // must not hang on the idle connection
        // The listener is gone after join.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn one_worker_serves_many_connections_concurrently() {
        // The event-driven refactor's point: with a single worker there is
        // no head-of-line blocking — an open idle connection does not stop
        // later connections from being served.
        let server = tiny_server(1);
        let mut held: Vec<TcpStream> = (0..8)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        // All eight get answered while all eight stay open.
        for s in held.iter_mut() {
            s.write_all(b"PING\r\n").unwrap();
        }
        let mut buf = [0u8; 16];
        for s in held.iter_mut() {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let n = s.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"+PONG\r\n");
        }
        let open = server.stats().curr_connections;
        assert_eq!(open, 8, "all connections stay open at once on one worker");
        drop(held);
        server.join();
    }

    #[test]
    fn monitor_streams_trace_events_to_a_tcp_subscriber() {
        let server = tiny_server(2);
        let mut sub = TcpStream::connect(server.addr()).unwrap();
        sub.write_all(b"MONITOR\r\n").unwrap();
        sub.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 4096];
        let n = sub.read(&mut buf).unwrap();
        assert!(
            String::from_utf8_lossy(&buf[..n]).starts_with("+OK\r\n"),
            "MONITOR must be acknowledged first"
        );

        // Traffic on a second connection; keep sending until a trace frame
        // reaches the subscriber (the subscription activates just after the
        // +OK flush, so the first few events can legitimately miss it).
        let mut data = TcpStream::connect(server.addr()).unwrap();
        data.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sub.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !String::from_utf8_lossy(&got).contains("+monitor ") {
            data.write_all(b"SET 7 1\r\nx\r\n").unwrap();
            let n = data.read(&mut buf).unwrap();
            assert!(n > 0, "data connection must keep being served");
            if let Ok(n) = sub.read(&mut buf) {
                got.extend_from_slice(&buf[..n]);
            }
            assert!(Instant::now() < deadline, "no trace frame arrived: {got:?}");
        }
        let text = String::from_utf8_lossy(&got);
        assert!(text.contains("family=set"), "{text}");
        assert!(text.contains("key=7"), "{text}");
        let mon = server.monitor_stats();
        assert_eq!(mon.subscribers, 1);
        assert!(mon.events >= 1);

        // The served traffic also moved the structure-level counters.
        let conc = server.concurrency();
        assert!(conc.ops.operations > 0, "worker folds must surface: {conc:?}");

        // Clean disconnect: QUIT answers +BYE in-band even mid-stream.
        sub.write_all(b"QUIT\r\n").unwrap();
        sub.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut bye = Vec::new();
        sub.read_to_end(&mut bye).unwrap();
        assert!(String::from_utf8_lossy(&bye).contains("+BYE\r\n"));
        // The hub prunes the dead sink at the next publish or scrape.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.monitor_stats().subscribers != 0 {
            assert!(Instant::now() < deadline, "dead subscriber never pruned");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.join();
    }
}
