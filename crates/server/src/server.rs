//! The TCP serving tier: acceptor + worker-pool architecture.
//!
//! [`Server::start`] binds a listener and spawns one acceptor thread plus
//! `N` worker threads. The acceptor pushes accepted sockets onto a shared
//! queue; each worker pulls one connection and serves it to completion
//! (EOF, `QUIT`, or server shutdown) before taking the next — the
//! thread-per-worker model keeps every connection's frames strictly ordered
//! with no cross-thread handoff on the hot path.
//!
//! **Capacity:** a closed-loop client holds its connection for its whole
//! session, so size `workers` at least as large as the number of concurrent
//! long-lived connections; extra connections wait in the accept queue until
//! a worker frees up.
//!
//! **Shutdown** ([`ServerHandle::shutdown`]) is graceful and bounded: the
//! acceptor stops accepting, each worker finishes the batch it is executing
//! (responses already computed are flushed), notices the flag at its next
//! read-timeout tick, and exits. Queued-but-unserved connections are closed
//! without service. [`ServerHandle::join`] (or dropping the handle) blocks
//! until every thread has exited.
//!
//! Per-worker counters live in cache-line-padded blocks
//! ([`crate::stats::WorkerStats`]) so the serving hot path never bounces a
//! stats line between workers.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_utils::CachePadded;

use crate::conn::{serve_connection, ConnCtx, ConnExit};
use crate::stats::{ServerStatsSnapshot, WorkerStats};
use crate::store::KvStore;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (= maximum concurrently served connections).
    pub workers: usize,
    /// Most frames executed per pipelining batch.
    pub max_pipeline: usize,
    /// Socket read timeout; also the shutdown-poll granularity, so shutdown
    /// latency for idle connections is about this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { workers: 4, max_pipeline: 128, read_timeout: Duration::from_millis(20) }
    }
}

impl ServerConfig {
    /// A config sized to serve `n` concurrent closed-loop connections.
    pub fn for_connections(n: usize) -> Self {
        Self { workers: n.max(1), ..Self::default() }
    }
}

/// Shared state between the acceptor, the workers, and the handle.
struct Shared {
    store: Arc<dyn KvStore>,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    stats: Box<[CachePadded<WorkerStats>]>,
    config: ServerConfig,
}

impl Shared {
    fn totals(&self) -> ServerStatsSnapshot {
        let mut total = ServerStatsSnapshot::default();
        for s in self.stats.iter() {
            total.merge(&s.snapshot());
        }
        total
    }
}

/// The serving tier. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port — the bound address
    /// is on the handle) and starts the acceptor + worker threads serving
    /// `store`.
    pub fn start<S: KvStore>(
        addr: impl ToSocketAddrs,
        store: S,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            store: Arc::new(store),
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stats: (0..workers).map(|_| CachePadded::new(WorkerStats::default())).collect(),
            config: ServerConfig { workers, ..config },
        });

        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ascy-accept".into())
                    .spawn(move || acceptor_loop(listener, &shared))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ascy-worker-{i}"))
                    .spawn(move || worker_loop(i, &shared))?,
            );
        }
        Ok(ServerHandle { addr: local, shared, threads })
    }
}

fn acceptor_loop(listener: TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mut queue = shared.queue.lock().expect("accept queue poisoned");
                queue.push_back(stream);
                drop(queue);
                shared.available.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Nonblocking accept doubles as the shutdown poll; 1 ms keeps
                // accept latency negligible against a connection's lifetime.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake): retry.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn worker_loop(index: usize, shared: &Shared) {
    let stats = &shared.stats[index];
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("accept queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(20))
                    .expect("accept queue poisoned");
                queue = guard;
            }
        };
        let Some(stream) = stream else { return };
        let totals = || shared.totals();
        let ctx = ConnCtx {
            store: &*shared.store,
            shutdown: &shared.shutdown,
            max_pipeline: shared.config.max_pipeline,
            read_timeout: shared.config.read_timeout,
            stats,
            totals: &totals,
        };
        let _exit: ConnExit = serve_connection(stream, &ctx);
        WorkerStats::bump(&stats.connections, 1);
    }
}

/// Handle to a running server: its bound address, live statistics, and
/// shutdown/join control. Dropping the handle shuts the server down and
/// joins its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregated per-worker counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.totals()
    }

    /// Elements currently in the served store.
    pub fn store_size(&self) -> usize {
        self.shared.store.size()
    }

    /// Signals shutdown (idempotent, non-blocking): stop accepting, drain
    /// in-flight batches, close connections.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
    }

    /// Shuts down, blocks until the acceptor and every worker exited, and
    /// returns the final (race-free: all workers joined) counters.
    pub fn join(mut self) -> ServerStatsSnapshot {
        self.join_inner();
        self.shared.totals()
    }

    fn join_inner(&mut self) {
        self.shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Close connections the acceptor queued but no worker picked up.
        if let Ok(mut queue) = self.shared.queue.lock() {
            queue.clear();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlobStore;
    use ascylib::hashtable::ClhtLb;
    use ascylib_shard::BlobMap;
    use std::io::{Read, Write};

    fn tiny_server(workers: usize) -> ServerHandle {
        let map = Arc::new(BlobMap::new(2, |_| ClhtLb::with_capacity(64)));
        Server::start(
            "127.0.0.1:0",
            BlobStore::new(map),
            ServerConfig { workers, ..ServerConfig::default() },
        )
        .expect("bind ephemeral")
    }

    #[test]
    fn starts_serves_raw_frames_and_shuts_down() {
        let server = tiny_server(2);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"SET 5 2\r\n50\r\nGET 5\r\nGET 6\r\nbogus\r\nPING\r\nQUIT\r\n").unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        assert_eq!(reply, ":1\r\n$2\r\n50\r\n_\r\n-ERR unknown verb\r\n+PONG\r\n+BYE\r\n");
        assert_eq!(server.store_size(), 1);
        let stats = server.join();
        assert_eq!(stats.connections, 1, "QUIT closes and the worker records the connection");
        assert_eq!(stats.frames, 5, "bogus line is an error, not a frame");
        assert_eq!(stats.errors, 1);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    }

    #[test]
    fn shutdown_unblocks_idle_connections_and_workers() {
        let server = tiny_server(2);
        // One idle connection parked in a worker's read loop.
        let mut idle = TcpStream::connect(server.addr()).unwrap();
        idle.write_all(b"PING\r\n").unwrap();
        let mut buf = [0u8; 16];
        let n = idle.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"+PONG\r\n");
        let addr = server.addr();
        server.join(); // must not hang on the idle connection
        // The listener is gone after join.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn queued_connections_wait_for_a_free_worker() {
        let server = tiny_server(1);
        let mut first = TcpStream::connect(server.addr()).unwrap();
        first.write_all(b"PING\r\n").unwrap();
        let mut buf = [0u8; 16];
        let n = first.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"+PONG\r\n");
        // Second connection queues behind the first (single worker)...
        let mut second = TcpStream::connect(server.addr()).unwrap();
        second.write_all(b"PING\r\n").unwrap();
        // ...and is served once the first disconnects.
        first.write_all(b"QUIT\r\n").unwrap();
        drop(first);
        second.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let n = second.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"+PONG\r\n");
        server.join();
    }
}
