//! Per-worker serving counters.
//!
//! Each worker thread owns one cache-line-padded [`WorkerStats`] block, so
//! hot-path counting never bounces a line between workers (the same
//! observability-without-false-sharing discipline as
//! `ascylib_shard::stats`). The event loop owns one extra block for the
//! counters only it maintains (accepts, idle-timeout evictions, readiness
//! wakeups). Aggregation walks the blocks only when a snapshot is requested
//! (`STATS` frames, [`crate::server::ServerHandle`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters one worker thread maintains while serving its connections.
///
/// All counters are monotone and updated with `Relaxed` ordering: each block
/// is written by exactly one worker, and snapshots are statistical (exactly
/// like the structure-level `ascylib::stats` counters, they carry no
/// happens-before obligations).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Connections fully served (accepted, drained, closed).
    pub connections: AtomicU64,
    /// Connections accepted (event-loop block only).
    pub accepted: AtomicU64,
    /// Connections evicted by the idle timeout (event-loop block only).
    pub timeouts: AtomicU64,
    /// Readiness events dispatched to workers (event-loop block only).
    pub wakeups: AtomicU64,
    /// Reply flushes that hit `WouldBlock` mid-buffer and had to re-arm the
    /// connection for writability.
    pub partial_writes: AtomicU64,
    /// Well-formed request frames executed.
    pub frames: AtomicU64,
    /// Keyspace operations performed (an `MGET` of 10 keys counts 10).
    pub ops: AtomicU64,
    /// Per-key read lookups that found a value (`GET`/`MGET`; one per key).
    pub hits: AtomicU64,
    /// Per-key read lookups that missed.
    pub misses: AtomicU64,
    /// Error frames sent (malformed requests, key-range violations,
    /// unsupported scans).
    pub errors: AtomicU64,
    /// Bytes read from sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
}

impl WorkerStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            curr_connections: 0,
            accepted: self.accepted.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            partial_writes: self.partial_writes.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time server counters (one worker's, or the sum over all
/// workers via [`merge_counters`](Self::merge_counters)).
///
/// # Counters vs. gauges
///
/// Every field except `curr_connections` is a monotone **counter**, safe to
/// sum across snapshots. `curr_connections` is a **gauge**: summing two
/// full snapshots would double-count it, so
/// [`merge_counters`](Self::merge_counters) deliberately leaves it
/// untouched and the owner of the aggregate overwrites it from the live
/// registry afterwards (see
/// `Shared::totals` in `server.rs`). Any future gauge field must follow the
/// same contract: excluded from the merge, set once by the aggregator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections fully served.
    pub connections: u64,
    /// Connections currently open (a gauge, not a counter: the server fills
    /// it in from its registry when the snapshot is taken; per-worker blocks
    /// report 0).
    pub curr_connections: u64,
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections evicted by the idle timeout.
    pub timeouts: u64,
    /// Readiness events dispatched to workers.
    pub wakeups: u64,
    /// Reply flushes that blocked mid-buffer (wait-for-writability re-arms).
    pub partial_writes: u64,
    /// Well-formed request frames executed.
    pub frames: u64,
    /// Keyspace operations performed.
    pub ops: u64,
    /// Per-key read lookups that found a value.
    pub hits: u64,
    /// Per-key read lookups that missed.
    pub misses: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Bytes read from sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

impl ServerStatsSnapshot {
    /// Adds the **counter** fields of another snapshot into this one
    /// (saturating: a clamped aggregate is visibly wrong, a wrapped tiny one
    /// is not). The `curr_connections` gauge is deliberately *not* merged —
    /// summing a gauge across snapshots double-counts it; the aggregator
    /// overwrites it from the live source instead (see the type-level
    /// contract above).
    pub fn merge_counters(&mut self, other: &ServerStatsSnapshot) {
        self.connections = self.connections.saturating_add(other.connections);
        self.accepted = self.accepted.saturating_add(other.accepted);
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.wakeups = self.wakeups.saturating_add(other.wakeups);
        self.partial_writes = self.partial_writes.saturating_add(other.partial_writes);
        self.frames = self.frames.saturating_add(other.frames);
        self.ops = self.ops.saturating_add(other.ops);
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.errors = self.errors.saturating_add(other.errors);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.bytes_out = self.bytes_out.saturating_add(other.bytes_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_capture_and_merge() {
        let a = WorkerStats::default();
        WorkerStats::bump(&a.frames, 3);
        WorkerStats::bump(&a.ops, 7);
        WorkerStats::bump(&a.bytes_in, 100);
        WorkerStats::bump(&a.partial_writes, 2);
        WorkerStats::bump(&a.hits, 5);
        WorkerStats::bump(&a.misses, 2);
        let b = WorkerStats::default();
        WorkerStats::bump(&b.frames, 2);
        WorkerStats::bump(&b.errors, 1);
        WorkerStats::bump(&b.accepted, 4);
        WorkerStats::bump(&b.timeouts, 1);
        WorkerStats::bump(&b.wakeups, 9);
        WorkerStats::bump(&b.hits, 1);
        let mut total = a.snapshot();
        total.merge_counters(&b.snapshot());
        assert_eq!(total.frames, 5);
        assert_eq!(total.ops, 7);
        assert_eq!(total.hits, 6);
        assert_eq!(total.misses, 2);
        assert_eq!(total.errors, 1);
        assert_eq!(total.bytes_in, 100);
        assert_eq!(total.connections, 0);
        assert_eq!(total.accepted, 4);
        assert_eq!(total.timeouts, 1);
        assert_eq!(total.wakeups, 9);
        assert_eq!(total.partial_writes, 2);
        assert_eq!(total.curr_connections, 0, "gauge is filled in by the server, not workers");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ServerStatsSnapshot { ops: u64::MAX - 1, ..Default::default() };
        a.merge_counters(&ServerStatsSnapshot { ops: 5, ..Default::default() });
        assert_eq!(a.ops, u64::MAX);
    }

    #[test]
    fn merge_counters_leaves_the_gauge_alone() {
        // The historical bug: merging two full snapshots summed the
        // curr_connections gauge, double-counting open connections. The
        // merge must not touch it — the aggregator overwrites it.
        let mut a = ServerStatsSnapshot { curr_connections: 3, ..Default::default() };
        a.merge_counters(&ServerStatsSnapshot { curr_connections: 3, ..Default::default() });
        assert_eq!(a.curr_connections, 3, "gauge must not be summed by the merge");
    }
}
