//! Per-worker serving counters.
//!
//! Each worker thread owns one cache-line-padded [`WorkerStats`] block, so
//! hot-path counting never bounces a line between workers (the same
//! observability-without-false-sharing discipline as
//! `ascylib_shard::stats`). The event loop owns one extra block for the
//! counters only it maintains (accepts, idle-timeout evictions, readiness
//! wakeups). Aggregation walks the blocks only when a snapshot is requested
//! (`STATS` frames, [`crate::server::ServerHandle`]).

use std::sync::atomic::{AtomicU64, Ordering};

use ascylib::stats::OpCounters;
use ascylib_ssmem::SsmemStats;

/// Counters one worker thread maintains while serving its connections.
///
/// All counters are monotone and updated with `Relaxed` ordering: each block
/// is written by exactly one worker, and snapshots are statistical (exactly
/// like the structure-level `ascylib::stats` counters, they carry no
/// happens-before obligations).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Connections fully served (accepted, drained, closed).
    pub connections: AtomicU64,
    /// Connections accepted (event-loop block only).
    pub accepted: AtomicU64,
    /// Connections evicted by the idle timeout (event-loop block only).
    pub timeouts: AtomicU64,
    /// Readiness events dispatched to workers (event-loop block only).
    pub wakeups: AtomicU64,
    /// Reply flushes that hit `WouldBlock` mid-buffer and had to re-arm the
    /// connection for writability.
    pub partial_writes: AtomicU64,
    /// Well-formed request frames executed.
    pub frames: AtomicU64,
    /// Keyspace operations performed (an `MGET` of 10 keys counts 10).
    pub ops: AtomicU64,
    /// Per-key read lookups that found a value (`GET`/`MGET`; one per key).
    pub hits: AtomicU64,
    /// Per-key read lookups that missed.
    pub misses: AtomicU64,
    /// Error frames sent (malformed requests, key-range violations,
    /// unsupported scans).
    pub errors: AtomicU64,
    /// Bytes read from sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
}

impl WorkerStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            curr_connections: 0,
            accepted: self.accepted.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            partial_writes: self.partial_writes.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time server counters (one worker's, or the sum over all
/// workers via [`merge_counters`](Self::merge_counters)).
///
/// # Counters vs. gauges
///
/// Every field except `curr_connections` is a monotone **counter**, safe to
/// sum across snapshots. `curr_connections` is a **gauge**: summing two
/// full snapshots would double-count it, so
/// [`merge_counters`](Self::merge_counters) deliberately leaves it
/// untouched and the owner of the aggregate overwrites it from the live
/// registry afterwards (see
/// `Shared::totals` in `server.rs`). Any future gauge field must follow the
/// same contract: excluded from the merge, set once by the aggregator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections fully served.
    pub connections: u64,
    /// Connections currently open (a gauge, not a counter: the server fills
    /// it in from its registry when the snapshot is taken; per-worker blocks
    /// report 0).
    pub curr_connections: u64,
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections evicted by the idle timeout.
    pub timeouts: u64,
    /// Readiness events dispatched to workers.
    pub wakeups: u64,
    /// Reply flushes that blocked mid-buffer (wait-for-writability re-arms).
    pub partial_writes: u64,
    /// Well-formed request frames executed.
    pub frames: u64,
    /// Keyspace operations performed.
    pub ops: u64,
    /// Per-key read lookups that found a value.
    pub hits: u64,
    /// Per-key read lookups that missed.
    pub misses: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Bytes read from sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

impl ServerStatsSnapshot {
    /// Adds the **counter** fields of another snapshot into this one
    /// (saturating: a clamped aggregate is visibly wrong, a wrapped tiny one
    /// is not). The `curr_connections` gauge is deliberately *not* merged —
    /// summing a gauge across snapshots double-counts it; the aggregator
    /// overwrites it from the live source instead (see the type-level
    /// contract above).
    pub fn merge_counters(&mut self, other: &ServerStatsSnapshot) {
        self.connections = self.connections.saturating_add(other.connections);
        self.accepted = self.accepted.saturating_add(other.accepted);
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.wakeups = self.wakeups.saturating_add(other.wakeups);
        self.partial_writes = self.partial_writes.saturating_add(other.partial_writes);
        self.frames = self.frames.saturating_add(other.frames);
        self.ops = self.ops.saturating_add(other.ops);
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.errors = self.errors.saturating_add(other.errors);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.bytes_out = self.bytes_out.saturating_add(other.bytes_out);
    }
}

/// Structure-level concurrency counters one worker publishes for scrapes.
///
/// The paper's coherence counters (`ascylib::stats`) live in thread-local
/// cells only the owning thread can read — which is exactly right for the
/// bench harness, and exactly wrong for a live server that wants
/// `INFO concurrency`. Each worker bridges the gap by draining its
/// thread-local delta after every connection pass
/// ([`ascylib::stats::drain_delta`]) and folding it into its own
/// cache-padded block here; the ssmem fields are refreshed as absolutes
/// from [`ascylib_ssmem::thread_stats`] at the same point. Single-writer
/// discipline: folds are plain load+store pairs (no `lock` prefix), and
/// readers aggregate statistically, like every other counter block.
#[derive(Debug, Default)]
pub struct ConcurrencyStats {
    shared_stores: AtomicU64,
    atomic_ops: AtomicU64,
    atomic_failures: AtomicU64,
    lock_acquisitions: AtomicU64,
    restarts: AtomicU64,
    nodes_traversed: AtomicU64,
    waits: AtomicU64,
    operations: AtomicU64,
    ssmem_allocations: AtomicU64,
    ssmem_frees: AtomicU64,
    ssmem_reclaimed: AtomicU64,
    ssmem_reused: AtomicU64,
    ssmem_gc_passes: AtomicU64,
    ssmem_pending: AtomicU64,
    ssmem_pooled: AtomicU64,
    ssmem_guard_depth: AtomicU64,
}

impl ConcurrencyStats {
    #[inline]
    fn add(counter: &AtomicU64, n: u64) {
        if n != 0 {
            // Single-writer: plain load + store, no RMW.
            counter.store(
                counter.load(Ordering::Relaxed).saturating_add(n),
                Ordering::Relaxed,
            );
        }
    }

    /// Folds one drained [`OpCounters`] delta into the block. Call only
    /// from the owning worker thread.
    pub fn fold_ops(&self, d: &OpCounters) {
        Self::add(&self.shared_stores, d.shared_stores);
        Self::add(&self.atomic_ops, d.atomic_ops);
        Self::add(&self.atomic_failures, d.atomic_failures);
        Self::add(&self.lock_acquisitions, d.lock_acquisitions);
        Self::add(&self.restarts, d.restarts);
        Self::add(&self.nodes_traversed, d.nodes_traversed);
        Self::add(&self.waits, d.waits);
        Self::add(&self.operations, d.operations);
    }

    /// Publishes the owning thread's current allocator stats (absolutes —
    /// `thread_stats()` is already cumulative for the counter fields and
    /// point-in-time for `pending`/`pooled`/`guard_depth`).
    pub fn set_ssmem(&self, s: &SsmemStats) {
        self.ssmem_allocations.store(s.allocations, Ordering::Relaxed);
        self.ssmem_frees.store(s.frees, Ordering::Relaxed);
        self.ssmem_reclaimed.store(s.reclaimed, Ordering::Relaxed);
        self.ssmem_reused.store(s.reused, Ordering::Relaxed);
        self.ssmem_gc_passes.store(s.gc_passes, Ordering::Relaxed);
        self.ssmem_pending.store(s.pending, Ordering::Relaxed);
        self.ssmem_pooled.store(s.pooled, Ordering::Relaxed);
        self.ssmem_guard_depth.store(s.guard_depth, Ordering::Relaxed);
    }

    /// A point-in-time copy of the block.
    pub fn snapshot(&self) -> ConcurrencySnapshot {
        ConcurrencySnapshot {
            ops: OpCounters {
                shared_stores: self.shared_stores.load(Ordering::Relaxed),
                atomic_ops: self.atomic_ops.load(Ordering::Relaxed),
                atomic_failures: self.atomic_failures.load(Ordering::Relaxed),
                lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
                restarts: self.restarts.load(Ordering::Relaxed),
                nodes_traversed: self.nodes_traversed.load(Ordering::Relaxed),
                waits: self.waits.load(Ordering::Relaxed),
                operations: self.operations.load(Ordering::Relaxed),
            },
            ssmem: SsmemStats {
                allocations: self.ssmem_allocations.load(Ordering::Relaxed),
                frees: self.ssmem_frees.load(Ordering::Relaxed),
                reclaimed: self.ssmem_reclaimed.load(Ordering::Relaxed),
                reused: self.ssmem_reused.load(Ordering::Relaxed),
                gc_passes: self.ssmem_gc_passes.load(Ordering::Relaxed),
                pending: self.ssmem_pending.load(Ordering::Relaxed),
                pooled: self.ssmem_pooled.load(Ordering::Relaxed),
                guard_depth: self.ssmem_guard_depth.load(Ordering::Relaxed),
            },
        }
    }
}

/// Point-in-time structure-level concurrency numbers (one worker's block
/// or the sum over all workers).
///
/// All `ops` fields are monotone counters. Within `ssmem`, the event
/// fields are counters while `pending`/`pooled`/`guard_depth` are
/// per-thread gauges — but unlike `curr_connections` these sum
/// meaningfully across *distinct* workers' blocks (each worker owns a
/// separate allocator), so [`merge`](Self::merge) adds every field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcurrencySnapshot {
    /// Coherence-relevant structure events (stores, CAS, restarts, ...).
    pub ops: OpCounters,
    /// Epoch allocator activity (allocations, reclaimed, pending, ...).
    pub ssmem: SsmemStats,
}

impl ConcurrencySnapshot {
    /// Adds another worker's snapshot into this one (saturating).
    pub fn merge(&mut self, other: &ConcurrencySnapshot) {
        self.ops.merge(&other.ops);
        self.ssmem.merge(&other.ssmem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_capture_and_merge() {
        let a = WorkerStats::default();
        WorkerStats::bump(&a.frames, 3);
        WorkerStats::bump(&a.ops, 7);
        WorkerStats::bump(&a.bytes_in, 100);
        WorkerStats::bump(&a.partial_writes, 2);
        WorkerStats::bump(&a.hits, 5);
        WorkerStats::bump(&a.misses, 2);
        let b = WorkerStats::default();
        WorkerStats::bump(&b.frames, 2);
        WorkerStats::bump(&b.errors, 1);
        WorkerStats::bump(&b.accepted, 4);
        WorkerStats::bump(&b.timeouts, 1);
        WorkerStats::bump(&b.wakeups, 9);
        WorkerStats::bump(&b.hits, 1);
        let mut total = a.snapshot();
        total.merge_counters(&b.snapshot());
        assert_eq!(total.frames, 5);
        assert_eq!(total.ops, 7);
        assert_eq!(total.hits, 6);
        assert_eq!(total.misses, 2);
        assert_eq!(total.errors, 1);
        assert_eq!(total.bytes_in, 100);
        assert_eq!(total.connections, 0);
        assert_eq!(total.accepted, 4);
        assert_eq!(total.timeouts, 1);
        assert_eq!(total.wakeups, 9);
        assert_eq!(total.partial_writes, 2);
        assert_eq!(total.curr_connections, 0, "gauge is filled in by the server, not workers");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ServerStatsSnapshot { ops: u64::MAX - 1, ..Default::default() };
        a.merge_counters(&ServerStatsSnapshot { ops: 5, ..Default::default() });
        assert_eq!(a.ops, u64::MAX);
    }

    #[test]
    fn concurrency_block_folds_deltas_and_overwrites_ssmem_absolutes() {
        let block = ConcurrencyStats::default();
        block.fold_ops(&OpCounters { shared_stores: 3, atomic_ops: 2, ..OpCounters::ZERO });
        block.fold_ops(&OpCounters { shared_stores: 1, atomic_failures: 1, ..OpCounters::ZERO });
        block.set_ssmem(&SsmemStats { allocations: 10, pending: 4, ..Default::default() });
        // set_ssmem overwrites (absolutes), fold_ops accumulates (deltas).
        block.set_ssmem(&SsmemStats { allocations: 12, pending: 2, ..Default::default() });
        let snap = block.snapshot();
        assert_eq!(snap.ops.shared_stores, 4);
        assert_eq!(snap.ops.atomic_ops, 2);
        assert_eq!(snap.ops.atomic_failures, 1);
        assert_eq!(snap.ssmem.allocations, 12);
        assert_eq!(snap.ssmem.pending, 2);
        let mut total = snap;
        total.merge(&snap);
        assert_eq!(total.ops.shared_stores, 8);
        assert_eq!(total.ssmem.pending, 4, "per-worker gauges sum across distinct workers");
    }

    #[test]
    fn merge_counters_leaves_the_gauge_alone() {
        // The historical bug: merging two full snapshots summed the
        // curr_connections gauge, double-counting open connections. The
        // merge must not touch it — the aggregator overwrites it.
        let mut a = ServerStatsSnapshot { curr_connections: 3, ..Default::default() };
        a.merge_counters(&ServerStatsSnapshot { curr_connections: 3, ..Default::default() });
        assert_eq!(a.curr_connections, 3, "gauge must not be summed by the merge");
    }
}
