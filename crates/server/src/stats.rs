//! Per-worker serving counters.
//!
//! Each worker thread owns one cache-line-padded [`WorkerStats`] block, so
//! hot-path counting never bounces a line between workers (the same
//! observability-without-false-sharing discipline as
//! `ascylib_shard::stats`). Aggregation walks the blocks only when a
//! snapshot is requested (`STATS` frames, [`crate::server::ServerHandle`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters one worker thread maintains while serving its connections.
///
/// All counters are monotone and updated with `Relaxed` ordering: each block
/// is written by exactly one worker, and snapshots are statistical (exactly
/// like the structure-level `ascylib::stats` counters, they carry no
/// happens-before obligations).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Connections fully served (accepted, drained, closed).
    pub connections: AtomicU64,
    /// Well-formed request frames executed.
    pub frames: AtomicU64,
    /// Keyspace operations performed (an `MGET` of 10 keys counts 10).
    pub ops: AtomicU64,
    /// Error frames sent (malformed requests, key-range violations,
    /// unsupported scans).
    pub errors: AtomicU64,
    /// Bytes read from sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
}

impl WorkerStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time server counters (one worker's, or the sum over all
/// workers via [`merge`](Self::merge)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections fully served.
    pub connections: u64,
    /// Well-formed request frames executed.
    pub frames: u64,
    /// Keyspace operations performed.
    pub ops: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Bytes read from sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

impl ServerStatsSnapshot {
    /// Adds another snapshot into this one (saturating: a clamped aggregate
    /// is visibly wrong, a wrapped tiny one is not).
    pub fn merge(&mut self, other: &ServerStatsSnapshot) {
        self.connections = self.connections.saturating_add(other.connections);
        self.frames = self.frames.saturating_add(other.frames);
        self.ops = self.ops.saturating_add(other.ops);
        self.errors = self.errors.saturating_add(other.errors);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.bytes_out = self.bytes_out.saturating_add(other.bytes_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_capture_and_merge() {
        let a = WorkerStats::default();
        WorkerStats::bump(&a.frames, 3);
        WorkerStats::bump(&a.ops, 7);
        WorkerStats::bump(&a.bytes_in, 100);
        let b = WorkerStats::default();
        WorkerStats::bump(&b.frames, 2);
        WorkerStats::bump(&b.errors, 1);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.frames, 5);
        assert_eq!(total.ops, 7);
        assert_eq!(total.errors, 1);
        assert_eq!(total.bytes_in, 100);
        assert_eq!(total.connections, 0);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ServerStatsSnapshot { ops: u64::MAX - 1, ..Default::default() };
        a.merge(&ServerStatsSnapshot { ops: 5, ..Default::default() });
        assert_eq!(a.ops, u64::MAX);
    }
}
