//! A coarse timer wheel for idle-connection deadlines.
//!
//! The event loop schedules one deadline per live connection and checks them
//! lazily: when a bucket comes due, each token in it is looked up in the
//! connection registry and its *actual* last-activity time decides whether
//! to evict or reschedule. That laziness is what keeps the wheel O(1) per
//! operation — activity on a connection never has to find and remove a
//! pending entry, it just updates `last_active` and lets the stale wheel
//! entry fall out on its next expiry.
//!
//! Tokens carry a generation tag (see the registry in [`crate::server`]),
//! so an entry for a connection that closed — and whose slot was reused —
//! fails the generation check at expiry and is dropped harmlessly.

use std::time::{Duration, Instant};

pub(crate) struct TimerWheel {
    /// `buckets[i]` holds tokens due `i - cursor` ticks from now (mod len).
    buckets: Vec<Vec<u64>>,
    granularity: Duration,
    cursor: usize,
    /// The wall-clock position of `cursor`; advances in whole ticks.
    last_tick: Instant,
}

impl TimerWheel {
    /// A wheel spanning `span` with `granularity` ticks. Deadlines past the
    /// span are clamped to the furthest bucket — lazy re-checks reschedule
    /// them, so clamping affects precision, never correctness.
    pub(crate) fn new(span: Duration, granularity: Duration, now: Instant) -> TimerWheel {
        let granularity = granularity.max(Duration::from_millis(1));
        let ticks = (span.as_nanos() / granularity.as_nanos()).max(1) as usize;
        TimerWheel {
            buckets: (0..ticks + 2).map(|_| Vec::new()).collect(),
            granularity,
            cursor: 0,
            last_tick: now,
        }
    }

    pub(crate) fn granularity(&self) -> Duration {
        self.granularity
    }

    /// Files `token` to come due at `deadline` (rounded up to a tick, at
    /// least one tick out so a just-scheduled token never fires instantly).
    pub(crate) fn schedule(&mut self, token: u64, deadline: Instant) {
        let delta = deadline.saturating_duration_since(self.last_tick);
        let gran = self.granularity.as_nanos();
        let ticks = delta.as_nanos().div_ceil(gran);
        let ticks = (ticks as usize).clamp(1, self.buckets.len() - 1);
        let slot = (self.cursor + ticks) % self.buckets.len();
        self.buckets[slot].push(token);
    }

    /// Rotates the wheel up to `now`, draining every due bucket into
    /// `expired`. Call at poll-timeout granularity; catching up after a long
    /// stall drains multiple buckets in one call.
    pub(crate) fn advance(&mut self, now: Instant, expired: &mut Vec<u64>) {
        while now.duration_since(self.last_tick) >= self.granularity {
            self.last_tick += self.granularity;
            self.cursor = (self.cursor + 1) % self.buckets.len();
            expired.append(&mut self.buckets[self.cursor]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Instant {
        Instant::now()
    }

    #[test]
    fn tokens_come_due_in_deadline_order() {
        let t0 = base();
        let gran = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(Duration::from_millis(100), gran, t0);
        wheel.schedule(1, t0 + Duration::from_millis(35));
        wheel.schedule(2, t0 + Duration::from_millis(75));
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(30), &mut due);
        assert!(due.is_empty(), "35 ms deadline not due at 30 ms");
        wheel.advance(t0 + Duration::from_millis(40), &mut due);
        assert_eq!(due, vec![1]);
        due.clear();
        wheel.advance(t0 + Duration::from_millis(100), &mut due);
        assert_eq!(due, vec![2]);
    }

    #[test]
    fn deadlines_past_the_span_clamp_to_the_far_edge() {
        let t0 = base();
        let mut wheel =
            TimerWheel::new(Duration::from_millis(50), Duration::from_millis(10), t0);
        wheel.schedule(9, t0 + Duration::from_secs(3600));
        let mut due = Vec::new();
        // The clamped entry surfaces within one full rotation, where the
        // lazy re-check would reschedule it.
        wheel.advance(t0 + Duration::from_millis(100), &mut due);
        assert_eq!(due, vec![9]);
    }

    #[test]
    fn past_and_immediate_deadlines_fire_on_the_next_tick() {
        let t0 = base();
        let gran = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(Duration::from_millis(100), gran, t0);
        wheel.schedule(7, t0); // already due
        let mut due = Vec::new();
        wheel.advance(t0 + gran, &mut due);
        assert_eq!(due, vec![7], "never files into the current bucket");
    }

    #[test]
    fn catching_up_after_a_stall_drains_every_due_bucket() {
        let t0 = base();
        let mut wheel =
            TimerWheel::new(Duration::from_millis(100), Duration::from_millis(10), t0);
        for (token, ms) in [(1u64, 15u64), (2, 45), (3, 85)] {
            wheel.schedule(token, t0 + Duration::from_millis(ms));
        }
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(90), &mut due);
        due.sort_unstable();
        assert_eq!(due, vec![1, 2, 3]);
    }
}
