//! The `MONITOR` broadcast: a bounded, drop-counting fan-out of sampled
//! per-request trace events to subscribed connections.
//!
//! # Why an intermediate queue
//!
//! A worker publishing an event holds its own connection's slot lock (it
//! is inside that connection's `advance`). Writing directly into a
//! subscriber's output buffer would mean taking a *second* slot lock while
//! holding the first — and two workers publishing to each other's
//! subscriber connections is then a textbook AB-BA deadlock. So the hub
//! never touches a subscriber's `Connection`: events land in a
//! per-subscriber [`MonitorSink`] (a small mutex-guarded frame queue), the
//! publisher notes the subscriber's token in a wake list, and the
//! *subscriber's own worker* — woken through the ordinary ready queue —
//! drains the sink into its write buffer under its own slot lock.
//!
//! # Flow control
//!
//! The sink is bounded by bytes. A subscriber that stops reading (or reads
//! slower than events arrive) fills its sink; further events for it are
//! **dropped and counted**, never buffered unboundedly — the monitor
//! stream is lossy by design, like its Redis namesake. Once the drop count
//! crosses the eviction threshold the connection is closed with an in-band
//! `-ERR` so an operator sees *why* the stream ended. Drops are visible in
//! `INFO concurrency` (`monitor_dropped`) and `ascy_monitor_*` metrics.
//!
//! # Hot-path cost
//!
//! With no subscribers, the entire feature is one relaxed load per sampled
//! request ([`MonitorHub::active`]). Event rendering happens once per
//! published event (not per subscriber) and only when at least one
//! subscriber exists.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ascylib_telemetry::Family;

/// Default per-subscriber sink capacity in queued frame bytes (~a few
/// thousand events). Beyond it events for that subscriber are dropped.
pub(crate) const MONITOR_SINK_BYTES: usize = 256 * 1024;

/// Dropped events after which a lagging subscriber is evicted: the stream
/// has become more hole than signal, so the server closes it loudly
/// instead of letting the subscriber believe it is seeing the traffic.
pub(crate) const MONITOR_EVICT_DROPS: u64 = 4096;

/// Only drain monitor frames into a connection whose unflushed write
/// backlog is below this, so a subscriber that is also running ordinary
/// traffic keeps its replies flowing first (the sink absorbs the burst).
pub(crate) const MONITOR_DRAIN_BACKLOG: usize = 64 * 1024;

/// One sampled request trace event, as captured on the serving hot path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MonitorEvent {
    /// Capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Command family of the request.
    pub family: Family,
    /// Primary key (first key for batched verbs, cursor for `SCAN`, 0 for
    /// keyless verbs).
    pub key: u64,
    /// Payload bytes the request carried.
    pub bytes: u64,
    /// Service time of the request in nanoseconds.
    pub service_ns: u64,
    /// Worker thread that served it.
    pub worker: u32,
}

impl MonitorEvent {
    /// The full wire frame: a simple-string line a `ReplyParser` yields as
    /// `Reply::Simple`, so existing clients need no new parsing.
    fn render(&self) -> Vec<u8> {
        format!(
            "+monitor unix_ms={} family={} key={} bytes={} service_ns={} worker={}\r\n",
            self.unix_ms,
            self.family.name(),
            self.key,
            self.bytes,
            self.service_ns,
            self.worker,
        )
        .into_bytes()
    }
}

/// The queue half of a sink, guarded by one mutex: frames, their byte
/// total, and whether the subscriber has already been woken for them.
#[derive(Debug, Default)]
struct SinkQueue {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
    /// `true` while a wake for this sink is pending in the hub's wake
    /// list (or the subscriber is known-awake); prevents one chatty
    /// publisher from enqueueing the same token thousands of times.
    woken: bool,
}

/// One subscriber's event mailbox. The hub holds one `Arc`, the
/// subscribing `Connection` the other; when the connection dies its clone
/// drops and the hub prunes the sink on the next publish or scrape.
#[derive(Debug)]
pub(crate) struct MonitorSink {
    /// Registry token of the subscribing connection (what the wake list
    /// carries back to `Shared::enqueue`).
    token: u64,
    /// Keep every `sample_n`-th eligible event (>= 1).
    sample_n: u64,
    /// Eligible events offered to this sink (sampling counter).
    seen: AtomicU64,
    /// Events dropped because the sink was full.
    dropped: AtomicU64,
    /// Set when `dropped` crosses the eviction threshold; the connection
    /// notices at drain time and closes itself in-band.
    evict: AtomicBool,
    /// Set by the connection when it stops monitoring (eviction path);
    /// publish skips and prunes gone sinks.
    gone: AtomicBool,
    q: Mutex<SinkQueue>,
}

impl MonitorSink {
    /// Whether this sink crossed the eviction threshold.
    pub(crate) fn evicted(&self) -> bool {
        self.evict.load(Ordering::Acquire)
    }

    /// Events dropped on this sink so far.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Marks the sink dead ahead of the connection's own teardown so
    /// publishers stop queueing into it immediately.
    pub(crate) fn mark_gone(&self) {
        self.gone.store(true, Ordering::Release);
    }

    /// Moves every queued frame into `out` (the connection's write
    /// buffer). Returns the number of frames moved. Clears the wake flag:
    /// the subscriber is demonstrably awake, and any later event re-wakes
    /// it through the hub.
    pub(crate) fn drain_into(&self, out: &mut Vec<u8>) -> usize {
        let mut q = self.q.lock().unwrap();
        q.woken = false;
        let n = q.frames.len();
        for frame in q.frames.drain(..) {
            out.extend_from_slice(&frame);
        }
        q.bytes = 0;
        n
    }
}

/// Aggregate monitor counters for the scrape surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Live subscribers right now.
    pub subscribers: u64,
    /// Events published since boot (counted once per event, not per
    /// subscriber).
    pub events: u64,
    /// Per-subscriber drops, summed over all subscribers since boot.
    pub dropped: u64,
}

/// The broadcast hub: the subscriber list, the wake list, and the global
/// counters. One per server, owned by `Shared`.
#[derive(Debug)]
pub(crate) struct MonitorHub {
    subs: Mutex<Vec<Arc<MonitorSink>>>,
    /// Cached `subs.len()` for the hot-path zero-subscriber check.
    active: AtomicUsize,
    /// Tokens of sinks that went non-empty (or evicted) and need their
    /// worker woken. Drained by whichever worker published last.
    wakes: Mutex<Vec<u64>>,
    has_wakes: AtomicBool,
    events: AtomicU64,
    dropped_total: AtomicU64,
    sink_bytes: usize,
    evict_drops: u64,
}

impl Default for MonitorHub {
    fn default() -> Self {
        Self::with_limits(MONITOR_SINK_BYTES, MONITOR_EVICT_DROPS)
    }
}

impl MonitorHub {
    /// A hub with explicit per-sink byte capacity and eviction threshold
    /// (tests use tiny ones; the server uses the defaults).
    pub(crate) fn with_limits(sink_bytes: usize, evict_drops: u64) -> Self {
        MonitorHub {
            subs: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
            wakes: Mutex::new(Vec::new()),
            has_wakes: AtomicBool::new(false),
            events: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
            sink_bytes,
            evict_drops,
        }
    }

    /// The zero-cost-when-unused gate: one relaxed load on the sampled
    /// request path.
    #[inline]
    pub(crate) fn active(&self) -> bool {
        self.active.load(Ordering::Relaxed) > 0
    }

    /// Registers a subscriber. `sample_n` of 0 or `None` means every
    /// eligible event.
    pub(crate) fn subscribe(&self, token: u64, sample_n: Option<u64>) -> Arc<MonitorSink> {
        let sink = Arc::new(MonitorSink {
            token,
            sample_n: sample_n.unwrap_or(1).max(1),
            seen: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evict: AtomicBool::new(false),
            gone: AtomicBool::new(false),
            q: Mutex::new(SinkQueue::default()),
        });
        let mut subs = self.subs.lock().unwrap();
        Self::prune(&mut subs);
        subs.push(Arc::clone(&sink));
        self.active.store(subs.len(), Ordering::Release);
        sink
    }

    /// Drops sinks whose connection is gone (the hub holds the only
    /// remaining `Arc`) or that marked themselves gone.
    fn prune(subs: &mut Vec<Arc<MonitorSink>>) {
        subs.retain(|s| Arc::strong_count(s) > 1 && !s.gone.load(Ordering::Acquire));
    }

    /// Fans one event out to every live subscriber. Frames are rendered
    /// once; full sinks count a drop instead of queueing. Sinks that went
    /// non-empty are noted in the wake list for the caller's worker to
    /// enqueue (see [`take_wakes`](Self::take_wakes)).
    pub(crate) fn publish(&self, ev: &MonitorEvent) {
        let mut subs = self.subs.lock().unwrap();
        Self::prune(&mut subs);
        self.active.store(subs.len(), Ordering::Release);
        if subs.is_empty() {
            return;
        }
        self.events.fetch_add(1, Ordering::Relaxed);
        let mut frame: Option<Vec<u8>> = None;
        for sink in subs.iter() {
            let n = sink.seen.fetch_add(1, Ordering::Relaxed);
            if n % sink.sample_n != 0 {
                continue;
            }
            let frame = frame.get_or_insert_with(|| ev.render());
            let mut q = sink.q.lock().unwrap();
            let mut wake = false;
            if q.bytes + frame.len() > self.sink_bytes {
                let dropped = sink.dropped.fetch_add(1, Ordering::Relaxed) + 1;
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
                if dropped >= self.evict_drops && !sink.evict.swap(true, Ordering::AcqRel) {
                    // First crossing: wake the subscriber so it can close
                    // itself in-band.
                    wake = true;
                }
            } else {
                q.bytes += frame.len();
                q.frames.push_back(frame.clone());
                wake = !q.woken;
            }
            if wake {
                q.woken = true;
                drop(q);
                self.wakes.lock().unwrap().push(sink.token);
                self.has_wakes.store(true, Ordering::Release);
            }
        }
    }

    /// Takes the pending wake tokens (empty almost always: one relaxed
    /// load when nothing is pending). Workers call this after each
    /// connection pass and `enqueue` every token returned.
    pub(crate) fn take_wakes(&self) -> Vec<u64> {
        if !self.has_wakes.swap(false, Ordering::AcqRel) {
            return Vec::new();
        }
        std::mem::take(&mut *self.wakes.lock().unwrap())
    }

    /// Scrape-time aggregate (prunes dead sinks first so `subscribers` is
    /// honest).
    pub(crate) fn stats(&self) -> MonitorStats {
        let mut subs = self.subs.lock().unwrap();
        Self::prune(&mut subs);
        self.active.store(subs.len(), Ordering::Release);
        MonitorStats {
            subscribers: subs.len() as u64,
            events: self.events.load(Ordering::Relaxed),
            dropped: self.dropped_total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: u64) -> MonitorEvent {
        MonitorEvent {
            unix_ms: 1_700_000_000_000,
            family: Family::Get,
            key,
            bytes: 0,
            service_ns: 500,
            worker: 2,
        }
    }

    #[test]
    fn events_render_as_simple_frames_and_round_trip_the_reply_parser() {
        let frame = ev(42).render();
        let mut p = crate::protocol::ReplyParser::new();
        p.feed(&frame);
        match p.next() {
            Some(Ok(crate::protocol::Reply::Simple(s))) => {
                assert!(s.starts_with("monitor "), "{s}");
                assert!(s.contains("family=get"), "{s}");
                assert!(s.contains("key=42"), "{s}");
                assert!(s.contains("worker=2"), "{s}");
            }
            other => panic!("expected a simple frame, got {other:?}"),
        }
    }

    #[test]
    fn fan_out_respects_per_subscriber_sampling() {
        let hub = MonitorHub::default();
        let every = hub.subscribe(1, None);
        let third = hub.subscribe(2, Some(3));
        assert!(hub.active());
        for k in 0..9 {
            hub.publish(&ev(k));
        }
        let mut a = Vec::new();
        assert_eq!(every.drain_into(&mut a), 9);
        let mut b = Vec::new();
        assert_eq!(third.drain_into(&mut b), 3, "every 3rd eligible event");
        let stats = hub.stats();
        assert_eq!(stats.subscribers, 2);
        assert_eq!(stats.events, 9);
        assert_eq!(stats.dropped, 0);
        // Wakes were recorded for both sinks, deduplicated while queued.
        let wakes = hub.take_wakes();
        assert!(wakes.contains(&1) && wakes.contains(&2));
        assert!(hub.take_wakes().is_empty(), "wake list drains once");
    }

    #[test]
    fn stalled_subscriber_drops_are_counted_then_evicted() {
        // Sink fits exactly one frame; evict after 3 drops.
        let frame_len = ev(0).render().len();
        let hub = MonitorHub::with_limits(frame_len, 3);
        let sink = hub.subscribe(7, None);
        hub.publish(&ev(0)); // queued
        hub.publish(&ev(1)); // dropped (1)
        hub.publish(&ev(2)); // dropped (2)
        assert_eq!(sink.dropped(), 2);
        assert!(!sink.evicted());
        hub.publish(&ev(3)); // dropped (3) -> evict
        assert!(sink.evicted());
        assert_eq!(hub.stats().dropped, 3);
        assert_eq!(hub.stats().events, 4, "drops still count as published events");
        // The eviction crossing queues a wake so the victim can close.
        assert!(hub.take_wakes().contains(&7));
        // The queued frame is still drainable; the dropped ones are gone.
        let mut out = Vec::new();
        assert_eq!(sink.drain_into(&mut out), 1);
        // After draining, the sink accepts events again (lossy, not dead).
        hub.publish(&ev(4));
        let mut out = Vec::new();
        assert_eq!(sink.drain_into(&mut out), 1);
    }

    #[test]
    fn dead_subscribers_are_pruned_and_the_hub_goes_inactive() {
        let hub = MonitorHub::default();
        let sink = hub.subscribe(9, None);
        assert!(hub.active());
        drop(sink); // the "connection" died; hub holds the last Arc
        hub.publish(&ev(0));
        assert!(!hub.active(), "publish prunes dead sinks");
        assert_eq!(hub.stats().subscribers, 0);
        // mark_gone has the same effect for live Arcs.
        let sink = hub.subscribe(10, None);
        sink.mark_gone();
        assert_eq!(hub.stats().subscribers, 0);
        assert!(!hub.active());
    }
}
