//! A blocking client for the ASCY wire protocol, with request pipelining
//! and binary-safe byte values.
//!
//! [`Client`] offers one typed method per verb (each is a full round trip)
//! plus a [`Pipeline`] that queues any number of requests, flushes them in
//! one write, and reads the replies back in order — the protocol guarantees
//! in-order responses, so `k` pipelined requests cost one round trip
//! instead of `k`. Value-carrying methods take `&[u8]` and encode straight
//! into the write buffer (no intermediate `Request` allocation on the hot
//! path).
//!
//! Server `-ERR` replies and protocol violations surface as
//! [`std::io::Error`] with [`ErrorKind::InvalidData`] / `Other`; the
//! connection remains usable after an in-band error reply.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    encode_mset, encode_request, encode_set, encode_set_ex, Reply, ReplyParser, Request,
    SlowlogCmd,
};

/// A blocking connection to an `ascylib-server`.
pub struct Client {
    stream: TcpStream,
    parser: ReplyParser,
    chunk: Box<[u8; 16 * 1024]>,
}

fn protocol_err(what: &str) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, format!("protocol violation: {what}"))
}

fn server_err(message: String) -> io::Error {
    io::Error::other(format!("server error: {message}"))
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so unpipelined round trips do not sit
    /// out Nagle timers).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, parser: ReplyParser::new(), chunk: Box::new([0u8; 16 * 1024]) })
    }

    /// Sets a receive deadline for replies (`None` blocks forever).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Reads one complete reply frame (blocking).
    fn read_reply(&mut self) -> io::Result<Reply> {
        loop {
            match self.parser.next() {
                Some(Ok(reply)) => return Ok(reply),
                Some(Err(e)) => return Err(protocol_err(&e.to_string())),
                None => {
                    let n = self.stream.read(&mut self.chunk[..])?;
                    if n == 0 {
                        return Err(io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "server closed the connection mid-reply",
                        ));
                    }
                    self.parser.feed(&self.chunk[..n]);
                }
            }
        }
    }

    fn call(&mut self, req: &Request) -> io::Result<Reply> {
        let mut out = Vec::with_capacity(32);
        encode_request(req, &mut out);
        self.stream.write_all(&out)?;
        self.read_reply()
    }

    /// `GET key` → value bytes if present.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        decode_optional_bulk(self.call(&Request::Get(key))?)
    }

    /// `SET key value` → `true` if the key was newly created (`SET` is an
    /// upsert; an existing value is replaced and `false` returned).
    pub fn set(&mut self, key: u64, value: &[u8]) -> io::Result<bool> {
        let mut out = Vec::with_capacity(32 + value.len());
        encode_set(&mut out, key, value);
        self.stream.write_all(&out)?;
        decode_bool(self.read_reply()?)
    }

    /// `SET key value EX secs` → upsert with a relative expiry: the value
    /// reads as absent once `secs` seconds elapse. Returns `true` if the
    /// key was newly created. Stores without a cache tier reject the verb
    /// with an in-band error.
    pub fn set_ex(&mut self, key: u64, value: &[u8], secs: u64) -> io::Result<bool> {
        let mut out = Vec::with_capacity(40 + value.len());
        encode_set_ex(&mut out, key, value, secs);
        self.stream.write_all(&out)?;
        decode_bool(self.read_reply()?)
    }

    /// `EXPIRE key secs` → arms (or re-arms) the expiry of a live key;
    /// `true` if the key was present.
    pub fn expire(&mut self, key: u64, secs: u64) -> io::Result<bool> {
        decode_bool(self.call(&Request::Expire(key, secs))?)
    }

    /// `TTL key` → remaining lifetime: `None` if the key is missing (or
    /// already expired), `Some(None)` if it is live without an expiry,
    /// `Some(Some(secs))` whole seconds left (rounded up, so a value with
    /// any time left reports at least 1).
    pub fn ttl(&mut self, key: u64) -> io::Result<Option<Option<u64>>> {
        decode_ttl(self.call(&Request::Ttl(key))?)
    }

    /// `PERSIST key` → strips the expiry off a live key; `true` if the key
    /// was present.
    pub fn persist(&mut self, key: u64) -> io::Result<bool> {
        decode_bool(self.call(&Request::Persist(key))?)
    }

    /// `DEL key` → `true` if the key was present.
    pub fn del(&mut self, key: u64) -> io::Result<bool> {
        decode_bool(self.call(&Request::Del(key))?)
    }

    /// `MGET keys...` → per-key answers in input order.
    pub fn mget(&mut self, keys: &[u64]) -> io::Result<Vec<Option<Vec<u8>>>> {
        let elems = decode_array(self.call(&Request::MGet(keys.to_vec()))?)?;
        elems.into_iter().map(decode_optional_bulk).collect()
    }

    /// `MSET (key value)...` → per-entry created/replaced outcomes in input
    /// order. An empty batch is a no-op (the wire protocol has no zero-pair
    /// `MSET` frame).
    pub fn mset(&mut self, entries: &[(u64, &[u8])]) -> io::Result<Vec<bool>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(64);
        encode_mset(&mut out, entries.iter().map(|&(k, v)| (k, v)));
        self.stream.write_all(&out)?;
        let elems = decode_array(self.read_reply()?)?;
        elems.into_iter().map(decode_bool).collect()
    }

    /// `SCAN from count` → up to `count` `(key, value)` pairs, ascending.
    pub fn scan(&mut self, from: u64, count: usize) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let elems = decode_array(self.call(&Request::Scan(from, count))?)?;
        elems.into_iter().map(decode_pair).collect()
    }

    /// `PING` → checks liveness.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Simple(s) if s == "PONG" => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// `STATS` → the server's `name=value` info line, raw.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Reply::Simple(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// `INFO [section]` → the server's multi-line report (all sections, or
    /// just `server` / `commands` / `latency` / `memory`).
    pub fn info(&mut self, section: Option<&str>) -> io::Result<String> {
        let req = Request::Info(section.map(|s| s.to_ascii_lowercase()));
        decode_text(self.call(&req)?)
    }

    /// `METRICS` → the Prometheus text-exposition scrape body.
    pub fn metrics(&mut self) -> io::Result<String> {
        decode_text(self.call(&Request::Metrics)?)
    }

    /// `SLOWLOG GET` → the captured slow operations, one line per entry,
    /// newest first (empty string when nothing was captured).
    pub fn slowlog_get(&mut self) -> io::Result<String> {
        decode_text(self.call(&Request::Slowlog(SlowlogCmd::Get))?)
    }

    /// `SLOWLOG LEN` → slow-op entries currently held server-side.
    pub fn slowlog_len(&mut self) -> io::Result<u64> {
        match self.call(&Request::Slowlog(SlowlogCmd::Len))? {
            Reply::Int(n) => Ok(n),
            other => Err(unexpected(other)),
        }
    }

    /// `SLOWLOG RESET` → clears every worker's slow-op ring.
    pub fn slowlog_reset(&mut self) -> io::Result<()> {
        match self.call(&Request::Slowlog(SlowlogCmd::Reset))? {
            Reply::Simple(s) if s == "OK" => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// `MONITOR [sample_n]` → subscribes this connection to the server's
    /// sampled trace-event stream. After the `OK` the server volunteers
    /// `+monitor ...` frames (read them with
    /// [`monitor_next`](Self::monitor_next)); every `sample_n`-th eligible
    /// event is streamed (`None` keeps them all). The stream is lossy: a
    /// subscriber that reads too slowly has events dropped and is
    /// eventually disconnected with an in-band error.
    pub fn monitor(&mut self, sample_n: Option<u64>) -> io::Result<()> {
        match self.call(&Request::Monitor(sample_n))? {
            Reply::Simple(s) if s == "OK" => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Reads the next `+monitor ...` trace line (blocking, subject to
    /// [`set_timeout`](Self::set_timeout)). Call after
    /// [`monitor`](Self::monitor); the returned line carries
    /// `unix_ms= family= key= bytes= service_ns= worker=` fields.
    pub fn monitor_next(&mut self) -> io::Result<String> {
        match self.read_reply()? {
            Reply::Simple(s) if s.starts_with("monitor ") => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// `QUIT` → graceful close (waits for the server's `+BYE`). A
    /// monitoring connection may still have `+monitor` trace frames queued
    /// ahead of the `+BYE`; they are skipped, so a subscriber disconnects
    /// as cleanly as any other client.
    pub fn quit(mut self) -> io::Result<()> {
        let mut out = Vec::with_capacity(8);
        encode_request(&Request::Quit, &mut out);
        self.stream.write_all(&out)?;
        loop {
            match self.read_reply()? {
                Reply::Simple(s) if s == "BYE" => return Ok(()),
                Reply::Simple(s) if s.starts_with("monitor ") => {}
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Starts a pipelined batch on this connection.
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline { client: self, out: Vec::with_capacity(256), queued: 0 }
    }
}

/// A queued batch of requests flushed in one write.
///
/// Queue requests with the builder methods, then [`run`](Self::run): every
/// queued frame is sent in one write and the replies come back in queue
/// order (raw [`Reply`] values — a batch may mix verbs, so decoding is the
/// caller's). Server `-ERR` replies appear in the result as
/// [`Reply::Error`] rather than failing the whole batch.
pub struct Pipeline<'a> {
    client: &'a mut Client,
    out: Vec<u8>,
    queued: usize,
}

impl Pipeline<'_> {
    /// Queues any request frame.
    pub fn push(&mut self, req: &Request) -> &mut Self {
        encode_request(req, &mut self.out);
        self.queued += 1;
        self
    }

    /// Queues `GET key`.
    pub fn get(&mut self, key: u64) -> &mut Self {
        self.push(&Request::Get(key))
    }

    /// Queues `SET key value`, encoding the borrowed payload directly.
    pub fn set(&mut self, key: u64, value: &[u8]) -> &mut Self {
        encode_set(&mut self.out, key, value);
        self.queued += 1;
        self
    }

    /// Queues `SET key value EX secs`, encoding the borrowed payload
    /// directly.
    pub fn set_ex(&mut self, key: u64, value: &[u8], secs: u64) -> &mut Self {
        encode_set_ex(&mut self.out, key, value, secs);
        self.queued += 1;
        self
    }

    /// Queues `EXPIRE key secs`.
    pub fn expire(&mut self, key: u64, secs: u64) -> &mut Self {
        self.push(&Request::Expire(key, secs))
    }

    /// Queues `TTL key`.
    pub fn ttl(&mut self, key: u64) -> &mut Self {
        self.push(&Request::Ttl(key))
    }

    /// Queues `PERSIST key`.
    pub fn persist(&mut self, key: u64) -> &mut Self {
        self.push(&Request::Persist(key))
    }

    /// Queues `DEL key`.
    pub fn del(&mut self, key: u64) -> &mut Self {
        self.push(&Request::Del(key))
    }

    /// Queues `SCAN from count`.
    pub fn scan(&mut self, from: u64, count: usize) -> &mut Self {
        self.push(&Request::Scan(from, count))
    }

    /// Number of queued frames.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Sends every queued frame in one write and reads the replies back in
    /// order.
    ///
    /// The queued bytes are written in full before any reply is read, so
    /// keep one batch's request payloads comfortably under the socket
    /// buffer sizes (a few hundred KiB): a batch that stuffs both
    /// directions at once (huge `MSET`s queued behind huge `SCAN` replies)
    /// stalls until the server's one-second write timeout aborts the
    /// connection rather than deadlocking.
    pub fn run(&mut self) -> io::Result<Vec<Reply>> {
        if self.queued == 0 {
            return Ok(Vec::new());
        }
        self.client.stream.write_all(&self.out)?;
        let mut replies = Vec::with_capacity(self.queued);
        for _ in 0..self.queued {
            replies.push(self.client.read_reply()?);
        }
        self.out.clear();
        self.queued = 0;
        Ok(replies)
    }
}

fn unexpected(reply: Reply) -> io::Error {
    match reply {
        Reply::Error(msg) => server_err(msg),
        other => protocol_err(&format!("unexpected reply {other:?}")),
    }
}

/// Decodes `$…` / `_` replies (`GET` and `MGET` elements).
pub fn decode_optional_bulk(reply: Reply) -> io::Result<Option<Vec<u8>>> {
    match reply {
        Reply::Bulk(v) => Ok(Some(v)),
        Reply::Null => Ok(None),
        other => Err(unexpected(other)),
    }
}

/// Decodes `:0` / `:1` outcome replies (`SET`/`DEL` and `MSET` elements).
pub fn decode_bool(reply: Reply) -> io::Result<bool> {
    match reply {
        Reply::Int(0) => Ok(false),
        Reply::Int(1) => Ok(true),
        other => Err(unexpected(other)),
    }
}

/// Decodes `TTL` replies: `:secs` remaining, `+none` for a live key
/// without an expiry, null for a missing key.
pub fn decode_ttl(reply: Reply) -> io::Result<Option<Option<u64>>> {
    match reply {
        Reply::Int(secs) => Ok(Some(Some(secs))),
        Reply::Simple(s) if s == "none" => Ok(Some(None)),
        Reply::Null => Ok(None),
        other => Err(unexpected(other)),
    }
}

/// Decodes `=k len + payload` pair replies (`SCAN` elements).
pub fn decode_pair(reply: Reply) -> io::Result<(u64, Vec<u8>)> {
    match reply {
        Reply::Pair(k, v) => Ok((k, v)),
        other => Err(unexpected(other)),
    }
}

/// Decodes an array reply into its elements.
pub fn decode_array(reply: Reply) -> io::Result<Vec<Reply>> {
    match reply {
        Reply::Array(elems) => Ok(elems),
        other => Err(unexpected(other)),
    }
}

/// Decodes a bulk reply carrying UTF-8 report text (`INFO`, `SLOWLOG GET`,
/// `METRICS` bodies).
fn decode_text(reply: Reply) -> io::Result<String> {
    match reply {
        Reply::Bulk(bytes) => String::from_utf8(bytes)
            .map_err(|_| protocol_err("report body is not valid UTF-8")),
        other => Err(unexpected(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::store::BlobOrderedStore;
    use ascylib::list::HarrisList;
    use ascylib_shard::BlobMap;
    use std::sync::Arc;

    fn ordered_server() -> crate::server::ServerHandle {
        let map = Arc::new(BlobMap::new(2, |_| HarrisList::new()));
        Server::start("127.0.0.1:0", BlobOrderedStore::new(map), ServerConfig::default())
            .expect("bind ephemeral")
    }

    #[test]
    fn typed_calls_round_trip() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        c.ping().unwrap();
        assert!(c.set(10, b"hundred").unwrap());
        assert!(!c.set(10, b"hundred v2").unwrap(), "upsert reports replacement");
        assert_eq!(c.get(10).unwrap(), Some(b"hundred v2".to_vec()));
        assert_eq!(c.get(11).unwrap(), None);
        assert_eq!(
            c.mset(&[(12, b"v12".as_slice()), (13, b"v13".as_slice())]).unwrap(),
            vec![true, true]
        );
        assert_eq!(
            c.mget(&[10, 11, 12, 13]).unwrap(),
            vec![
                Some(b"hundred v2".to_vec()),
                None,
                Some(b"v12".to_vec()),
                Some(b"v13".to_vec())
            ]
        );
        assert_eq!(
            c.scan(11, 10).unwrap(),
            vec![(12, b"v12".to_vec()), (13, b"v13".to_vec())]
        );
        assert!(c.del(12).unwrap());
        assert!(!c.del(12).unwrap());
        let stats = c.stats().unwrap();
        assert!(stats.contains("size=2"), "{stats}");
        assert!(stats.contains("shards=2"), "{stats}");
        assert!(stats.contains("value_bytes="), "{stats}");
        c.quit().unwrap();
        server.join();
    }

    #[test]
    fn expiry_verbs_round_trip() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.set_ex(20, b"lease", 60).unwrap());
        match c.ttl(20).unwrap() {
            Some(Some(secs)) => assert!((1..=60).contains(&secs), "fresh 60 s lease: {secs}"),
            other => panic!("leased key must report a countdown, got {other:?}"),
        }
        assert!(c.persist(20).unwrap());
        assert_eq!(c.ttl(20).unwrap(), Some(None), "persisted key has no expiry");
        assert!(c.expire(20, 90).unwrap());
        match c.ttl(20).unwrap() {
            Some(Some(secs)) => assert!((1..=90).contains(&secs), "re-armed lease: {secs}"),
            other => panic!("re-armed key must report a countdown, got {other:?}"),
        }
        // Missing keys: TTL is null, EXPIRE/PERSIST report absence.
        assert_eq!(c.ttl(99).unwrap(), None);
        assert!(!c.expire(99, 5).unwrap());
        assert!(!c.persist(99).unwrap());

        // The same verbs pipeline like any other frame.
        let mut p = c.pipeline();
        p.set_ex(21, b"v21", 30).ttl(21).persist(21).ttl(21).expire(21, 7).ttl(99);
        let replies = p.run().unwrap();
        assert_eq!(replies.len(), 6);
        assert_eq!(replies[0], Reply::Int(1));
        assert!(matches!(replies[1], Reply::Int(1..=30)), "{:?}", replies[1]);
        assert_eq!(replies[2], Reply::Int(1));
        assert_eq!(replies[3], Reply::Simple("none".into()));
        assert_eq!(replies[4], Reply::Int(1));
        assert_eq!(replies[5], Reply::Null);
        c.quit().unwrap();
        server.join();
    }

    #[test]
    fn observability_accessors_round_trip() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.set(1, b"one").unwrap());
        assert_eq!(c.get(1).unwrap(), Some(b"one".to_vec()));
        assert_eq!(c.get(2).unwrap(), None);

        let info = c.info(None).unwrap();
        for header in ["# server", "# commands", "# latency", "# memory"] {
            assert!(info.contains(header), "INFO missing {header}:\n{info}");
        }
        let latency = c.info(Some("latency")).unwrap();
        assert!(latency.starts_with("# latency"));
        assert!(latency.contains("request_p99_ns:"));
        let err = c.info(Some("bogus")).unwrap_err();
        assert!(err.to_string().contains("unknown INFO section"), "{err}");

        let metrics = c.metrics().unwrap();
        ascylib_telemetry::expo::validate(&metrics).expect("scrape body validates");
        assert!(metrics.contains("ascy_read_hits_total 1"), "{metrics}");

        assert_eq!(c.slowlog_len().unwrap(), 0, "default 10ms threshold captures nothing here");
        assert_eq!(c.slowlog_get().unwrap(), "");
        c.slowlog_reset().unwrap();
        c.quit().unwrap();
        server.join();
    }

    #[test]
    fn monitor_subscription_yields_trace_lines() {
        let server = ordered_server();
        let mut sub = Client::connect(server.addr()).unwrap();
        sub.monitor(None).unwrap();
        let mut data = Client::connect(server.addr()).unwrap();
        // The subscription activates just after the OK reply flushes, so
        // drive traffic until a line comes through.
        sub.set_timeout(Some(std::time::Duration::from_millis(50))).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let line = loop {
            data.set(3, b"three").unwrap();
            match sub.monitor_next() {
                Ok(line) => break line,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => panic!("unexpected monitor error: {e}"),
            }
            assert!(std::time::Instant::now() < deadline, "no trace line arrived");
        };
        assert!(line.contains("family=set"), "{line}");
        assert!(line.contains("key=3"), "{line}");
        assert!(line.contains("service_ns="), "{line}");
        data.quit().unwrap();
        server.join();
    }

    #[test]
    fn server_errors_are_io_errors_but_keep_the_connection() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        let err = c.get(0).unwrap_err();
        assert!(err.to_string().contains("key out of usable range"), "{err}");
        // In-band error: the connection still works.
        c.ping().unwrap();
        assert!(c.set(5, b"fifty").unwrap());
        server.join();
    }

    #[test]
    fn pipeline_returns_replies_in_order() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        let mut p = c.pipeline();
        p.set(1, b"ten").set(2, b"twenty").get(1).del(2).get(2).scan(1, 4);
        assert_eq!(p.len(), 6);
        let replies = p.run().unwrap();
        assert_eq!(
            replies,
            vec![
                Reply::Int(1),
                Reply::Int(1),
                Reply::Bulk(b"ten".to_vec()),
                Reply::Int(1),
                Reply::Null,
                Reply::Array(vec![Reply::Pair(1, b"ten".to_vec())]),
            ]
        );
        // The pipeline is reusable after run().
        let mut p = c.pipeline();
        assert!(p.is_empty());
        p.get(1);
        assert_eq!(p.run().unwrap(), vec![Reply::Bulk(b"ten".to_vec())]);
        server.join();
    }

    #[test]
    fn empty_mset_is_a_noop_and_keeps_the_connection_in_sync() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        assert_eq!(c.mset(&[]).unwrap(), Vec::<bool>::new());
        // Nothing was sent, so the reply stream stays perfectly paired.
        c.ping().unwrap();
        assert!(c.set(1, b"one").unwrap());
        assert_eq!(c.get(1).unwrap(), Some(b"one".to_vec()));
        c.quit().unwrap();
        server.join();
    }

    #[test]
    fn binary_values_survive_typed_calls() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        let nasty = [0u8, b'\r', b'\n', 0xFF, b' ', 0, b'$', b'*'];
        assert!(c.set(77, &nasty).unwrap());
        assert_eq!(c.get(77).unwrap(), Some(nasty.to_vec()));
        assert_eq!(c.scan(77, 1).unwrap(), vec![(77, nasty.to_vec())]);
        c.quit().unwrap();
        server.join();
    }
}
