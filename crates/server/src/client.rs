//! A blocking client for the ASCY wire protocol, with request pipelining.
//!
//! [`Client`] offers one typed method per verb (each is a full round trip)
//! plus a [`Pipeline`] that queues any number of requests, flushes them in
//! one write, and reads the replies back in order — the protocol guarantees
//! in-order responses, so `k` pipelined requests cost one round trip
//! instead of `k`.
//!
//! Server `-ERR` replies and protocol violations surface as
//! [`std::io::Error`] with [`ErrorKind::InvalidData`] / `Other`; the
//! connection remains usable after an in-band error reply.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{encode_request, Reply, ReplyParser, Request};

/// A blocking connection to an `ascylib-server`.
pub struct Client {
    stream: TcpStream,
    parser: ReplyParser,
    chunk: Box<[u8; 16 * 1024]>,
}

fn protocol_err(what: &str) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, format!("protocol violation: {what}"))
}

fn server_err(message: String) -> io::Error {
    io::Error::other(format!("server error: {message}"))
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so unpipelined round trips do not sit
    /// out Nagle timers).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, parser: ReplyParser::new(), chunk: Box::new([0u8; 16 * 1024]) })
    }

    /// Sets a receive deadline for replies (`None` blocks forever).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Reads one complete reply frame (blocking).
    fn read_reply(&mut self) -> io::Result<Reply> {
        loop {
            match self.parser.next() {
                Some(Ok(reply)) => return Ok(reply),
                Some(Err(e)) => return Err(protocol_err(&e.to_string())),
                None => {
                    let n = self.stream.read(&mut self.chunk[..])?;
                    if n == 0 {
                        return Err(io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "server closed the connection mid-reply",
                        ));
                    }
                    self.parser.feed(&self.chunk[..n]);
                }
            }
        }
    }

    fn call(&mut self, req: &Request) -> io::Result<Reply> {
        let mut out = Vec::with_capacity(32);
        encode_request(req, &mut out);
        self.stream.write_all(&out)?;
        self.read_reply()
    }

    /// `GET key` → value if present.
    pub fn get(&mut self, key: u64) -> io::Result<Option<u64>> {
        decode_optional_int(self.call(&Request::Get(key))?)
    }

    /// `SET key value` → `true` if newly inserted (`SET` is
    /// insert-if-absent; an existing key is left untouched).
    pub fn set(&mut self, key: u64, value: u64) -> io::Result<bool> {
        decode_bool(self.call(&Request::Set(key, value))?)
    }

    /// `DEL key` → removed value if the key was present.
    pub fn del(&mut self, key: u64) -> io::Result<Option<u64>> {
        decode_optional_int(self.call(&Request::Del(key))?)
    }

    /// `MGET keys...` → per-key answers in input order.
    pub fn mget(&mut self, keys: &[u64]) -> io::Result<Vec<Option<u64>>> {
        let elems = decode_array(self.call(&Request::MGet(keys.to_vec()))?)?;
        elems.into_iter().map(decode_optional_int).collect()
    }

    /// `MSET (key value)...` → per-entry insert outcomes in input order.
    pub fn mset(&mut self, entries: &[(u64, u64)]) -> io::Result<Vec<bool>> {
        let elems = decode_array(self.call(&Request::MSet(entries.to_vec()))?)?;
        elems.into_iter().map(decode_bool).collect()
    }

    /// `SCAN from count` → up to `count` `(key, value)` pairs, ascending.
    pub fn scan(&mut self, from: u64, count: usize) -> io::Result<Vec<(u64, u64)>> {
        let elems = decode_array(self.call(&Request::Scan(from, count))?)?;
        elems.into_iter().map(decode_pair).collect()
    }

    /// `PING` → checks liveness.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Simple(s) if s == "PONG" => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// `STATS` → the server's `name=value` info line, raw.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Reply::Simple(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// `QUIT` → graceful close (waits for the server's `+BYE`).
    pub fn quit(mut self) -> io::Result<()> {
        match self.call(&Request::Quit)? {
            Reply::Simple(s) if s == "BYE" => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Starts a pipelined batch on this connection.
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline { client: self, out: Vec::with_capacity(256), queued: 0 }
    }
}

/// A queued batch of requests flushed in one write.
///
/// Queue requests with the builder methods, then [`run`](Self::run): every
/// queued frame is sent in one write and the replies come back in queue
/// order (raw [`Reply`] values — a batch may mix verbs, so decoding is the
/// caller's). Server `-ERR` replies appear in the result as
/// [`Reply::Error`] rather than failing the whole batch.
pub struct Pipeline<'a> {
    client: &'a mut Client,
    out: Vec<u8>,
    queued: usize,
}

impl Pipeline<'_> {
    /// Queues any request frame.
    pub fn push(&mut self, req: &Request) -> &mut Self {
        encode_request(req, &mut self.out);
        self.queued += 1;
        self
    }

    /// Queues `GET key`.
    pub fn get(&mut self, key: u64) -> &mut Self {
        self.push(&Request::Get(key))
    }

    /// Queues `SET key value`.
    pub fn set(&mut self, key: u64, value: u64) -> &mut Self {
        self.push(&Request::Set(key, value))
    }

    /// Queues `DEL key`.
    pub fn del(&mut self, key: u64) -> &mut Self {
        self.push(&Request::Del(key))
    }

    /// Queues `SCAN from count`.
    pub fn scan(&mut self, from: u64, count: usize) -> &mut Self {
        self.push(&Request::Scan(from, count))
    }

    /// Number of queued frames.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Sends every queued frame in one write and reads the replies back in
    /// order.
    pub fn run(&mut self) -> io::Result<Vec<Reply>> {
        if self.queued == 0 {
            return Ok(Vec::new());
        }
        self.client.stream.write_all(&self.out)?;
        let mut replies = Vec::with_capacity(self.queued);
        for _ in 0..self.queued {
            replies.push(self.client.read_reply()?);
        }
        self.out.clear();
        self.queued = 0;
        Ok(replies)
    }
}

fn unexpected(reply: Reply) -> io::Error {
    match reply {
        Reply::Error(msg) => server_err(msg),
        other => protocol_err(&format!("unexpected reply {other:?}")),
    }
}

/// Decodes `:v` / `_` replies (`GET`/`DEL` and `MGET` elements).
pub fn decode_optional_int(reply: Reply) -> io::Result<Option<u64>> {
    match reply {
        Reply::Int(v) => Ok(Some(v)),
        Reply::Null => Ok(None),
        other => Err(unexpected(other)),
    }
}

/// Decodes `:0` / `:1` outcome replies (`SET` and `MSET` elements).
pub fn decode_bool(reply: Reply) -> io::Result<bool> {
    match reply {
        Reply::Int(0) => Ok(false),
        Reply::Int(1) => Ok(true),
        other => Err(unexpected(other)),
    }
}

/// Decodes `=k v` pair replies (`SCAN` elements).
pub fn decode_pair(reply: Reply) -> io::Result<(u64, u64)> {
    match reply {
        Reply::Pair(k, v) => Ok((k, v)),
        other => Err(unexpected(other)),
    }
}

/// Decodes an array reply into its elements.
pub fn decode_array(reply: Reply) -> io::Result<Vec<Reply>> {
    match reply {
        Reply::Array(elems) => Ok(elems),
        other => Err(unexpected(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::store::ShardedOrderedStore;
    use ascylib::list::HarrisList;
    use ascylib_shard::ShardedMap;
    use std::sync::Arc;

    fn ordered_server() -> crate::server::ServerHandle {
        let map = Arc::new(ShardedMap::new(2, |_| HarrisList::new()));
        Server::start("127.0.0.1:0", ShardedOrderedStore::new(map), ServerConfig::default())
            .expect("bind ephemeral")
    }

    #[test]
    fn typed_calls_round_trip() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        c.ping().unwrap();
        assert!(c.set(10, 100).unwrap());
        assert!(!c.set(10, 999).unwrap());
        assert_eq!(c.get(10).unwrap(), Some(100));
        assert_eq!(c.get(11).unwrap(), None);
        assert_eq!(c.mset(&[(12, 120), (13, 130)]).unwrap(), vec![true, true]);
        assert_eq!(
            c.mget(&[10, 11, 12, 13]).unwrap(),
            vec![Some(100), None, Some(120), Some(130)]
        );
        assert_eq!(c.scan(11, 10).unwrap(), vec![(12, 120), (13, 130)]);
        assert_eq!(c.del(12).unwrap(), Some(120));
        assert_eq!(c.del(12).unwrap(), None);
        let stats = c.stats().unwrap();
        assert!(stats.contains("size=2"), "{stats}");
        assert!(stats.contains("shards=2"), "{stats}");
        c.quit().unwrap();
        server.join();
    }

    #[test]
    fn server_errors_are_io_errors_but_keep_the_connection() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        let err = c.get(0).unwrap_err();
        assert!(err.to_string().contains("key out of usable range"), "{err}");
        // In-band error: the connection still works.
        c.ping().unwrap();
        assert!(c.set(5, 50).unwrap());
        server.join();
    }

    #[test]
    fn pipeline_returns_replies_in_order() {
        let server = ordered_server();
        let mut c = Client::connect(server.addr()).unwrap();
        let mut p = c.pipeline();
        p.set(1, 10).set(2, 20).get(1).del(2).get(2).scan(1, 4);
        assert_eq!(p.len(), 6);
        let replies = p.run().unwrap();
        assert_eq!(
            replies,
            vec![
                Reply::Int(1),
                Reply::Int(1),
                Reply::Int(10),
                Reply::Int(20),
                Reply::Null,
                Reply::Array(vec![Reply::Pair(1, 10)]),
            ]
        );
        // The pipeline is reusable after run().
        let mut p = c.pipeline();
        assert!(p.is_empty());
        p.get(1);
        assert_eq!(p.run().unwrap(), vec![Reply::Int(10)]);
        server.join();
    }
}
