//! The ASCY wire protocol: a compact RESP-like text frame codec.
//!
//! # Requests
//!
//! A request frame is one ASCII line: a verb, zero or more decimal `u64`
//! arguments separated by single spaces, terminated by `\r\n` (a bare `\n`
//! is accepted for hand-driven sessions):
//!
//! ```text
//! GET <key>            SET <key> <value>        DEL <key>
//! MGET <key>...        MSET <key> <value>...    SCAN <from> <count>
//! PING                 STATS                    QUIT
//! ```
//!
//! # Replies
//!
//! One line per reply, except arrays which are a `*<n>` header line followed
//! by `n` element lines:
//!
//! ```text
//! +<text>      simple string (`+OK`, `+PONG`, `+BYE`, STATS info line)
//! :<u64>       integer (GET/DEL hit value, SET outcome 0/1)
//! _            null (GET/DEL miss)
//! =<k> <v>     one key-value pair (SCAN elements)
//! *<n>         array header (MGET/MSET/SCAN replies)
//! -ERR <msg>   error frame (malformed request, unsupported operation)
//! ```
//!
//! # Incremental parsing
//!
//! Both directions are parsed by *push* parsers ([`RequestParser`],
//! [`ReplyParser`]) that accept arbitrarily split byte chunks (a frame may
//! arrive one byte at a time, or fifty frames may arrive in one read).
//! Malformed input yields an error item — never a panic — and the parser
//! resynchronizes at the next line boundary, so one bad frame costs exactly
//! one error reply and the connection keeps working. See `PROTOCOL.md` at
//! the repository root for the full grammar and pipelining rules.

use std::fmt;

/// Longest accepted line (bytes, excluding the terminator). Bounds both
/// parser memory and the damage an unterminated frame can do; a run of
/// more than this many bytes without a newline is discarded up to the next
/// newline and reported as one [`ParseError::Oversize`]. Sized so that the
/// worst legal frame — `MGET`/`MSET` with [`MAX_ARGS`] twenty-digit
/// arguments, ~21.5 KiB — fits with room to spare (the argument cap binds
/// before the line cap does).
pub const MAX_LINE: usize = 32 * 1024;

/// Most arguments accepted in one `MGET`/`MSET` frame (keys the shard
/// layer's batched dispatch is visited with at once).
pub const MAX_ARGS: usize = 1024;

/// Largest `SCAN` count a server will honour per frame; larger cursors must
/// iterate.
pub const MAX_SCAN: usize = 4096;

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `GET key` — point lookup.
    Get(u64),
    /// `SET key value` — insert-if-absent (the store is a concurrent *set*
    /// of keyed elements; an existing key is left untouched and reported).
    Set(u64, u64),
    /// `DEL key` — remove, returning the removed value.
    Del(u64),
    /// `MGET key...` — batched lookup, answered in input order.
    MGet(Vec<u64>),
    /// `MSET (key value)...` — batched insert-if-absent, answered in input
    /// order.
    MSet(Vec<(u64, u64)>),
    /// `SCAN from count` — up to `count` elements with key `>= from`, in
    /// ascending key order (requires an ordered store).
    Scan(u64, usize),
    /// `PING` — liveness probe.
    Ping,
    /// `STATS` — one info line of `name=value` tokens.
    Stats,
    /// `QUIT` — graceful close: the server replies `+BYE`, flushes, and
    /// closes the connection.
    Quit,
}

/// Why a frame was rejected. The `Display` text is what the server sends
/// back in the `-ERR` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An empty line (no verb).
    Empty,
    /// The line exceeded [`MAX_LINE`] bytes.
    Oversize,
    /// The line contained a NUL, another control byte, or a non-ASCII byte.
    IllegalByte,
    /// The verb is not part of the protocol.
    UnknownVerb,
    /// Known verb, wrong number of arguments.
    Arity(&'static str),
    /// An argument was not a decimal `u64` (empty token, stray characters,
    /// or overflow).
    BadNumber,
    /// An `MGET`/`MSET` carried more than [`MAX_ARGS`] arguments.
    TooManyArgs,
    /// A `SCAN` count exceeded [`MAX_SCAN`].
    ScanTooLarge,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty frame"),
            ParseError::Oversize => write!(f, "frame exceeds {MAX_LINE} bytes"),
            ParseError::IllegalByte => write!(f, "illegal byte in frame"),
            ParseError::UnknownVerb => write!(f, "unknown verb"),
            ParseError::Arity(usage) => write!(f, "wrong arity, usage: {usage}"),
            ParseError::BadNumber => write!(f, "argument is not a decimal u64"),
            ParseError::TooManyArgs => write!(f, "more than {MAX_ARGS} arguments"),
            ParseError::ScanTooLarge => write!(f, "scan count exceeds {MAX_SCAN}"),
        }
    }
}

/// Shared line-splitting core of the two push parsers: buffers fed bytes,
/// yields complete lines (terminator stripped), discards oversize runs up to
/// the next newline.
#[derive(Debug, Default)]
struct LineBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily so feeding is O(bytes)).
    start: usize,
    /// Set after an oversize run: discard up to the next newline before
    /// resuming normal parsing.
    discarding: bool,
}

/// One item from [`LineBuffer::next_line`].
enum Line {
    /// No complete line buffered; feed more bytes.
    Pending,
    /// A complete line (without its `\n` / `\r\n` terminator). The range is
    /// an index pair into the internal buffer — borrow immediately.
    Complete(usize, usize),
    /// An oversize run was discarded (either the run found its newline, or
    /// the whole buffer was dropped while waiting for one).
    Oversize,
}

impl LineBuffer {
    fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is dead.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn next_line(&mut self) -> Line {
        if self.discarding {
            match self.buf[self.start..].iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    self.start += nl + 1;
                    self.discarding = false;
                    // The error for this run was already reported when the
                    // discard began; continue with the next line silently.
                }
                None => {
                    self.buf.clear();
                    self.start = 0;
                    return Line::Pending;
                }
            }
        }
        let pending = &self.buf[self.start..];
        match pending.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let mut end = self.start + nl;
                let line_start = self.start;
                self.start += nl + 1;
                if end > line_start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                if end - line_start > MAX_LINE {
                    // Terminated, but too long: the newline already
                    // resynchronized us.
                    Line::Oversize
                } else {
                    Line::Complete(line_start, end)
                }
            }
            None => {
                // `+ 1`: a maximal legal line may sit in the buffer with its
                // `\r` but not yet its `\n`. Declaring that oversize would
                // make accept/reject depend on where the read boundary fell.
                if pending.len() > MAX_LINE + 1 {
                    // Unterminated and already too long: drop what we have
                    // and keep discarding until a newline shows up.
                    self.buf.clear();
                    self.start = 0;
                    self.discarding = true;
                    Line::Oversize
                } else {
                    Line::Pending
                }
            }
        }
    }
}

/// Incremental request parser (server side).
///
/// Feed raw socket bytes with [`feed`](Self::feed), then drain complete
/// frames with [`next`](Self::next). `Err` items are per-frame: the parser
/// has already resynchronized past the offending line and the following
/// frames parse normally.
#[derive(Debug, Default)]
pub struct RequestParser {
    lines: LineBuffer,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes (any split: partial frames, many frames, …).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.lines.feed(bytes);
    }

    /// Next complete frame, a per-frame error, or `None` when more bytes are
    /// needed.
    //
    // Not an `Iterator`: `None` means "pending, feed more", not exhaustion —
    // iterator adapters (collect, for-loops) would silently truncate streams.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Request, ParseError>> {
        match self.lines.next_line() {
            Line::Pending => None,
            Line::Oversize => Some(Err(ParseError::Oversize)),
            // The &mut borrow from next_line() ends at the indices, so the
            // line can be parsed straight out of the buffer, no copy.
            Line::Complete(start, end) => Some(parse_request_line(&self.lines.buf[start..end])),
        }
    }
}

/// Checks the line is printable ASCII and returns it as `&str`.
fn ascii_line(line: &[u8]) -> Result<&str, ParseError> {
    if line.iter().any(|&b| !(0x20..=0x7E).contains(&b)) {
        return Err(ParseError::IllegalByte);
    }
    // Printable ASCII is valid UTF-8.
    Ok(std::str::from_utf8(line).expect("ascii checked"))
}

fn parse_u64(token: &str) -> Result<u64, ParseError> {
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseError::BadNumber);
    }
    token.parse().map_err(|_| ParseError::BadNumber)
}

fn parse_request_line(line: &[u8]) -> Result<Request, ParseError> {
    let line = ascii_line(line)?;
    if line.is_empty() {
        return Err(ParseError::Empty);
    }
    let mut tokens = line.split(' ');
    let verb = tokens.next().expect("split yields at least one token");
    let args: Vec<&str> = tokens.collect();
    if args.len() > MAX_ARGS {
        return Err(ParseError::TooManyArgs);
    }
    let arity = |n: usize, usage: &'static str| {
        if args.len() == n {
            Ok(())
        } else {
            Err(ParseError::Arity(usage))
        }
    };
    match verb {
        "GET" => {
            arity(1, "GET <key>")?;
            Ok(Request::Get(parse_u64(args[0])?))
        }
        "SET" => {
            arity(2, "SET <key> <value>")?;
            Ok(Request::Set(parse_u64(args[0])?, parse_u64(args[1])?))
        }
        "DEL" => {
            arity(1, "DEL <key>")?;
            Ok(Request::Del(parse_u64(args[0])?))
        }
        "MGET" => {
            if args.is_empty() {
                return Err(ParseError::Arity("MGET <key>..."));
            }
            let keys = args.iter().map(|t| parse_u64(t)).collect::<Result<Vec<_>, _>>()?;
            Ok(Request::MGet(keys))
        }
        "MSET" => {
            if args.is_empty() || args.len() % 2 != 0 {
                return Err(ParseError::Arity("MSET (<key> <value>)..."));
            }
            let entries = args
                .chunks_exact(2)
                .map(|kv| Ok((parse_u64(kv[0])?, parse_u64(kv[1])?)))
                .collect::<Result<Vec<_>, ParseError>>()?;
            Ok(Request::MSet(entries))
        }
        "SCAN" => {
            arity(2, "SCAN <from> <count>")?;
            let from = parse_u64(args[0])?;
            let count = parse_u64(args[1])?;
            if count > MAX_SCAN as u64 {
                return Err(ParseError::ScanTooLarge);
            }
            Ok(Request::Scan(from, count as usize))
        }
        "PING" => {
            arity(0, "PING")?;
            Ok(Request::Ping)
        }
        "STATS" => {
            arity(0, "STATS")?;
            Ok(Request::Stats)
        }
        "QUIT" => {
            arity(0, "QUIT")?;
            Ok(Request::Quit)
        }
        _ => Err(ParseError::UnknownVerb),
    }
}

/// Encodes one request frame onto a byte buffer (the client side of the
/// codec; [`RequestParser`] is its inverse).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    use std::io::Write as _;
    match req {
        Request::Get(k) => write!(out, "GET {k}\r\n"),
        Request::Set(k, v) => write!(out, "SET {k} {v}\r\n"),
        Request::Del(k) => write!(out, "DEL {k}\r\n"),
        Request::MGet(keys) => {
            out.extend_from_slice(b"MGET");
            for k in keys {
                write!(out, " {k}").expect("vec write");
            }
            out.extend_from_slice(b"\r\n");
            Ok(())
        }
        Request::MSet(entries) => {
            out.extend_from_slice(b"MSET");
            for (k, v) in entries {
                write!(out, " {k} {v}").expect("vec write");
            }
            out.extend_from_slice(b"\r\n");
            Ok(())
        }
        Request::Scan(from, n) => write!(out, "SCAN {from} {n}\r\n"),
        Request::Ping => write!(out, "PING\r\n"),
        Request::Stats => write!(out, "STATS\r\n"),
        Request::Quit => write!(out, "QUIT\r\n"),
    }
    .expect("writing to a Vec cannot fail")
}

/// One parsed reply frame (arrays are one level deep by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+text` — simple string.
    Simple(String),
    /// `:n` — integer.
    Int(u64),
    /// `_` — null (miss).
    Null,
    /// `=k v` — one key-value pair.
    Pair(u64, u64),
    /// `*n` header plus `n` scalar elements.
    Array(Vec<Reply>),
    /// `-ERR message`.
    Error(String),
}

/// Reply-side wire writers, used by the server's connection loop (and by
/// tests to fabricate server output). Each writes one complete frame.
pub mod wire {
    use std::io::Write as _;

    /// `+text` simple string frame.
    pub fn simple(out: &mut Vec<u8>, text: &str) {
        debug_assert!(text.bytes().all(|b| (0x20..=0x7E).contains(&b)));
        write!(out, "+{text}\r\n").expect("vec write");
    }

    /// `:n` integer frame.
    pub fn int(out: &mut Vec<u8>, n: u64) {
        write!(out, ":{n}\r\n").expect("vec write");
    }

    /// `_` null frame.
    pub fn null(out: &mut Vec<u8>) {
        out.extend_from_slice(b"_\r\n");
    }

    /// `=k v` pair frame.
    pub fn pair(out: &mut Vec<u8>, k: u64, v: u64) {
        write!(out, "={k} {v}\r\n").expect("vec write");
    }

    /// `*n` array header (followed by `n` scalar frames the caller writes).
    pub fn array_header(out: &mut Vec<u8>, n: usize) {
        write!(out, "*{n}\r\n").expect("vec write");
    }

    /// `-ERR message` error frame.
    pub fn error(out: &mut Vec<u8>, message: &str) {
        let clean: String =
            message.chars().map(|c| if ('\u{20}'..='\u{7E}').contains(&c) { c } else { '?' }).collect();
        write!(out, "-ERR {clean}\r\n").expect("vec write");
    }
}

/// Largest reply array a client will accept (defensively above the largest
/// array a conforming server can produce, `MAX_SCAN`).
pub const MAX_REPLY_ARRAY: usize = MAX_SCAN * 2;

/// Incremental reply parser (client side). Same push discipline as
/// [`RequestParser`]; array replies are assembled across chunk boundaries.
#[derive(Debug, Default)]
pub struct ReplyParser {
    lines: LineBuffer,
    /// In-flight array: remaining element count and the collected elements.
    partial: Option<(usize, Vec<Reply>)>,
}

impl ReplyParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the server.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.lines.feed(bytes);
    }

    /// Next complete reply (arrays are returned whole), a per-frame error,
    /// or `None` when more bytes are needed.
    ///
    /// Protocol violations (oversize lines, malformed frames, array headers
    /// inside arrays) surface as `Err`; the parser resynchronizes at the
    /// next line, dropping any half-assembled array.
    //
    // Not an `Iterator` for the same reason as `RequestParser::next`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Reply, ParseError>> {
        loop {
            let item = match self.lines.next_line() {
                Line::Pending => return None,
                Line::Oversize => {
                    self.partial = None;
                    return Some(Err(ParseError::Oversize));
                }
                // As in `RequestParser::next`: parse in place, no copy.
                Line::Complete(start, end) => match parse_reply_line(&self.lines.buf[start..end]) {
                    Err(e) => {
                        self.partial = None;
                        return Some(Err(e));
                    }
                    Ok(item) => item,
                },
            };
            match (item, self.partial.take()) {
                // Array header outside an array: start collecting.
                (ReplyLine::ArrayHeader(0), None) => return Some(Ok(Reply::Array(Vec::new()))),
                (ReplyLine::ArrayHeader(n), None) => {
                    self.partial = Some((n, Vec::with_capacity(n.min(64))));
                }
                // Array header inside an array: nesting is not part of the
                // protocol.
                (ReplyLine::ArrayHeader(_), Some(_)) => {
                    return Some(Err(ParseError::UnknownVerb));
                }
                (ReplyLine::Scalar(r), None) => return Some(Ok(r)),
                (ReplyLine::Scalar(r), Some((remaining, mut elems))) => {
                    elems.push(r);
                    if remaining == 1 {
                        return Some(Ok(Reply::Array(elems)));
                    }
                    self.partial = Some((remaining - 1, elems));
                }
            }
        }
    }
}

enum ReplyLine {
    Scalar(Reply),
    ArrayHeader(usize),
}

fn parse_reply_line(line: &[u8]) -> Result<ReplyLine, ParseError> {
    let line = ascii_line(line)?;
    let Some(first) = line.chars().next() else {
        return Err(ParseError::Empty);
    };
    let rest = &line[1..];
    match first {
        '+' => Ok(ReplyLine::Scalar(Reply::Simple(rest.to_string()))),
        ':' => Ok(ReplyLine::Scalar(Reply::Int(parse_u64(rest)?))),
        '_' => {
            if rest.is_empty() {
                Ok(ReplyLine::Scalar(Reply::Null))
            } else {
                Err(ParseError::BadNumber)
            }
        }
        '=' => {
            let (k, v) = rest.split_once(' ').ok_or(ParseError::Arity("=<key> <value>"))?;
            Ok(ReplyLine::Scalar(Reply::Pair(parse_u64(k)?, parse_u64(v)?)))
        }
        '*' => {
            let n = parse_u64(rest)?;
            if n > MAX_REPLY_ARRAY as u64 {
                return Err(ParseError::TooManyArgs);
            }
            Ok(ReplyLine::ArrayHeader(n as usize))
        }
        '-' => {
            let msg = rest.strip_prefix("ERR ").unwrap_or(rest);
            Ok(ReplyLine::Scalar(Reply::Error(msg.to_string())))
        }
        _ => Err(ParseError::UnknownVerb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Vec<Result<Request, ParseError>> {
        let mut p = RequestParser::new();
        p.feed(bytes);
        let mut out = Vec::new();
        while let Some(item) = p.next() {
            out.push(item);
        }
        out
    }

    #[test]
    fn parses_every_verb() {
        let stream = b"GET 1\r\nSET 2 20\r\nDEL 3\r\nMGET 4 5 6\r\nMSET 7 70 8 80\r\nSCAN 9 16\r\nPING\r\nSTATS\r\nQUIT\r\n";
        let got = parse_all(stream);
        assert_eq!(
            got,
            vec![
                Ok(Request::Get(1)),
                Ok(Request::Set(2, 20)),
                Ok(Request::Del(3)),
                Ok(Request::MGet(vec![4, 5, 6])),
                Ok(Request::MSet(vec![(7, 70), (8, 80)])),
                Ok(Request::Scan(9, 16)),
                Ok(Request::Ping),
                Ok(Request::Stats),
                Ok(Request::Quit),
            ]
        );
    }

    #[test]
    fn bare_newline_is_accepted() {
        assert_eq!(parse_all(b"PING\nGET 7\n"), vec![Ok(Request::Ping), Ok(Request::Get(7))]);
    }

    #[test]
    fn split_reads_reassemble() {
        let stream = b"SET 123 456\r\nGET 123\r\n";
        for split in 0..stream.len() {
            let mut p = RequestParser::new();
            p.feed(&stream[..split]);
            let mut got = Vec::new();
            while let Some(item) = p.next() {
                got.push(item);
            }
            p.feed(&stream[split..]);
            while let Some(item) = p.next() {
                got.push(item);
            }
            assert_eq!(
                got,
                vec![Ok(Request::Set(123, 456)), Ok(Request::Get(123))],
                "split at {split}"
            );
        }
    }

    #[test]
    fn malformed_frames_error_and_resynchronize() {
        let cases: &[(&[u8], ParseError)] = &[
            (b"\r\n", ParseError::Empty),
            (b"NOPE 1\r\n", ParseError::UnknownVerb),
            (b"get 1\r\n", ParseError::UnknownVerb),
            (b"GET\r\n", ParseError::Arity("GET <key>")),
            (b"GET 1 2\r\n", ParseError::Arity("GET <key>")),
            (b"SET 1\r\n", ParseError::Arity("SET <key> <value>")),
            (b"GET x\r\n", ParseError::BadNumber),
            // Double space: the empty token counts toward arity.
            (b"GET  1\r\n", ParseError::Arity("GET <key>")),
            (b"GET 18446744073709551616\r\n", ParseError::BadNumber),
            (b"GET -1\r\n", ParseError::BadNumber),
            (b"MSET 1\r\n", ParseError::Arity("MSET (<key> <value>)...")),
            (b"MGET\r\n", ParseError::Arity("MGET <key>...")),
            (b"SCAN 1 999999\r\n", ParseError::ScanTooLarge),
            (b"GET \x001\r\n", ParseError::IllegalByte),
            (b"G\xc3\x89T 1\r\n", ParseError::IllegalByte),
        ];
        for (bytes, want) in cases {
            let mut stream = bytes.to_vec();
            stream.extend_from_slice(b"PING\r\n");
            let got = parse_all(&stream);
            assert_eq!(
                got,
                vec![Err(want.clone()), Ok(Request::Ping)],
                "input {:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn oversize_terminated_line_is_one_error() {
        let mut stream = vec![b'A'; MAX_LINE + 10];
        stream.extend_from_slice(b"\r\nPING\r\n");
        assert_eq!(parse_all(&stream), vec![Err(ParseError::Oversize), Ok(Request::Ping)]);
    }

    #[test]
    fn oversize_unterminated_run_reports_once_then_resynchronizes() {
        let mut p = RequestParser::new();
        p.feed(&vec![b'B'; MAX_LINE + 2]);
        assert_eq!(p.next(), Some(Err(ParseError::Oversize)));
        // Still mid-run: more garbage arrives, silently discarded.
        p.feed(&vec![b'B'; 3 * MAX_LINE]);
        assert_eq!(p.next(), None);
        p.feed(b"tail\nPING\r\n");
        assert_eq!(p.next(), Some(Ok(Request::Ping)));
        assert_eq!(p.next(), None);
    }

    #[test]
    fn maximal_line_verdict_does_not_depend_on_read_boundaries() {
        // A line of exactly MAX_LINE bytes must get the same (non-Oversize)
        // verdict whether its CRLF arrives in the same read or split after
        // the `\r` — the buffered `\r` must not push the run over the cap.
        let mut whole = vec![b'A'; MAX_LINE];
        whole.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&whole), vec![Err(ParseError::UnknownVerb)]);

        let mut p = RequestParser::new();
        p.feed(&whole[..MAX_LINE + 1]); // content + '\r', no '\n' yet
        assert_eq!(p.next(), None, "pending, not oversize");
        p.feed(b"\n");
        assert_eq!(p.next(), Some(Err(ParseError::UnknownVerb)));
        // One byte more of content *is* oversize, terminated or not.
        let mut over = vec![b'A'; MAX_LINE + 1];
        over.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&over), vec![Err(ParseError::Oversize)]);
    }

    #[test]
    fn the_worst_legal_batch_frame_fits_under_the_line_cap() {
        // MAX_ARGS twenty-digit arguments must be limited by the argument
        // cap, not silently by MAX_LINE (a conforming client batching at
        // the documented limit must get answers, not Oversize).
        let key = u64::MAX - 1; // 20 digits
        let keys = vec![key; MAX_ARGS];
        let mut bytes = Vec::new();
        encode_request(&Request::MGet(keys.clone()), &mut bytes);
        assert!(bytes.len() <= MAX_LINE, "worst MGET is {} bytes", bytes.len());
        assert_eq!(parse_all(&bytes), vec![Ok(Request::MGet(keys))]);
        let entries = vec![(key, key); MAX_ARGS / 2]; // MAX_ARGS args total
        let mut bytes = Vec::new();
        encode_request(&Request::MSet(entries.clone()), &mut bytes);
        assert!(bytes.len() <= MAX_LINE, "worst MSET is {} bytes", bytes.len());
        assert_eq!(parse_all(&bytes), vec![Ok(Request::MSet(entries))]);
    }

    #[test]
    fn too_many_args_is_rejected() {
        let mut line = b"MGET".to_vec();
        for i in 0..(MAX_ARGS + 1) {
            line.extend_from_slice(format!(" {i}").as_bytes());
        }
        line.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&line), vec![Err(ParseError::TooManyArgs)]);
    }

    #[test]
    fn request_encoding_round_trips() {
        let reqs = vec![
            Request::Get(7),
            Request::Set(1, u64::MAX),
            Request::Del(0),
            Request::MGet(vec![9, 9, 8]),
            Request::MSet(vec![(1, 2), (3, 4)]),
            Request::Scan(5, MAX_SCAN),
            Request::Ping,
            Request::Stats,
            Request::Quit,
        ];
        let mut bytes = Vec::new();
        for r in &reqs {
            encode_request(r, &mut bytes);
        }
        let got: Vec<Request> = parse_all(&bytes).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, reqs);
    }

    fn parse_replies(bytes: &[u8]) -> Vec<Result<Reply, ParseError>> {
        let mut p = ReplyParser::new();
        p.feed(bytes);
        let mut out = Vec::new();
        while let Some(item) = p.next() {
            out.push(item);
        }
        out
    }

    #[test]
    fn reply_frames_parse() {
        let stream = b"+OK\r\n:42\r\n_\r\n=3 30\r\n-ERR boom\r\n*2\r\n:1\r\n_\r\n*0\r\n";
        assert_eq!(
            parse_replies(stream),
            vec![
                Ok(Reply::Simple("OK".into())),
                Ok(Reply::Int(42)),
                Ok(Reply::Null),
                Ok(Reply::Pair(3, 30)),
                Ok(Reply::Error("boom".into())),
                Ok(Reply::Array(vec![Reply::Int(1), Reply::Null])),
                Ok(Reply::Array(vec![])),
            ]
        );
    }

    #[test]
    fn reply_arrays_assemble_across_splits() {
        let stream = b"*3\r\n=1 10\r\n=2 20\r\n=3 30\r\n+OK\r\n";
        for split in 0..stream.len() {
            let mut p = ReplyParser::new();
            p.feed(&stream[..split]);
            let mut got = Vec::new();
            while let Some(item) = p.next() {
                got.push(item);
            }
            p.feed(&stream[split..]);
            while let Some(item) = p.next() {
                got.push(item);
            }
            assert_eq!(
                got,
                vec![
                    Ok(Reply::Array(vec![
                        Reply::Pair(1, 10),
                        Reply::Pair(2, 20),
                        Reply::Pair(3, 30)
                    ])),
                    Ok(Reply::Simple("OK".into())),
                ],
                "split at {split}"
            );
        }
    }

    #[test]
    fn reply_parser_rejects_nested_arrays_and_huge_headers() {
        assert_eq!(
            parse_replies(b"*2\r\n*1\r\n:1\r\n"),
            vec![Err(ParseError::UnknownVerb), Ok(Reply::Int(1))],
            "a nested header drops the partial array and resynchronizes"
        );
        let huge = format!("*{}\r\n", MAX_REPLY_ARRAY + 1);
        assert_eq!(parse_replies(huge.as_bytes()), vec![Err(ParseError::TooManyArgs)]);
    }

    #[test]
    fn wire_writers_emit_parseable_frames() {
        let mut out = Vec::new();
        wire::simple(&mut out, "PONG");
        wire::int(&mut out, 5);
        wire::null(&mut out);
        wire::array_header(&mut out, 1);
        wire::pair(&mut out, 2, 4);
        wire::error(&mut out, "bad\r\nthing");
        assert_eq!(
            parse_replies(&out),
            vec![
                Ok(Reply::Simple("PONG".into())),
                Ok(Reply::Int(5)),
                Ok(Reply::Null),
                Ok(Reply::Array(vec![Reply::Pair(2, 4)])),
                Ok(Reply::Error("bad??thing".into())),
            ]
        );
    }

    #[test]
    fn error_display_messages_are_stable() {
        assert_eq!(ParseError::Empty.to_string(), "empty frame");
        assert!(ParseError::Oversize.to_string().contains("bytes"));
        assert!(ParseError::Arity("GET <key>").to_string().contains("GET <key>"));
    }
}
