//! The ASCY wire protocol (version 2): a compact RESP-like codec with
//! binary-safe bulk values.
//!
//! # Requests
//!
//! Header lines are ASCII — a verb, decimal `u64` arguments separated by
//! single spaces, terminated by `\r\n` (bare `\n` accepted). Verbs that
//! carry values announce the payload length in the header and follow it
//! with exactly that many raw bytes (any bytes — NUL and newlines
//! included) plus one line terminator:
//!
//! ```text
//! GET <key>                          DEL <key>
//! SET <key> <len> [EX <secs>]\r\n<bytes>\r\n     MGET <key>...
//! MSET <k1> <l1> ... <kn> <ln>\r\n<bytes1>...<bytesn>\r\n
//! EXPIRE <key> <secs>                TTL <key>   PERSIST <key>
//! SCAN <from> <count>                PING   STATS   QUIT
//! INFO [section]                     SLOWLOG GET|RESET|LEN    METRICS
//! ```
//!
//! # Replies
//!
//! ```text
//! +<text>                  simple string (`+OK`, `+PONG`, `+BYE`, STATS)
//! :<u64>                   integer (SET/DEL outcomes 0/1, MSET elements)
//! _                        null (GET/MGET miss)
//! $<len>\r\n<bytes>\r\n    bulk value (GET hit, MGET elements)
//! =<k> <len>\r\n<bytes>\r\n  one key-value pair (SCAN elements)
//! *<n>                     array header (MGET/MSET/SCAN replies)
//! -ERR <msg>               error frame
//! ```
//!
//! # Incremental parsing
//!
//! Both directions are parsed by *push* parsers ([`RequestParser`],
//! [`ReplyParser`]) that accept arbitrarily split byte chunks. Malformed
//! input yields an error item — never a panic. Resynchronization: after a
//! malformed *header* line the parser resumes at the next newline; a frame
//! whose declared payload exceeds the value cap is answered with one error
//! and its claimed payload is discarded (bounded by the cap itself), so a
//! conforming pipeline keeps its request/reply pairing even across a
//! rejected value. See `PROTOCOL.md` at the repository root.

use std::fmt;

/// Longest accepted header line (bytes, excluding the terminator). Bulk
/// payload bytes are not lines and are bounded separately by
/// [`MAX_VALUE`] / [`MAX_BATCH_PAYLOAD`]. Sized so that the worst legal
/// header — `MSET` with [`MAX_ARGS`] twenty-digit arguments, ~21.5 KiB —
/// fits with room to spare (the argument cap binds before the line cap).
pub const MAX_LINE: usize = 32 * 1024;

/// Most arguments accepted in one `MGET`/`MSET` header (for `MSET` that is
/// [`MAX_ARGS`]`/2` key-value pairs).
pub const MAX_ARGS: usize = 1024;

/// Largest `SCAN` count a server will honour per frame; larger cursors must
/// iterate.
pub const MAX_SCAN: usize = 4096;

/// Largest single value payload (bytes). A `SET` (or `MSET` element, or a
/// reply bulk) declaring more is rejected with an in-band error; the
/// declared payload is discarded — at most this many bytes plus a
/// terminator — before the parser resynchronizes.
pub const MAX_VALUE: usize = 64 * 1024;

/// Largest total payload of one `MSET` frame (bytes across all values):
/// bounds per-connection parser memory.
pub const MAX_BATCH_PAYLOAD: usize = 1024 * 1024;

/// Soft cap on the total payload bytes of one `SCAN` reply (the outbound
/// analogue of [`MAX_BATCH_PAYLOAD`]): a scan stops early once its copied
/// values reach this budget (exceeding it by at most one value), so a
/// keyspace of maximum-size values cannot make one frame materialize
/// hundreds of megabytes server-side. Clients page exactly as with the
/// count cap: continue from the last returned key + 1.
pub const MAX_SCAN_REPLY_PAYLOAD: usize = 4 * 1024 * 1024;

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `GET key` — point lookup, answered with a bulk value or null.
    Get(u64),
    /// `SET key <len> + payload` — **upsert**: stores the value, replacing
    /// any previous one (reply `:1` created / `:0` replaced).
    Set(u64, Vec<u8>),
    /// `SET key <len> EX <secs> + payload` — upsert with a relative
    /// expiry: the value disappears `secs` seconds after the store (reply
    /// as `SET`). Requires a cache-enabled store.
    SetEx(u64, Vec<u8>, u64),
    /// `EXPIRE key <secs>` — set the expiry of an existing live key to
    /// `secs` seconds from now (reply `:1` applied / `:0` missing or
    /// already expired).
    Expire(u64, u64),
    /// `TTL key` — remaining lifetime: `:n` seconds (rounded up), `+none`
    /// for a live key without an expiry, null for a missing key.
    Ttl(u64),
    /// `PERSIST key` — clear any expiry (reply `:1` key was live / `:0`
    /// missing or already expired).
    Persist(u64),
    /// `DEL key` — remove (reply `:1` removed / `:0` miss).
    Del(u64),
    /// `MGET key...` — batched lookup, answered in input order.
    MGet(Vec<u64>),
    /// `MSET (key len)... + payloads` — batched upsert, outcomes in input
    /// order.
    MSet(Vec<(u64, Vec<u8>)>),
    /// `SCAN from count` — up to `count` pairs with key `>= from`, in
    /// ascending key order (requires an ordered store).
    Scan(u64, usize),
    /// `PING` — liveness probe.
    Ping,
    /// `STATS` — one info line of `name=value` tokens.
    Stats,
    /// `INFO [section]` — multi-line report (bulk reply). `None` means all
    /// sections; the section name is lowercased by the parser and validated
    /// by the executor (so unknown sections get a semantic error, not a
    /// parse error).
    Info(Option<String>),
    /// `SLOWLOG GET|RESET|LEN` — inspect, clear, or count the slow-op log.
    Slowlog(SlowlogCmd),
    /// `METRICS` — Prometheus text exposition (bulk reply).
    Metrics,
    /// `MONITOR [sample_n]` — subscribe this connection to the live trace
    /// stream: after the `+OK`, the server pushes one simple-string event
    /// line per sampled request (every `sample_n`-th eligible event;
    /// default and minimum 1). The only verb after which the server
    /// volunteers frames; see PROTOCOL.md for the event format and the
    /// slow-consumer drop/eviction semantics.
    Monitor(Option<u64>),
    /// `QUIT` — graceful close: the server replies `+BYE`, flushes, and
    /// closes the connection.
    Quit,
}

/// The `SLOWLOG` subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowlogCmd {
    /// `SLOWLOG GET` — the captured entries, newest first (bulk reply).
    Get,
    /// `SLOWLOG RESET` — clear every worker's ring (`+OK`).
    Reset,
    /// `SLOWLOG LEN` — total entries currently held (integer reply).
    Len,
}

/// Why a frame was rejected. The `Display` text is what the server sends
/// back in the `-ERR` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An empty line (no verb).
    Empty,
    /// A header line exceeded [`MAX_LINE`] bytes.
    Oversize,
    /// A header line contained a NUL, another control byte, or a non-ASCII
    /// byte (payload bytes are exempt — they may be anything).
    IllegalByte,
    /// The verb is not part of the protocol.
    UnknownVerb,
    /// Known verb, wrong number of arguments.
    Arity(&'static str),
    /// An argument was not a decimal `u64` (empty token, stray characters,
    /// or overflow).
    BadNumber,
    /// An `MGET`/`MSET` carried more than [`MAX_ARGS`] arguments.
    TooManyArgs,
    /// A `SCAN` count exceeded [`MAX_SCAN`].
    ScanTooLarge,
    /// A declared value length exceeded [`MAX_VALUE`].
    ValueTooLarge,
    /// An `MSET` frame's total payload exceeded [`MAX_BATCH_PAYLOAD`].
    BatchPayloadTooLarge,
    /// The bytes after a declared payload were not a line terminator.
    BadPayload,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty frame"),
            ParseError::Oversize => write!(f, "frame exceeds {MAX_LINE} bytes"),
            ParseError::IllegalByte => write!(f, "illegal byte in frame"),
            ParseError::UnknownVerb => write!(f, "unknown verb"),
            ParseError::Arity(usage) => write!(f, "wrong arity, usage: {usage}"),
            ParseError::BadNumber => write!(f, "argument is not a decimal u64"),
            ParseError::TooManyArgs => write!(f, "more than {MAX_ARGS} arguments"),
            ParseError::ScanTooLarge => write!(f, "scan count exceeds {MAX_SCAN}"),
            ParseError::ValueTooLarge => write!(f, "value exceeds {MAX_VALUE} bytes"),
            ParseError::BatchPayloadTooLarge => {
                write!(f, "batch payload exceeds {MAX_BATCH_PAYLOAD} bytes")
            }
            ParseError::BadPayload => write!(f, "payload not followed by a line terminator"),
        }
    }
}

/// Shared byte-stream core of the two push parsers: buffers fed bytes,
/// yields complete header lines (terminator stripped) or counted payload
/// regions, discards oversize/rejected runs.
#[derive(Debug, Default)]
struct LineBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily so feeding is O(bytes)).
    start: usize,
    /// Set after an oversize/rejected run: discard up to the next newline
    /// before resuming normal parsing.
    discarding: bool,
}

/// One item from [`LineBuffer::next_line`].
enum Line {
    /// No complete line buffered; feed more bytes.
    Pending,
    /// A complete line (without its `\n` / `\r\n` terminator). The range is
    /// an index pair into the internal buffer — borrow immediately.
    Complete(usize, usize),
    /// An oversize run was discarded (either the run found its newline, or
    /// the whole buffer was dropped while waiting for one).
    Oversize,
}

/// One item from [`LineBuffer::take_payload`].
enum PayloadTake {
    /// Fewer than `n` bytes (plus terminator) buffered; feed more.
    Pending,
    /// The payload region (index pair into the internal buffer — borrow
    /// immediately); the terminator has been consumed.
    Complete(usize, usize),
    /// The byte after the payload was not a terminator. The payload bytes
    /// were consumed and the buffer is discarding to the next newline.
    BadTerminator,
}

impl LineBuffer {
    fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is dead.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn next_line(&mut self) -> Line {
        if self.discarding {
            match self.buf[self.start..].iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    self.start += nl + 1;
                    self.discarding = false;
                    // The error for this run was already reported when the
                    // discard began; continue with the next line silently.
                }
                None => {
                    self.buf.clear();
                    self.start = 0;
                    return Line::Pending;
                }
            }
        }
        let pending = &self.buf[self.start..];
        match pending.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let mut end = self.start + nl;
                let line_start = self.start;
                self.start += nl + 1;
                if end > line_start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                if end - line_start > MAX_LINE {
                    // Terminated, but too long: the newline already
                    // resynchronized us.
                    Line::Oversize
                } else {
                    Line::Complete(line_start, end)
                }
            }
            None => {
                // `+ 1`: a maximal legal line may sit in the buffer with its
                // `\r` but not yet its `\n`. Declaring that oversize would
                // make accept/reject depend on where the read boundary fell.
                if pending.len() > MAX_LINE + 1 {
                    // Unterminated and already too long: drop what we have
                    // and keep discarding until a newline shows up.
                    self.buf.clear();
                    self.start = 0;
                    self.discarding = true;
                    Line::Oversize
                } else {
                    Line::Pending
                }
            }
        }
    }

    /// Waits for `n` raw payload bytes plus their line terminator. Payload
    /// bytes are binary — newlines inside them are data, not terminators.
    fn take_payload(&mut self, n: usize) -> PayloadTake {
        let avail = self.buf.len() - self.start;
        if avail < n + 1 {
            return PayloadTake::Pending;
        }
        let after = self.buf[self.start + n];
        if after == b'\n' {
            let s = self.start;
            self.start += n + 1;
            return PayloadTake::Complete(s, s + n);
        }
        if after == b'\r' {
            if avail < n + 2 {
                return PayloadTake::Pending;
            }
            if self.buf[self.start + n + 1] == b'\n' {
                let s = self.start;
                self.start += n + 2;
                return PayloadTake::Complete(s, s + n);
            }
        }
        // Not a terminator: consume the payload bytes, then resynchronize
        // at the next newline.
        self.start += n;
        self.discarding = true;
        PayloadTake::BadTerminator
    }

    /// Discards up to `remaining` payload bytes of a rejected frame;
    /// returns `true` when the skip is complete.
    fn skip_payload(&mut self, remaining: &mut usize) -> bool {
        let avail = self.buf.len() - self.start;
        let take = avail.min(*remaining);
        self.start += take;
        *remaining -= take;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        *remaining == 0
    }
}

/// What a request header line means: a complete frame, or a frame that
/// still needs its payload bytes.
enum ReqHeader {
    Done(Request),
    NeedSet { key: u64, len: usize, ex: Option<u64> },
    NeedMSet { pairs: Vec<(u64, usize)>, total: usize },
}

/// Request-parser payload state.
#[derive(Debug)]
enum ReqState {
    /// Parsing header lines.
    Lines,
    /// Collecting a `SET` payload (`ex`: the optional `EX <secs>` clause).
    SetPayload { key: u64, len: usize, ex: Option<u64> },
    /// Collecting an `MSET` payload region (per-value lengths + total).
    MSetPayload { pairs: Vec<(u64, usize)>, total: usize },
    /// Discarding the claimed payload of a rejected frame (already
    /// reported; bounded by the caps at construction).
    Skip { remaining: usize },
}

/// Incremental request parser (server side).
///
/// Feed raw socket bytes with [`feed`](Self::feed), then drain complete
/// frames with [`next`](Self::next). `Err` items are per-frame: the parser
/// has already resynchronized past the offending input and the following
/// frames parse normally.
#[derive(Debug)]
pub struct RequestParser {
    lines: LineBuffer,
    state: ReqState,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self { lines: LineBuffer::default(), state: ReqState::Lines }
    }
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes (any split: partial frames, many frames, …).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.lines.feed(bytes);
    }

    /// Next complete frame, a per-frame error, or `None` when more bytes are
    /// needed.
    //
    // Not an `Iterator`: `None` means "pending, feed more", not exhaustion —
    // iterator adapters (collect, for-loops) would silently truncate streams.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Request, ParseError>> {
        loop {
            match std::mem::replace(&mut self.state, ReqState::Lines) {
                ReqState::Lines => match self.lines.next_line() {
                    Line::Pending => return None,
                    Line::Oversize => return Some(Err(ParseError::Oversize)),
                    // The &mut borrow from next_line() ends at the indices,
                    // so the line parses straight out of the buffer, no copy.
                    Line::Complete(start, end) => {
                        match parse_request_line(&self.lines.buf[start..end]) {
                            Ok(ReqHeader::Done(req)) => return Some(Ok(req)),
                            Ok(ReqHeader::NeedSet { key, len, ex }) => {
                                self.state = ReqState::SetPayload { key, len, ex };
                            }
                            Ok(ReqHeader::NeedMSet { pairs, total }) => {
                                self.state = ReqState::MSetPayload { pairs, total };
                            }
                            Err(RejectedHeader { error, claimed_payload }) => {
                                if claimed_payload > 0 {
                                    self.state = ReqState::Skip { remaining: claimed_payload };
                                }
                                return Some(Err(error));
                            }
                        }
                    }
                },
                ReqState::SetPayload { key, len, ex } => match self.lines.take_payload(len) {
                    PayloadTake::Pending => {
                        self.state = ReqState::SetPayload { key, len, ex };
                        return None;
                    }
                    PayloadTake::Complete(s, e) => {
                        let value = self.lines.buf[s..e].to_vec();
                        return Some(Ok(match ex {
                            Some(secs) => Request::SetEx(key, value, secs),
                            None => Request::Set(key, value),
                        }));
                    }
                    PayloadTake::BadTerminator => return Some(Err(ParseError::BadPayload)),
                },
                ReqState::MSetPayload { pairs, total } => match self.lines.take_payload(total) {
                    PayloadTake::Pending => {
                        self.state = ReqState::MSetPayload { pairs, total };
                        return None;
                    }
                    PayloadTake::Complete(s, _) => {
                        let mut entries = Vec::with_capacity(pairs.len());
                        let mut offset = s;
                        for (key, len) in pairs {
                            entries.push((key, self.lines.buf[offset..offset + len].to_vec()));
                            offset += len;
                        }
                        return Some(Ok(Request::MSet(entries)));
                    }
                    PayloadTake::BadTerminator => return Some(Err(ParseError::BadPayload)),
                },
                ReqState::Skip { mut remaining } => {
                    if self.lines.skip_payload(&mut remaining) {
                        // Eat the terminator (or whatever the lying client
                        // sent instead) up to the next newline, silently.
                        self.lines.discarding = true;
                        // state is already Lines; re-enter the loop.
                    } else {
                        self.state = ReqState::Skip { remaining };
                        return None;
                    }
                }
            }
        }
    }
}

/// Checks the line is printable ASCII and returns it as `&str`.
fn ascii_line(line: &[u8]) -> Result<&str, ParseError> {
    if line.iter().any(|&b| !(0x20..=0x7E).contains(&b)) {
        return Err(ParseError::IllegalByte);
    }
    // Printable ASCII is valid UTF-8.
    Ok(std::str::from_utf8(line).expect("ascii checked"))
}

fn parse_u64(token: &str) -> Result<u64, ParseError> {
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseError::BadNumber);
    }
    token.parse().map_err(|_| ParseError::BadNumber)
}

/// A rejected request header, together with how many payload bytes the
/// frame *declared* (so the parser can discard them instead of
/// misinterpreting binary payload as header lines). Bounded by the caps:
/// an absurd declaration forfeits exact framing and falls back to
/// newline resynchronization after the bounded skip.
struct RejectedHeader {
    error: ParseError,
    claimed_payload: usize,
}

impl From<ParseError> for RejectedHeader {
    fn from(error: ParseError) -> Self {
        RejectedHeader { error, claimed_payload: 0 }
    }
}

fn parse_request_line(line: &[u8]) -> Result<ReqHeader, RejectedHeader> {
    let line = ascii_line(line)?;
    if line.is_empty() {
        return Err(ParseError::Empty.into());
    }
    let mut tokens = line.split(' ');
    let verb = tokens.next().expect("split yields at least one token");
    let args: Vec<&str> = tokens.collect();
    if args.len() > MAX_ARGS {
        return Err(ParseError::TooManyArgs.into());
    }
    let arity = |n: usize, usage: &'static str| {
        if args.len() == n {
            Ok(())
        } else {
            Err(ParseError::Arity(usage))
        }
    };
    let done = |req: Request| Ok(ReqHeader::Done(req));
    match verb {
        "GET" => {
            arity(1, "GET <key>")?;
            done(Request::Get(parse_u64(args[0])?))
        }
        "SET" => {
            if !(args.len() == 2 || (args.len() == 4 && args[2] == "EX")) {
                return Err(ParseError::Arity("SET <key> <len> [EX <secs>] + payload").into());
            }
            let key = parse_u64(args[0])?;
            let len = parse_u64(args[1])?;
            let ex = if args.len() == 4 { Some(parse_u64(args[3])?) } else { None };
            if len > MAX_VALUE as u64 {
                return Err(RejectedHeader {
                    error: ParseError::ValueTooLarge,
                    claimed_payload: (len as usize).min(MAX_VALUE.saturating_mul(2)),
                });
            }
            Ok(ReqHeader::NeedSet { key, len: len as usize, ex })
        }
        "DEL" => {
            arity(1, "DEL <key>")?;
            done(Request::Del(parse_u64(args[0])?))
        }
        "MGET" => {
            if args.is_empty() {
                return Err(ParseError::Arity("MGET <key>...").into());
            }
            let keys =
                args.iter().map(|t| parse_u64(t)).collect::<Result<Vec<_>, _>>()?;
            done(Request::MGet(keys))
        }
        "MSET" => {
            if args.is_empty() || args.len() % 2 != 0 {
                return Err(ParseError::Arity("MSET (<key> <len>)... + payloads").into());
            }
            let mut pairs = Vec::with_capacity(args.len() / 2);
            let mut total = 0u64;
            let mut reject: Option<ParseError> = None;
            for kv in args.chunks_exact(2) {
                let key = parse_u64(kv[0])?;
                let len = parse_u64(kv[1])?;
                if len > MAX_VALUE as u64 && reject.is_none() {
                    reject = Some(ParseError::ValueTooLarge);
                }
                total = total.saturating_add(len);
                pairs.push((key, len as usize));
            }
            if total > MAX_BATCH_PAYLOAD as u64 && reject.is_none() {
                reject = Some(ParseError::BatchPayloadTooLarge);
            }
            if let Some(error) = reject {
                return Err(RejectedHeader {
                    error,
                    claimed_payload: (total as usize).min(MAX_BATCH_PAYLOAD.saturating_mul(2)),
                });
            }
            Ok(ReqHeader::NeedMSet { pairs, total: total as usize })
        }
        "EXPIRE" => {
            arity(2, "EXPIRE <key> <secs>")?;
            done(Request::Expire(parse_u64(args[0])?, parse_u64(args[1])?))
        }
        "TTL" => {
            arity(1, "TTL <key>")?;
            done(Request::Ttl(parse_u64(args[0])?))
        }
        "PERSIST" => {
            arity(1, "PERSIST <key>")?;
            done(Request::Persist(parse_u64(args[0])?))
        }
        "SCAN" => {
            arity(2, "SCAN <from> <count>")?;
            let from = parse_u64(args[0])?;
            let count = parse_u64(args[1])?;
            if count > MAX_SCAN as u64 {
                return Err(ParseError::ScanTooLarge.into());
            }
            done(Request::Scan(from, count as usize))
        }
        "PING" => {
            arity(0, "PING")?;
            done(Request::Ping)
        }
        "STATS" => {
            arity(0, "STATS")?;
            done(Request::Stats)
        }
        "INFO" => {
            if args.len() > 1 {
                return Err(ParseError::Arity("INFO [section]").into());
            }
            done(Request::Info(args.first().map(|s| s.to_ascii_lowercase())))
        }
        "SLOWLOG" => {
            arity(1, "SLOWLOG GET|RESET|LEN")?;
            let sub = match args[0].to_ascii_uppercase().as_str() {
                "GET" => SlowlogCmd::Get,
                "RESET" => SlowlogCmd::Reset,
                "LEN" => SlowlogCmd::Len,
                _ => return Err(ParseError::Arity("SLOWLOG GET|RESET|LEN").into()),
            };
            done(Request::Slowlog(sub))
        }
        "METRICS" => {
            arity(0, "METRICS")?;
            done(Request::Metrics)
        }
        "MONITOR" => {
            if args.len() > 1 {
                return Err(ParseError::Arity("MONITOR [sample_n]").into());
            }
            let sample = args.first().map(|t| parse_u64(t)).transpose()?;
            done(Request::Monitor(sample))
        }
        "QUIT" => {
            arity(0, "QUIT")?;
            done(Request::Quit)
        }
        _ => Err(ParseError::UnknownVerb.into()),
    }
}

/// Encodes one request frame onto a byte buffer (the client side of the
/// codec; [`RequestParser`] is its inverse).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    use std::io::Write as _;
    match req {
        Request::Get(k) => write!(out, "GET {k}\r\n"),
        Request::Set(k, v) => {
            encode_set(out, *k, v);
            Ok(())
        }
        Request::SetEx(k, v, secs) => {
            encode_set_ex(out, *k, v, *secs);
            Ok(())
        }
        Request::Expire(k, secs) => write!(out, "EXPIRE {k} {secs}\r\n"),
        Request::Ttl(k) => write!(out, "TTL {k}\r\n"),
        Request::Persist(k) => write!(out, "PERSIST {k}\r\n"),
        Request::Del(k) => write!(out, "DEL {k}\r\n"),
        Request::MGet(keys) => {
            out.extend_from_slice(b"MGET");
            for k in keys {
                write!(out, " {k}").expect("vec write");
            }
            out.extend_from_slice(b"\r\n");
            Ok(())
        }
        Request::MSet(entries) => {
            encode_mset(out, entries.iter().map(|(k, v)| (*k, v.as_slice())));
            Ok(())
        }
        Request::Scan(from, n) => write!(out, "SCAN {from} {n}\r\n"),
        Request::Ping => write!(out, "PING\r\n"),
        Request::Stats => write!(out, "STATS\r\n"),
        Request::Info(None) => write!(out, "INFO\r\n"),
        Request::Info(Some(section)) => write!(out, "INFO {section}\r\n"),
        Request::Slowlog(SlowlogCmd::Get) => write!(out, "SLOWLOG GET\r\n"),
        Request::Slowlog(SlowlogCmd::Reset) => write!(out, "SLOWLOG RESET\r\n"),
        Request::Slowlog(SlowlogCmd::Len) => write!(out, "SLOWLOG LEN\r\n"),
        Request::Metrics => write!(out, "METRICS\r\n"),
        Request::Monitor(None) => write!(out, "MONITOR\r\n"),
        Request::Monitor(Some(n)) => write!(out, "MONITOR {n}\r\n"),
        Request::Quit => write!(out, "QUIT\r\n"),
    }
    .expect("writing to a Vec cannot fail")
}

/// Encodes a `SET` frame from borrowed payload bytes (no `Request`
/// allocation — the load generator's hot path).
pub fn encode_set(out: &mut Vec<u8>, key: u64, value: &[u8]) {
    use std::io::Write as _;
    write!(out, "SET {key} {}\r\n", value.len()).expect("vec write");
    out.extend_from_slice(value);
    out.extend_from_slice(b"\r\n");
}

/// Encodes a `SET … EX` frame from borrowed payload bytes.
pub fn encode_set_ex(out: &mut Vec<u8>, key: u64, value: &[u8], secs: u64) {
    use std::io::Write as _;
    write!(out, "SET {key} {} EX {secs}\r\n", value.len()).expect("vec write");
    out.extend_from_slice(value);
    out.extend_from_slice(b"\r\n");
}

/// Encodes an `MSET` frame from borrowed payload bytes.
///
/// Zero entries encode as the bare header (one frame, which the server
/// answers with one arity error) — never a dangling payload terminator,
/// which would draw a second error reply and desynchronize the
/// request/reply pairing.
pub fn encode_mset<'a>(out: &mut Vec<u8>, entries: impl Iterator<Item = (u64, &'a [u8])> + Clone) {
    use std::io::Write as _;
    out.extend_from_slice(b"MSET");
    let mut count = 0usize;
    for (k, v) in entries.clone() {
        write!(out, " {k} {}", v.len()).expect("vec write");
        count += 1;
    }
    out.extend_from_slice(b"\r\n");
    if count > 0 {
        for (_, v) in entries {
            out.extend_from_slice(v);
        }
        out.extend_from_slice(b"\r\n");
    }
}

/// One parsed reply frame (arrays are one level deep by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+text` — simple string.
    Simple(String),
    /// `:n` — integer.
    Int(u64),
    /// `_` — null (miss).
    Null,
    /// `$len + payload` — one bulk value.
    Bulk(Vec<u8>),
    /// `=k len + payload` — one key-value pair.
    Pair(u64, Vec<u8>),
    /// `*n` header plus `n` scalar elements.
    Array(Vec<Reply>),
    /// `-ERR message`.
    Error(String),
}

/// Reply-side wire writers, used by the server's connection loop (and by
/// tests to fabricate server output). Each writes one complete frame.
pub mod wire {
    use std::io::Write as _;

    /// `+text` simple string frame.
    pub fn simple(out: &mut Vec<u8>, text: &str) {
        debug_assert!(text.bytes().all(|b| (0x20..=0x7E).contains(&b)));
        write!(out, "+{text}\r\n").expect("vec write");
    }

    /// `:n` integer frame.
    pub fn int(out: &mut Vec<u8>, n: u64) {
        write!(out, ":{n}\r\n").expect("vec write");
    }

    /// `_` null frame.
    pub fn null(out: &mut Vec<u8>) {
        out.extend_from_slice(b"_\r\n");
    }

    /// `$len + payload` bulk value frame (binary-safe).
    pub fn bulk(out: &mut Vec<u8>, value: &[u8]) {
        write!(out, "${}\r\n", value.len()).expect("vec write");
        out.extend_from_slice(value);
        out.extend_from_slice(b"\r\n");
    }

    /// `=k len + payload` pair frame (binary-safe).
    pub fn pair(out: &mut Vec<u8>, k: u64, value: &[u8]) {
        write!(out, "={k} {}\r\n", value.len()).expect("vec write");
        out.extend_from_slice(value);
        out.extend_from_slice(b"\r\n");
    }

    /// `*n` array header (followed by `n` scalar frames the caller writes).
    pub fn array_header(out: &mut Vec<u8>, n: usize) {
        write!(out, "*{n}\r\n").expect("vec write");
    }

    /// `-ERR message` error frame.
    pub fn error(out: &mut Vec<u8>, message: &str) {
        let clean: String =
            message.chars().map(|c| if ('\u{20}'..='\u{7E}').contains(&c) { c } else { '?' }).collect();
        write!(out, "-ERR {clean}\r\n").expect("vec write");
    }
}

/// Largest reply array a client will accept (defensively above the largest
/// array a conforming server can produce, `MAX_SCAN`).
pub const MAX_REPLY_ARRAY: usize = MAX_SCAN * 2;

/// An in-flight bulk reply element awaiting its payload bytes.
#[derive(Debug)]
enum PendingBulk {
    Bulk(usize),
    Pair(u64, usize),
}

/// Incremental reply parser (client side). Same push discipline as
/// [`RequestParser`]; array replies (bulk elements included) are assembled
/// across chunk boundaries.
#[derive(Debug, Default)]
pub struct ReplyParser {
    lines: LineBuffer,
    /// In-flight array: remaining element count and the collected elements.
    partial: Option<(usize, Vec<Reply>)>,
    /// In-flight bulk element (top-level or inside the array).
    bulk: Option<PendingBulk>,
    /// Bytes still to discard from a rejected bulk declaration.
    skip: usize,
}

impl ReplyParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the server.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.lines.feed(bytes);
    }

    /// Next complete reply (arrays are returned whole), a per-frame error,
    /// or `None` when more bytes are needed.
    ///
    /// Protocol violations (oversize lines, malformed frames, array headers
    /// inside arrays, over-cap bulk declarations) surface as `Err`; the
    /// parser resynchronizes — dropping any half-assembled array — at the
    /// next line, after a bounded payload discard where one was declared.
    //
    // Not an `Iterator` for the same reason as `RequestParser::next`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Reply, ParseError>> {
        loop {
            if self.skip > 0 {
                let mut remaining = self.skip;
                let finished = self.lines.skip_payload(&mut remaining);
                self.skip = remaining;
                if !finished {
                    return None;
                }
                self.lines.discarding = true;
            }
            let item = if let Some(pending) = self.bulk.take() {
                let len = match &pending {
                    PendingBulk::Bulk(len) => *len,
                    PendingBulk::Pair(_, len) => *len,
                };
                match self.lines.take_payload(len) {
                    PayloadTake::Pending => {
                        self.bulk = Some(pending);
                        return None;
                    }
                    PayloadTake::BadTerminator => {
                        self.partial = None;
                        return Some(Err(ParseError::BadPayload));
                    }
                    PayloadTake::Complete(s, e) => {
                        let bytes = self.lines.buf[s..e].to_vec();
                        ReplyLine::Scalar(match pending {
                            PendingBulk::Bulk(_) => Reply::Bulk(bytes),
                            PendingBulk::Pair(key, _) => Reply::Pair(key, bytes),
                        })
                    }
                }
            } else {
                match self.lines.next_line() {
                    Line::Pending => return None,
                    Line::Oversize => {
                        self.partial = None;
                        return Some(Err(ParseError::Oversize));
                    }
                    // As in `RequestParser::next`: parse in place, no copy.
                    Line::Complete(start, end) => {
                        match parse_reply_line(&self.lines.buf[start..end]) {
                            Err(e) => {
                                self.partial = None;
                                return Some(Err(e));
                            }
                            Ok(ReplyLine::BulkHeader(len)) => {
                                if len > MAX_VALUE {
                                    self.partial = None;
                                    self.skip = len.min(MAX_VALUE.saturating_mul(2));
                                    return Some(Err(ParseError::ValueTooLarge));
                                }
                                self.bulk = Some(PendingBulk::Bulk(len));
                                continue;
                            }
                            Ok(ReplyLine::PairHeader(key, len)) => {
                                if len > MAX_VALUE {
                                    self.partial = None;
                                    self.skip = len.min(MAX_VALUE.saturating_mul(2));
                                    return Some(Err(ParseError::ValueTooLarge));
                                }
                                self.bulk = Some(PendingBulk::Pair(key, len));
                                continue;
                            }
                            Ok(item) => item,
                        }
                    }
                }
            };
            match (item, self.partial.take()) {
                // Array header outside an array: start collecting.
                (ReplyLine::ArrayHeader(0), None) => return Some(Ok(Reply::Array(Vec::new()))),
                (ReplyLine::ArrayHeader(n), None) => {
                    self.partial = Some((n, Vec::with_capacity(n.min(64))));
                }
                // Array header inside an array: nesting is not part of the
                // protocol.
                (ReplyLine::ArrayHeader(_), Some(_)) => {
                    return Some(Err(ParseError::UnknownVerb));
                }
                (ReplyLine::Scalar(r), None) => return Some(Ok(r)),
                (ReplyLine::Scalar(r), Some((remaining, mut elems))) => {
                    elems.push(r);
                    if remaining == 1 {
                        return Some(Ok(Reply::Array(elems)));
                    }
                    self.partial = Some((remaining - 1, elems));
                }
                // Bulk headers were intercepted above (they `continue` into
                // payload collection before reaching array assembly).
                (ReplyLine::BulkHeader(_) | ReplyLine::PairHeader(..), _) => {
                    unreachable!("bulk headers never reach array assembly");
                }
            }
        }
    }
}

enum ReplyLine {
    Scalar(Reply),
    ArrayHeader(usize),
    BulkHeader(usize),
    PairHeader(u64, usize),
}

fn parse_reply_line(line: &[u8]) -> Result<ReplyLine, ParseError> {
    let line = ascii_line(line)?;
    let Some(first) = line.chars().next() else {
        return Err(ParseError::Empty);
    };
    let rest = &line[1..];
    match first {
        '+' => Ok(ReplyLine::Scalar(Reply::Simple(rest.to_string()))),
        ':' => Ok(ReplyLine::Scalar(Reply::Int(parse_u64(rest)?))),
        '_' => {
            if rest.is_empty() {
                Ok(ReplyLine::Scalar(Reply::Null))
            } else {
                Err(ParseError::BadNumber)
            }
        }
        '$' => Ok(ReplyLine::BulkHeader(parse_u64(rest)? as usize)),
        '=' => {
            let (k, len) = rest.split_once(' ').ok_or(ParseError::Arity("=<key> <len>"))?;
            Ok(ReplyLine::PairHeader(parse_u64(k)?, parse_u64(len)? as usize))
        }
        '*' => {
            let n = parse_u64(rest)?;
            if n > MAX_REPLY_ARRAY as u64 {
                return Err(ParseError::TooManyArgs);
            }
            Ok(ReplyLine::ArrayHeader(n as usize))
        }
        '-' => {
            let msg = rest.strip_prefix("ERR ").unwrap_or(rest);
            Ok(ReplyLine::Scalar(Reply::Error(msg.to_string())))
        }
        _ => Err(ParseError::UnknownVerb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Vec<Result<Request, ParseError>> {
        let mut p = RequestParser::new();
        p.feed(bytes);
        let mut out = Vec::new();
        while let Some(item) = p.next() {
            out.push(item);
        }
        out
    }

    fn set(k: u64, v: &[u8]) -> Request {
        Request::Set(k, v.to_vec())
    }

    #[test]
    fn parses_every_verb() {
        let stream = b"GET 1\r\nSET 2 3\r\nabc\r\nSET 2 3 EX 60\r\nabc\r\nEXPIRE 2 30\r\nTTL 2\r\nPERSIST 2\r\nDEL 3\r\nMGET 4 5 6\r\nMSET 7 2 8 3\r\nhitwo\r\nSCAN 9 16\r\nPING\r\nSTATS\r\nINFO\r\nINFO Latency\r\nSLOWLOG get\r\nSLOWLOG RESET\r\nSLOWLOG LEN\r\nMETRICS\r\nMONITOR\r\nMONITOR 8\r\nQUIT\r\n";
        let got = parse_all(stream);
        assert_eq!(
            got,
            vec![
                Ok(Request::Get(1)),
                Ok(set(2, b"abc")),
                Ok(Request::SetEx(2, b"abc".to_vec(), 60)),
                Ok(Request::Expire(2, 30)),
                Ok(Request::Ttl(2)),
                Ok(Request::Persist(2)),
                Ok(Request::Del(3)),
                Ok(Request::MGet(vec![4, 5, 6])),
                Ok(Request::MSet(vec![(7, b"hi".to_vec()), (8, b"two".to_vec())])),
                Ok(Request::Scan(9, 16)),
                Ok(Request::Ping),
                Ok(Request::Stats),
                Ok(Request::Info(None)),
                Ok(Request::Info(Some("latency".into()))),
                Ok(Request::Slowlog(SlowlogCmd::Get)),
                Ok(Request::Slowlog(SlowlogCmd::Reset)),
                Ok(Request::Slowlog(SlowlogCmd::Len)),
                Ok(Request::Metrics),
                Ok(Request::Monitor(None)),
                Ok(Request::Monitor(Some(8))),
                Ok(Request::Quit),
            ]
        );
    }

    #[test]
    fn bare_newline_is_accepted_for_headers_and_payloads() {
        assert_eq!(
            parse_all(b"PING\nSET 7 2\nok\nGET 7\n"),
            vec![Ok(Request::Ping), Ok(set(7, b"ok")), Ok(Request::Get(7))]
        );
    }

    #[test]
    fn payloads_are_binary_safe() {
        // NULs, CR, LF, and non-ASCII bytes inside a payload are data.
        let payload = [0u8, b'\n', b'\r', 0xFF, b'\n', 0, 7];
        let mut stream = format!("SET 42 {}\r\n", payload.len()).into_bytes();
        stream.extend_from_slice(&payload);
        stream.extend_from_slice(b"\r\nPING\r\n");
        assert_eq!(parse_all(&stream), vec![Ok(set(42, &payload)), Ok(Request::Ping)]);
    }

    #[test]
    fn empty_and_max_size_values_parse() {
        let mut stream = b"SET 1 0\r\n\r\n".to_vec();
        let big = vec![0xABu8; MAX_VALUE];
        stream.extend_from_slice(format!("SET 2 {MAX_VALUE}\r\n").as_bytes());
        stream.extend_from_slice(&big);
        stream.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&stream), vec![Ok(set(1, b"")), Ok(set(2, &big))]);
    }

    #[test]
    fn oversize_value_is_rejected_and_its_payload_discarded() {
        // The declared payload (cap + 1 bytes, full of newlines to tempt a
        // line-resync bug) is skipped exactly, and the next frame parses.
        let len = MAX_VALUE + 1;
        let mut stream = format!("SET 5 {len}\r\n").into_bytes();
        stream.extend_from_slice(&vec![b'\n'; len]);
        stream.extend_from_slice(b"\r\nPING\r\n");
        assert_eq!(
            parse_all(&stream),
            vec![Err(ParseError::ValueTooLarge), Ok(Request::Ping)]
        );
    }

    #[test]
    fn mset_payload_region_is_split_by_declared_lengths() {
        let mut stream = b"MSET 1 3 2 0 3 4\r\n".to_vec();
        stream.extend_from_slice(b"abc");
        stream.extend_from_slice(b"wxyz");
        stream.extend_from_slice(b"\r\nPING\r\n");
        assert_eq!(
            parse_all(&stream),
            vec![
                Ok(Request::MSet(vec![
                    (1, b"abc".to_vec()),
                    (2, Vec::new()),
                    (3, b"wxyz".to_vec())
                ])),
                Ok(Request::Ping)
            ]
        );
    }

    #[test]
    fn mset_over_batch_cap_is_rejected_with_bounded_discard() {
        let per = MAX_VALUE as u64;
        let n = (MAX_BATCH_PAYLOAD as u64 / per) + 1;
        let mut header = String::from("MSET");
        for i in 0..n {
            header.push_str(&format!(" {} {per}", i + 1));
        }
        header.push_str("\r\n");
        let mut stream = header.into_bytes();
        stream.extend_from_slice(&vec![0u8; (n * per) as usize]);
        stream.extend_from_slice(b"\r\nPING\r\n");
        assert_eq!(
            parse_all(&stream),
            vec![Err(ParseError::BatchPayloadTooLarge), Ok(Request::Ping)]
        );
    }

    #[test]
    fn missing_payload_terminator_is_one_error() {
        // The stray bytes after "abc" abort the frame; the parser consumes
        // the declared payload, discards to the next newline, and the
        // following frame parses — one client mistake, bounded damage.
        let stream = b"SET 9 3\r\nabcXGARBAGE\r\nPING\r\n";
        assert_eq!(
            parse_all(stream),
            vec![Err(ParseError::BadPayload), Ok(Request::Ping)]
        );
    }

    #[test]
    fn split_reads_reassemble_headers_and_payloads() {
        let stream = b"SET 123 6\r\nab\ncd\x00\r\nGET 123\r\n";
        for split in 0..stream.len() {
            let mut p = RequestParser::new();
            p.feed(&stream[..split]);
            let mut got = Vec::new();
            while let Some(item) = p.next() {
                got.push(item);
            }
            p.feed(&stream[split..]);
            while let Some(item) = p.next() {
                got.push(item);
            }
            assert_eq!(
                got,
                vec![Ok(set(123, b"ab\ncd\x00")), Ok(Request::Get(123))],
                "split at {split}"
            );
        }
    }

    #[test]
    fn malformed_frames_error_and_resynchronize() {
        let cases: &[(&[u8], ParseError)] = &[
            (b"\r\n", ParseError::Empty),
            (b"NOPE 1\r\n", ParseError::UnknownVerb),
            (b"get 1\r\n", ParseError::UnknownVerb),
            (b"GET\r\n", ParseError::Arity("GET <key>")),
            (b"GET 1 2\r\n", ParseError::Arity("GET <key>")),
            (b"SET 1\r\n", ParseError::Arity("SET <key> <len> [EX <secs>] + payload")),
            (b"SET 1 2 PX 9\r\n", ParseError::Arity("SET <key> <len> [EX <secs>] + payload")),
            (b"SET 1 2 EX\r\n", ParseError::Arity("SET <key> <len> [EX <secs>] + payload")),
            (b"EXPIRE 1\r\n", ParseError::Arity("EXPIRE <key> <secs>")),
            (b"EXPIRE 1 x\r\n", ParseError::BadNumber),
            (b"TTL\r\n", ParseError::Arity("TTL <key>")),
            (b"PERSIST 1 2\r\n", ParseError::Arity("PERSIST <key>")),
            (b"GET x\r\n", ParseError::BadNumber),
            // Double space: the empty token counts toward arity.
            (b"GET  1\r\n", ParseError::Arity("GET <key>")),
            (b"GET 18446744073709551616\r\n", ParseError::BadNumber),
            (b"GET -1\r\n", ParseError::BadNumber),
            (b"MSET 1\r\n", ParseError::Arity("MSET (<key> <len>)... + payloads")),
            (b"MGET\r\n", ParseError::Arity("MGET <key>...")),
            (b"INFO latency extra\r\n", ParseError::Arity("INFO [section]")),
            (b"SLOWLOG\r\n", ParseError::Arity("SLOWLOG GET|RESET|LEN")),
            (b"SLOWLOG BAD\r\n", ParseError::Arity("SLOWLOG GET|RESET|LEN")),
            (b"METRICS now\r\n", ParseError::Arity("METRICS")),
            (b"MONITOR 1 2\r\n", ParseError::Arity("MONITOR [sample_n]")),
            (b"MONITOR x\r\n", ParseError::BadNumber),
            (b"SCAN 1 999999\r\n", ParseError::ScanTooLarge),
            (b"GET \x001\r\n", ParseError::IllegalByte),
            (b"G\xc3\x89T 1\r\n", ParseError::IllegalByte),
        ];
        for (bytes, want) in cases {
            let mut stream = bytes.to_vec();
            stream.extend_from_slice(b"PING\r\n");
            let got = parse_all(&stream);
            assert_eq!(
                got,
                vec![Err(want.clone()), Ok(Request::Ping)],
                "input {:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn oversize_terminated_line_is_one_error() {
        let mut stream = vec![b'A'; MAX_LINE + 10];
        stream.extend_from_slice(b"\r\nPING\r\n");
        assert_eq!(parse_all(&stream), vec![Err(ParseError::Oversize), Ok(Request::Ping)]);
    }

    #[test]
    fn oversize_unterminated_run_reports_once_then_resynchronizes() {
        let mut p = RequestParser::new();
        p.feed(&vec![b'B'; MAX_LINE + 2]);
        assert_eq!(p.next(), Some(Err(ParseError::Oversize)));
        // Still mid-run: more garbage arrives, silently discarded.
        p.feed(&vec![b'B'; 3 * MAX_LINE]);
        assert_eq!(p.next(), None);
        p.feed(b"tail\nPING\r\n");
        assert_eq!(p.next(), Some(Ok(Request::Ping)));
        assert_eq!(p.next(), None);
    }

    #[test]
    fn the_worst_legal_batch_header_fits_under_the_line_cap() {
        // MAX_ARGS twenty-digit arguments must be limited by the argument
        // cap, not silently by MAX_LINE (a conforming client batching at
        // the documented limit must get answers, not Oversize).
        let key = u64::MAX - 1; // 20 digits
        let keys = vec![key; MAX_ARGS];
        let mut bytes = Vec::new();
        encode_request(&Request::MGet(keys.clone()), &mut bytes);
        assert!(bytes.len() <= MAX_LINE, "worst MGET is {} bytes", bytes.len());
        assert_eq!(parse_all(&bytes), vec![Ok(Request::MGet(keys))]);
        // MSET: MAX_ARGS/2 pairs, 20-digit keys, 4-digit lengths (bounded by
        // the batch payload cap, so lengths cannot also be 20 digits).
        let per_len = MAX_BATCH_PAYLOAD / (MAX_ARGS / 2);
        let entries: Vec<(u64, Vec<u8>)> =
            (0..MAX_ARGS / 2).map(|_| (key, vec![7u8; per_len])).collect();
        let mut bytes = Vec::new();
        encode_request(&Request::MSet(entries.clone()), &mut bytes);
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap();
        assert!(header_len <= MAX_LINE, "worst MSET header is {header_len} bytes");
        assert_eq!(parse_all(&bytes), vec![Ok(Request::MSet(entries))]);
    }

    #[test]
    fn empty_mset_encodes_as_one_frame_drawing_one_error() {
        let mut bytes = Vec::new();
        encode_request(&Request::MSet(Vec::new()), &mut bytes);
        bytes.extend_from_slice(b"PING\r\n");
        // Exactly one error for the invalid frame, then normal parsing —
        // a stray payload terminator here would cost a second error reply
        // and desynchronize a pipelined connection.
        assert_eq!(
            parse_all(&bytes),
            vec![
                Err(ParseError::Arity("MSET (<key> <len>)... + payloads")),
                Ok(Request::Ping)
            ]
        );
    }

    #[test]
    fn maximal_line_verdict_does_not_depend_on_read_boundaries() {
        // A line of exactly MAX_LINE bytes must get the same (non-Oversize)
        // verdict whether its CRLF arrives in the same read or split after
        // the `\r` — the buffered `\r` must not push the run over the cap.
        let mut whole = vec![b'A'; MAX_LINE];
        whole.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&whole), vec![Err(ParseError::UnknownVerb)]);

        let mut p = RequestParser::new();
        p.feed(&whole[..MAX_LINE + 1]); // content + '\r', no '\n' yet
        assert_eq!(p.next(), None, "pending, not oversize");
        p.feed(b"\n");
        assert_eq!(p.next(), Some(Err(ParseError::UnknownVerb)));
        // One byte more of content *is* oversize, terminated or not.
        let mut over = vec![b'A'; MAX_LINE + 1];
        over.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&over), vec![Err(ParseError::Oversize)]);
    }

    #[test]
    fn too_many_args_is_rejected() {
        let mut line = b"MGET".to_vec();
        for i in 0..(MAX_ARGS + 1) {
            line.extend_from_slice(format!(" {i}").as_bytes());
        }
        line.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&line), vec![Err(ParseError::TooManyArgs)]);
    }

    #[test]
    fn request_encoding_round_trips() {
        let reqs = vec![
            Request::Get(7),
            set(1, b"value with \0 and \n inside"),
            set(2, b""),
            Request::SetEx(3, b"lease\n".to_vec(), 90),
            Request::Expire(3, 15),
            Request::Ttl(3),
            Request::Persist(3),
            Request::Del(0),
            Request::MGet(vec![9, 9, 8]),
            Request::MSet(vec![(1, b"a".to_vec()), (3, Vec::new()), (4, vec![0xEE; 300])]),
            Request::Scan(5, MAX_SCAN),
            Request::Ping,
            Request::Stats,
            Request::Info(None),
            Request::Info(Some("commands".into())),
            Request::Slowlog(SlowlogCmd::Get),
            Request::Slowlog(SlowlogCmd::Reset),
            Request::Slowlog(SlowlogCmd::Len),
            Request::Metrics,
            Request::Monitor(None),
            Request::Monitor(Some(16)),
            Request::Quit,
        ];
        let mut bytes = Vec::new();
        for r in &reqs {
            encode_request(r, &mut bytes);
        }
        let got: Vec<Request> = parse_all(&bytes).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, reqs);
    }

    fn parse_replies(bytes: &[u8]) -> Vec<Result<Reply, ParseError>> {
        let mut p = ReplyParser::new();
        p.feed(bytes);
        let mut out = Vec::new();
        while let Some(item) = p.next() {
            out.push(item);
        }
        out
    }

    #[test]
    fn reply_frames_parse() {
        let stream =
            b"+OK\r\n:42\r\n_\r\n$3\r\nv\x00v\r\n=3 2\r\nhi\r\n-ERR boom\r\n*2\r\n$1\r\nx\r\n_\r\n*0\r\n";
        assert_eq!(
            parse_replies(stream),
            vec![
                Ok(Reply::Simple("OK".into())),
                Ok(Reply::Int(42)),
                Ok(Reply::Null),
                Ok(Reply::Bulk(b"v\x00v".to_vec())),
                Ok(Reply::Pair(3, b"hi".to_vec())),
                Ok(Reply::Error("boom".into())),
                Ok(Reply::Array(vec![Reply::Bulk(b"x".to_vec()), Reply::Null])),
                Ok(Reply::Array(vec![])),
            ]
        );
    }

    #[test]
    fn reply_arrays_with_bulk_elements_assemble_across_splits() {
        let stream = b"*3\r\n=1 2\r\nv1\r\n=2 0\r\n\r\n=3 3\r\nx\ny\r\n+OK\r\n";
        for split in 0..stream.len() {
            let mut p = ReplyParser::new();
            p.feed(&stream[..split]);
            let mut got = Vec::new();
            while let Some(item) = p.next() {
                got.push(item);
            }
            p.feed(&stream[split..]);
            while let Some(item) = p.next() {
                got.push(item);
            }
            assert_eq!(
                got,
                vec![
                    Ok(Reply::Array(vec![
                        Reply::Pair(1, b"v1".to_vec()),
                        Reply::Pair(2, Vec::new()),
                        Reply::Pair(3, b"x\ny".to_vec())
                    ])),
                    Ok(Reply::Simple("OK".into())),
                ],
                "split at {split}"
            );
        }
    }

    #[test]
    fn reply_parser_rejects_nested_arrays_huge_headers_and_huge_bulks() {
        assert_eq!(
            parse_replies(b"*2\r\n*1\r\n:1\r\n"),
            vec![Err(ParseError::UnknownVerb), Ok(Reply::Int(1))],
            "a nested header drops the partial array and resynchronizes"
        );
        let huge = format!("*{}\r\n", MAX_REPLY_ARRAY + 1);
        assert_eq!(parse_replies(huge.as_bytes()), vec![Err(ParseError::TooManyArgs)]);
        // An over-cap bulk declaration: one error, declared bytes skipped,
        // next frame intact.
        let len = MAX_VALUE + 9;
        let mut stream = format!("${len}\r\n").into_bytes();
        stream.extend_from_slice(&vec![b'\n'; len]);
        stream.extend_from_slice(b"\r\n+OK\r\n");
        assert_eq!(
            parse_replies(&stream),
            vec![Err(ParseError::ValueTooLarge), Ok(Reply::Simple("OK".into()))]
        );
    }

    #[test]
    fn wire_writers_emit_parseable_frames() {
        let mut out = Vec::new();
        wire::simple(&mut out, "PONG");
        wire::int(&mut out, 5);
        wire::null(&mut out);
        wire::bulk(&mut out, b"pay\r\nload");
        wire::array_header(&mut out, 1);
        wire::pair(&mut out, 2, &[0, 1, 2]);
        wire::error(&mut out, "bad\r\nthing");
        assert_eq!(
            parse_replies(&out),
            vec![
                Ok(Reply::Simple("PONG".into())),
                Ok(Reply::Int(5)),
                Ok(Reply::Null),
                Ok(Reply::Bulk(b"pay\r\nload".to_vec())),
                Ok(Reply::Array(vec![Reply::Pair(2, vec![0, 1, 2])])),
                Ok(Reply::Error("bad??thing".into())),
            ]
        );
    }

    #[test]
    fn error_display_messages_are_stable() {
        assert_eq!(ParseError::Empty.to_string(), "empty frame");
        assert!(ParseError::Oversize.to_string().contains("bytes"));
        assert!(ParseError::Arity("GET <key>").to_string().contains("GET <key>"));
        assert!(ParseError::ValueTooLarge.to_string().contains(&MAX_VALUE.to_string()));
        assert!(ParseError::BatchPayloadTooLarge
            .to_string()
            .contains(&MAX_BATCH_PAYLOAD.to_string()));
    }
}
