//! What the server serves: a keyspace abstraction over the shard layer.
//!
//! The connection loop dispatches frames against a [`KvStore`] trait object,
//! so one server binary can front any backing. Two adapters cover the
//! library:
//!
//! * [`ShardedStore`] — any [`ConcurrentMap`] backing (hash tables
//!   included). `SCAN` frames are answered with an error: the backing has no
//!   key order to scan in.
//! * [`ShardedOrderedStore`] — ordered backings (lists, skip lists, BSTs),
//!   adding `SCAN` via the shard layer's k-way-merged
//!   [`OrderedMap`] scans.
//!
//! Both adapters hold an `Arc` to the map, so the process that started the
//! server keeps a handle for direct inspection (the loopback tests compare
//! final server state against a sequential model through that handle).
//! `MGET`/`MSET` frames go through the shard layer's batched
//! `multi_get`/`multi_insert`, which visits each shard once per frame.

use std::sync::Arc;

use ascylib::api::{ConcurrentMap, KEY_MAX, KEY_MIN};
use ascylib::ordered::OrderedMap;
use ascylib_shard::ShardedMap;

/// The serving-side keyspace interface: what a wire frame can do to the
/// data. All methods are `&self` and thread-safe; worker threads share one
/// store.
pub trait KvStore: Send + Sync + 'static {
    /// Point lookup (`GET`).
    fn get(&self, key: u64) -> Option<u64>;

    /// Insert-if-absent (`SET`); `true` if the key was newly inserted.
    fn set(&self, key: u64, value: u64) -> bool;

    /// Remove (`DEL`), returning the removed value.
    fn del(&self, key: u64) -> Option<u64>;

    /// Batched lookup (`MGET`), results in input order.
    fn multi_get(&self, keys: &[u64]) -> Vec<Option<u64>>;

    /// Batched insert-if-absent (`MSET`), outcomes in input order.
    fn multi_set(&self, entries: &[(u64, u64)]) -> Vec<bool>;

    /// Ordered scan (`SCAN`): up to `n` elements with key `>= from` in
    /// ascending key order, or `None` if the backing is unordered (the
    /// server answers with an error frame).
    fn scan(&self, from: u64, n: usize) -> Option<Vec<(u64, u64)>>;

    /// Element count (`STATS`; same non-linearizable caveat as
    /// [`ConcurrentMap::size`]).
    fn size(&self) -> usize;

    /// Number of shards behind this store (`STATS`).
    fn shard_count(&self) -> usize;

    /// Aggregate operation/hit counters for `STATS` (shard-layer traffic
    /// counters where available).
    fn ops_and_hits(&self) -> (u64, u64);
}

/// The usable key interval servers enforce before touching the store
/// (protocol arguments are raw `u64`s; the structures reserve `0` and
/// `u64::MAX` for sentinels).
pub const KEY_RANGE: (u64, u64) = (KEY_MIN, KEY_MAX);

/// [`KvStore`] over a [`ShardedMap`] of any point-operation backing.
pub struct ShardedStore<M> {
    map: Arc<ShardedMap<M>>,
}

impl<M: ConcurrentMap + 'static> ShardedStore<M> {
    /// Wraps a shared sharded map (the caller keeps its handle).
    pub fn new(map: Arc<ShardedMap<M>>) -> Self {
        Self { map }
    }

    /// The underlying map handle.
    pub fn map(&self) -> &Arc<ShardedMap<M>> {
        &self.map
    }
}

impl<M: ConcurrentMap + 'static> KvStore for ShardedStore<M> {
    fn get(&self, key: u64) -> Option<u64> {
        self.map.search(key)
    }

    fn set(&self, key: u64, value: u64) -> bool {
        self.map.insert(key, value)
    }

    fn del(&self, key: u64) -> Option<u64> {
        self.map.remove(key)
    }

    fn multi_get(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.map.multi_get(keys)
    }

    fn multi_set(&self, entries: &[(u64, u64)]) -> Vec<bool> {
        self.map.multi_insert(entries)
    }

    fn scan(&self, _from: u64, _n: usize) -> Option<Vec<(u64, u64)>> {
        None
    }

    fn size(&self) -> usize {
        self.map.size()
    }

    fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    fn ops_and_hits(&self) -> (u64, u64) {
        let s = self.map.total_stats();
        (s.operations(), s.hits)
    }
}

/// [`KvStore`] over a [`ShardedMap`] of an ordered backing: everything
/// [`ShardedStore`] does (it wraps one and delegates), plus `SCAN` through
/// the shard layer's merged range scans.
pub struct ShardedOrderedStore<M> {
    inner: ShardedStore<M>,
}

impl<M: OrderedMap + 'static> ShardedOrderedStore<M> {
    /// Wraps a shared sharded map over an ordered backing.
    pub fn new(map: Arc<ShardedMap<M>>) -> Self {
        Self { inner: ShardedStore::new(map) }
    }

    /// The underlying map handle.
    pub fn map(&self) -> &Arc<ShardedMap<M>> {
        self.inner.map()
    }
}

impl<M: OrderedMap + 'static> KvStore for ShardedOrderedStore<M> {
    fn get(&self, key: u64) -> Option<u64> {
        self.inner.get(key)
    }

    fn set(&self, key: u64, value: u64) -> bool {
        self.inner.set(key, value)
    }

    fn del(&self, key: u64) -> Option<u64> {
        self.inner.del(key)
    }

    fn multi_get(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.inner.multi_get(keys)
    }

    fn multi_set(&self, entries: &[(u64, u64)]) -> Vec<bool> {
        self.inner.multi_set(entries)
    }

    fn scan(&self, from: u64, n: usize) -> Option<Vec<(u64, u64)>> {
        Some(self.inner.map.scan(from.clamp(KEY_MIN, KEY_MAX), n))
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn ops_and_hits(&self) -> (u64, u64) {
        self.inner.ops_and_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;
    use ascylib::skiplist::FraserOptSkipList;

    #[test]
    fn sharded_store_serves_point_and_batched_ops() {
        let map = Arc::new(ShardedMap::new(4, |_| ClhtLb::with_capacity(64)));
        let store = ShardedStore::new(Arc::clone(&map));
        assert!(store.set(1, 10));
        assert!(!store.set(1, 11), "SET is insert-if-absent");
        assert_eq!(store.get(1), Some(10));
        assert_eq!(store.multi_set(&[(2, 20), (1, 99)]), vec![true, false]);
        assert_eq!(store.multi_get(&[1, 2, 3]), vec![Some(10), Some(20), None]);
        assert_eq!(store.del(2), Some(20));
        assert_eq!(store.del(2), None);
        assert_eq!(store.size(), 1);
        assert_eq!(store.shard_count(), 4);
        assert!(store.scan(1, 8).is_none(), "hash shards have no order to scan");
        // The outside handle observes the same data.
        assert_eq!(map.search(1), Some(10));
        let (ops, hits) = store.ops_and_hits();
        assert!(ops >= 8);
        assert!(hits >= 3);
    }

    #[test]
    fn ordered_store_scans_across_shards_in_key_order() {
        let map = Arc::new(ShardedMap::new(3, |_| FraserOptSkipList::new()));
        let store = ShardedOrderedStore::new(Arc::clone(&map));
        for k in (2..=40u64).step_by(2) {
            assert!(store.set(k, k * 5));
        }
        let got = store.scan(7, 5).expect("ordered backing supports scans");
        assert_eq!(got, vec![(8, 40), (10, 50), (12, 60), (14, 70), (16, 80)]);
        // `from = 0` is clamped into the usable key range instead of
        // tripping the structures' sentinel assertions.
        let from_start = store.scan(0, 3).unwrap();
        assert_eq!(from_start, vec![(2, 10), (4, 20), (6, 30)]);
        assert_eq!(store.scan(41, 10).unwrap(), vec![]);
    }
}
