//! What the server serves: a byte-valued keyspace abstraction over the
//! blob layer.
//!
//! The connection loop dispatches frames against a [`KvStore`] trait object,
//! so one server binary can front any backing. Values are variable-length
//! byte strings stored in [`ascylib_shard::BlobMap`] (per-shard ssmem
//! arenas, epoch-guarded copy-out reads); the sharded index itself moves
//! only 64-bit handles. Two adapters cover the library:
//!
//! * [`BlobStore`] — any [`ConcurrentMap`] backing (hash tables included).
//!   `SCAN` frames are answered with an error: the backing has no key order
//!   to scan in.
//! * [`BlobOrderedStore`] — ordered backings (lists, skip lists, BSTs),
//!   adding `SCAN` with payload copy-out via the shard layer's k-way-merged
//!   scans.
//!
//! Both adapters hold an `Arc` to the blob map, so the process that started
//! the server keeps a handle for direct inspection (the loopback tests
//! compare final server state against a sequential model through that
//! handle). `MGET` goes through the shard layer's batched `multi_get_into`
//! (each shard visited once, no per-batch result allocation).

use std::sync::Arc;

use ascylib::api::{ConcurrentMap, KEY_MAX, KEY_MIN};
use ascylib::ordered::OrderedMap;
use ascylib_shard::{BlobMap, CacheStatsSnapshot, HotKeyStatsSnapshot};

/// The serving-side keyspace interface: what a wire frame can do to the
/// data. All methods are `&self` and thread-safe; worker threads share one
/// store. Reads have copy-out semantics (the caller's buffers are cleared
/// and refilled), so the store never hands out references into epoch-managed
/// memory.
pub trait KvStore: Send + Sync + 'static {
    /// Point lookup (`GET`): copies the value into `out`; `true` if found.
    fn get(&self, key: u64, out: &mut Vec<u8>) -> bool;

    /// Upsert (`SET`); `true` if the key was newly created, `false` if an
    /// existing value was replaced.
    fn set(&self, key: u64, value: &[u8]) -> bool;

    /// Remove (`DEL`); `true` if the key was present.
    fn del(&self, key: u64) -> bool;

    /// Batched lookup (`MGET`): clears `out` and refills it with per-key
    /// answers in input order.
    fn multi_get(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>);

    /// Batched upsert (`MSET`), outcomes in input order.
    fn multi_set(&self, entries: &[(u64, Vec<u8>)]) -> Vec<bool>;

    /// Ordered scan (`SCAN`): up to `n` `(key, value)` pairs with key
    /// `>= from` in ascending key order, or `None` if the backing is
    /// unordered (the server answers with an error frame).
    fn scan(&self, from: u64, n: usize) -> Option<Vec<(u64, Vec<u8>)>>;

    /// Element count (`STATS`; same non-linearizable caveat as
    /// [`ConcurrentMap::size`]).
    fn size(&self) -> usize;

    /// Number of shards behind this store (`STATS`).
    fn shard_count(&self) -> usize;

    /// Aggregate operation/hit counters for `STATS` (shard-layer traffic
    /// counters where available).
    fn ops_and_hits(&self) -> (u64, u64);

    /// Live payload bytes currently stored (`STATS`).
    fn value_bytes(&self) -> u64;

    /// The shard index `key` routes to, or `None` when the backing has no
    /// shard notion — observability surfaces (`SLOWLOG`, `MONITOR`) use it
    /// to attribute a slow request to a contended shard. Default: none.
    fn shard_of(&self, key: u64) -> Option<usize> {
        let _ = key;
        None
    }

    /// Hot-key engine counters (`STATS`/`INFO hotkeys`/`METRICS`), when
    /// the backing map carries a hot-key engine. Default: none.
    fn hotkey_stats(&self) -> Option<HotKeyStatsSnapshot> {
        None
    }

    /// Current top-k hot keys as `(key, frequency estimate)` pairs,
    /// hottest first (`INFO hotkeys`). Default: empty.
    fn hot_keys(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Upsert with a relative expiry (`SET … EX`): the value expires
    /// `ttl_ms` milliseconds after the store. Default: plain upsert — the
    /// TTL is ignored (stores without a cache tier reject the verb at the
    /// connection layer via [`cache_stats`](Self::cache_stats)).
    fn set_ex(&self, key: u64, value: &[u8], ttl_ms: u64) -> bool {
        let _ = ttl_ms;
        self.set(key, value)
    }

    /// Re-arm (or arm) the expiry of a live key (`EXPIRE`); `true` if the
    /// key was present and alive. Default: unsupported, `false`.
    fn expire(&self, key: u64, ttl_ms: u64) -> bool {
        let _ = (key, ttl_ms);
        false
    }

    /// Remaining lifetime (`TTL`): `None` = missing, `Some(None)` =
    /// present without expiry, `Some(Some(ms))` = milliseconds left.
    /// Default: missing.
    fn ttl_ms(&self, key: u64) -> Option<Option<u64>> {
        let _ = key;
        None
    }

    /// Clear the expiry of a live key (`PERSIST`); `true` if the key was
    /// present and alive. Default: unsupported, `false`.
    fn persist(&self, key: u64) -> bool {
        let _ = key;
        false
    }

    /// Cache-tier counters (budget/live gauges, eviction/expiry counters)
    /// for `STATS`/`INFO cache`/`METRICS`. `None` means the store has no
    /// cache tier — the connection layer then rejects the expiry verbs
    /// in-band and omits the cache observability surfaces. Default: none.
    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        None
    }
}

/// The usable key interval servers enforce before touching the store
/// (protocol arguments are raw `u64`s; the structures reserve `0` and
/// `u64::MAX` for sentinels).
pub const KEY_RANGE: (u64, u64) = (KEY_MIN, KEY_MAX);

/// [`KvStore`] over a [`BlobMap`] of any point-operation backing.
pub struct BlobStore<M> {
    map: Arc<BlobMap<M>>,
}

impl<M: ConcurrentMap + 'static> BlobStore<M> {
    /// Wraps a shared blob map (the caller keeps its handle).
    pub fn new(map: Arc<BlobMap<M>>) -> Self {
        Self { map }
    }

    /// The underlying map handle.
    pub fn map(&self) -> &Arc<BlobMap<M>> {
        &self.map
    }
}

impl<M: ConcurrentMap + 'static> KvStore for BlobStore<M> {
    fn get(&self, key: u64, out: &mut Vec<u8>) -> bool {
        self.map.get(key, out)
    }

    fn set(&self, key: u64, value: &[u8]) -> bool {
        self.map.set(key, value)
    }

    fn del(&self, key: u64) -> bool {
        self.map.del(key)
    }

    fn multi_get(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>) {
        self.map.multi_get_into(keys, out)
    }

    fn multi_set(&self, entries: &[(u64, Vec<u8>)]) -> Vec<bool> {
        self.map.multi_set(entries)
    }

    fn scan(&self, _from: u64, _n: usize) -> Option<Vec<(u64, Vec<u8>)>> {
        None
    }

    fn size(&self) -> usize {
        self.map.len()
    }

    fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    fn shard_of(&self, key: u64) -> Option<usize> {
        Some(self.map.shard_of(key))
    }

    fn ops_and_hits(&self) -> (u64, u64) {
        let s = self.map.total_stats();
        (s.operations(), s.hits)
    }

    fn value_bytes(&self) -> u64 {
        self.map.total_arena_stats().live_bytes()
    }

    fn hotkey_stats(&self) -> Option<HotKeyStatsSnapshot> {
        self.map.hotkey_stats()
    }

    fn hot_keys(&self) -> Vec<(u64, u64)> {
        self.map.hot_keys()
    }

    fn set_ex(&self, key: u64, value: &[u8], ttl_ms: u64) -> bool {
        self.map.set_ex(key, value, ttl_ms)
    }

    fn expire(&self, key: u64, ttl_ms: u64) -> bool {
        self.map.expire(key, ttl_ms)
    }

    fn ttl_ms(&self, key: u64) -> Option<Option<u64>> {
        self.map.ttl_ms(key)
    }

    fn persist(&self, key: u64) -> bool {
        self.map.persist(key)
    }

    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        Some(self.map.cache_stats())
    }
}

/// [`KvStore`] over a [`BlobMap`] of an ordered backing: everything
/// [`BlobStore`] does (it wraps one and delegates), plus `SCAN` through the
/// shard layer's merged range scans with payload copy-out.
pub struct BlobOrderedStore<M> {
    inner: BlobStore<M>,
}

impl<M: OrderedMap + 'static> BlobOrderedStore<M> {
    /// Wraps a shared blob map over an ordered backing.
    pub fn new(map: Arc<BlobMap<M>>) -> Self {
        Self { inner: BlobStore::new(map) }
    }

    /// The underlying map handle.
    pub fn map(&self) -> &Arc<BlobMap<M>> {
        self.inner.map()
    }
}

impl<M: OrderedMap + 'static> KvStore for BlobOrderedStore<M> {
    fn get(&self, key: u64, out: &mut Vec<u8>) -> bool {
        self.inner.get(key, out)
    }

    fn set(&self, key: u64, value: &[u8]) -> bool {
        self.inner.set(key, value)
    }

    fn del(&self, key: u64) -> bool {
        self.inner.del(key)
    }

    fn multi_get(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>) {
        self.inner.multi_get(keys, out)
    }

    fn multi_set(&self, entries: &[(u64, Vec<u8>)]) -> Vec<bool> {
        self.inner.multi_set(entries)
    }

    fn scan(&self, from: u64, n: usize) -> Option<Vec<(u64, Vec<u8>)>> {
        // Bound the reply's materialized payload, the outbound analogue of
        // the request-side batch cap: a keyspace of maximum-size values
        // must not let one SCAN frame collect hundreds of megabytes.
        // Truncation is transparent to paging clients (resume from the
        // last returned key + 1, same as the count cap).
        Some(self.inner.map.scan_bounded(
            from.clamp(KEY_MIN, KEY_MAX),
            n,
            crate::protocol::MAX_SCAN_REPLY_PAYLOAD,
        ))
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn shard_of(&self, key: u64) -> Option<usize> {
        self.inner.shard_of(key)
    }

    fn ops_and_hits(&self) -> (u64, u64) {
        self.inner.ops_and_hits()
    }

    fn value_bytes(&self) -> u64 {
        self.inner.value_bytes()
    }

    fn hotkey_stats(&self) -> Option<HotKeyStatsSnapshot> {
        self.inner.hotkey_stats()
    }

    fn hot_keys(&self) -> Vec<(u64, u64)> {
        self.inner.hot_keys()
    }

    fn set_ex(&self, key: u64, value: &[u8], ttl_ms: u64) -> bool {
        self.inner.set_ex(key, value, ttl_ms)
    }

    fn expire(&self, key: u64, ttl_ms: u64) -> bool {
        self.inner.expire(key, ttl_ms)
    }

    fn ttl_ms(&self, key: u64) -> Option<Option<u64>> {
        self.inner.ttl_ms(key)
    }

    fn persist(&self, key: u64) -> bool {
        self.inner.persist(key)
    }

    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        self.inner.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;
    use ascylib::skiplist::FraserOptSkipList;

    #[test]
    fn blob_store_serves_point_and_batched_ops() {
        let map = Arc::new(BlobMap::new(4, |_| ClhtLb::with_capacity(64)));
        let store = BlobStore::new(Arc::clone(&map));
        assert!(store.set(1, b"ten"));
        assert!(!store.set(1, b"ten, revised"), "SET is an upsert");
        let mut out = Vec::new();
        assert!(store.get(1, &mut out));
        assert_eq!(out, b"ten, revised");
        assert_eq!(
            store.multi_set(&[(2, b"twenty".to_vec()), (1, b"again".to_vec())]),
            vec![true, false]
        );
        let mut batch = Vec::new();
        store.multi_get(&[1, 2, 3], &mut batch);
        assert_eq!(
            batch,
            vec![Some(b"again".to_vec()), Some(b"twenty".to_vec()), None]
        );
        assert!(store.del(2));
        assert!(!store.del(2));
        assert_eq!(store.size(), 1);
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.value_bytes(), b"again".len() as u64);
        assert!(store.scan(1, 8).is_none(), "hash shards have no order to scan");
        // Shard attribution agrees with the map's own routing.
        assert_eq!(store.shard_of(1), Some(map.shard_of(1)));
        assert!(store.shard_of(1).unwrap() < store.shard_count());
        // The outside handle observes the same data.
        assert_eq!(map.get_owned(1), Some(b"again".to_vec()));
        let (ops, hits) = store.ops_and_hits();
        assert!(ops >= 8);
        assert!(hits >= 3);
    }

    #[test]
    fn expiry_verbs_round_trip_through_the_trait() {
        let map = Arc::new(BlobMap::new(2, |_| ClhtLb::with_capacity(64)));
        let store = BlobStore::new(Arc::clone(&map));
        assert!(store.cache_stats().is_some(), "blob stores always expose the cache tier");
        assert!(store.set_ex(1, b"lease", 60_000));
        match store.ttl_ms(1) {
            Some(Some(ms)) => assert!(ms <= 60_000 && ms > 50_000, "ttl {ms}ms"),
            other => panic!("expected a live TTL, got {other:?}"),
        }
        assert!(store.expire(1, 120_000));
        assert!(matches!(store.ttl_ms(1), Some(Some(ms)) if ms > 60_000));
        assert!(store.persist(1));
        assert_eq!(store.ttl_ms(1), Some(None));
        assert!(!store.expire(99, 1000), "missing key");
        assert!(!store.persist(99));
        assert_eq!(store.ttl_ms(99), None);
        // A plain set has no expiry.
        store.set(2, b"v");
        assert_eq!(store.ttl_ms(2), Some(None));
    }

    #[test]
    fn ordered_store_scans_across_shards_in_key_order() {
        let map = Arc::new(BlobMap::new(3, |_| FraserOptSkipList::new()));
        let store = BlobOrderedStore::new(Arc::clone(&map));
        for k in (2..=40u64).step_by(2) {
            assert!(store.set(k, format!("v{k}").as_bytes()));
        }
        let got = store.scan(7, 3).expect("ordered backing supports scans");
        assert_eq!(
            got,
            vec![
                (8, b"v8".to_vec()),
                (10, b"v10".to_vec()),
                (12, b"v12".to_vec())
            ]
        );
        // `from = 0` is clamped into the usable key range instead of
        // tripping the structures' sentinel assertions.
        let from_start = store.scan(0, 2).unwrap();
        assert_eq!(from_start, vec![(2, b"v2".to_vec()), (4, b"v4".to_vec())]);
        assert_eq!(store.scan(41, 10).unwrap(), vec![]);
    }

    #[test]
    fn scan_replies_are_bounded_by_the_payload_budget() {
        use crate::protocol::{MAX_SCAN_REPLY_PAYLOAD, MAX_VALUE};
        let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
        let store = BlobOrderedStore::new(Arc::clone(&map));
        // 70 maximum-size values = ~4.4 MiB stored; one SCAN frame must
        // stop at the 4 MiB reply budget instead of materializing it all.
        let value = vec![0x5Au8; MAX_VALUE];
        for k in 1..=70u64 {
            store.set(k, &value);
        }
        let got = store.scan(1, 4096).unwrap();
        let full_values = MAX_SCAN_REPLY_PAYLOAD / MAX_VALUE;
        assert_eq!(got.len(), full_values, "soft cap: stop once the budget is reached");
        let payload: usize = got.iter().map(|(_, v)| v.len()).sum();
        assert!(payload <= MAX_SCAN_REPLY_PAYLOAD + MAX_VALUE);
        // Paging from the last key + 1 reaches the rest.
        let last = got.last().unwrap().0;
        let rest = store.scan(last + 1, 4096).unwrap();
        assert_eq!(got.len() + rest.len(), 70);
    }
}
