//! Event-loop behaviour the request/reply tests cannot see: connection
//! scale beyond the worker count, adversarial slow peers, idle-timeout
//! eviction, and the observability counters that make all of it visible.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ascylib::skiplist::FraserOptSkipList;
use ascylib_server::{BlobOrderedStore, Client, Server, ServerConfig, ServerHandle};
use ascylib_shard::BlobMap;

fn start(config: ServerConfig) -> ServerHandle {
    let map = Arc::new(BlobMap::new(4, |_| FraserOptSkipList::new()));
    Server::start("127.0.0.1:0", BlobOrderedStore::new(map), config).expect("bind ephemeral port")
}

/// Sends one `PING` on a raw stream and reads back `+PONG\r\n`.
fn ping(stream: &mut TcpStream) {
    stream.write_all(b"PING\r\n").expect("write PING");
    let mut buf = [0u8; 7];
    stream.read_exact(&mut buf).expect("read PONG");
    assert_eq!(&buf, b"+PONG\r\n");
}

/// The readiness loop decouples connection count from thread count: a
/// four-worker server must hold a thousand live connections at once and
/// answer on every one of them.
#[test]
fn thousand_concurrent_connections_on_four_workers() {
    let _ = polling::raise_fd_limit();
    const CONNS: usize = 1000;
    let server = start(ServerConfig::default());

    let mut streams: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let stream = TcpStream::connect(server.addr())
            .unwrap_or_else(|e| panic!("connect #{i} failed: {e}"));
        streams.push(stream);
    }
    // Every connection is answered while all the others stay open.
    for stream in streams.iter_mut() {
        ping(stream);
    }
    let stats = server.stats();
    assert_eq!(stats.curr_connections, CONNS as u64, "all conns live simultaneously");
    assert_eq!(stats.accepted, CONNS as u64);
    assert_eq!(stats.frames, CONNS as u64, "one PING each");
    assert_eq!(stats.errors, 0);

    // Second round in reverse order: slots keep working after the fan-in.
    for stream in streams.iter_mut().rev() {
        ping(stream);
    }
    drop(streams);
    let stats = server.join();
    assert_eq!(stats.connections, CONNS as u64, "every connection retired");
    assert_eq!(stats.curr_connections, 0);
    assert_eq!(stats.frames, 2 * CONNS as u64);
}

/// A peer that trickles its request one byte at a time must not stall
/// anyone else: with fewer workers than misbehaving peers would need,
/// fast connections keep getting answered at full speed.
#[test]
fn slow_loris_trickle_does_not_stall_other_connections() {
    let server = start(ServerConfig { workers: 1, ..ServerConfig::default() });
    let addr = server.addr();

    let trickler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("trickler connect");
        for &byte in b"GET 987654\r\n" {
            stream.write_all(&[byte]).expect("trickle byte");
            std::thread::sleep(Duration::from_millis(15));
        }
        let mut buf = [0u8; 3];
        stream.read_exact(&mut buf).expect("trickled frame still answered");
        assert_eq!(&buf, b"_\r\n", "GET miss on the trickled key");
    });

    // While the trickle is in flight, a well-behaved client on the same
    // single worker gets hundreds of round trips through.
    let mut client = Client::connect(addr).expect("fast client connect");
    let start_rtts = Instant::now();
    for i in 0..200u64 {
        client.set(i + 1, b"v").expect("fast set");
        assert_eq!(client.get(i + 1).expect("fast get").as_deref(), Some(&b"v"[..]));
    }
    let elapsed = start_rtts.elapsed();
    trickler.join().expect("trickler thread");
    assert!(
        elapsed < Duration::from_millis(2_000),
        "400 loopback round trips took {elapsed:?}; the trickler stalled the event loop"
    );
    client.quit().expect("quit");
    let stats = server.join();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.connections, 2);
}

/// Idle connections are evicted at the configured timeout — and the
/// eviction is visible in the `timeouts` counter — while a connection
/// that keeps talking lives on.
#[test]
fn idle_connections_are_evicted_but_active_ones_survive() {
    let server = start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });

    let mut idlers: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(server.addr()).expect("idler connect"))
        .collect();
    let mut talker = TcpStream::connect(server.addr()).expect("talker connect");
    for stream in idlers.iter_mut() {
        ping(stream); // prove the connection was live before going idle
    }

    // Keep the talker chatty well past the idle window; the idlers say
    // nothing and must be evicted underneath it.
    let deadline = Instant::now() + Duration::from_millis(450);
    while Instant::now() < deadline {
        ping(&mut talker);
        std::thread::sleep(Duration::from_millis(25));
    }

    // An evicted connection reads EOF (or a reset, if the kernel already
    // tore the socket down) — never a hang.
    for (i, stream) in idlers.iter_mut().enumerate() {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set read timeout");
        let mut buf = [0u8; 16];
        match stream.read(&mut buf) {
            Ok(0) => {}
            Ok(n) => panic!("idler {i} got {n} unexpected bytes"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ) => {}
            Err(e) => panic!("idler {i} expected eviction, got {e}"),
        }
    }
    ping(&mut talker); // still alive after the purge

    let stats = server.stats();
    assert_eq!(stats.timeouts, 3, "each idler evicted exactly once");
    assert_eq!(stats.curr_connections, 1, "only the talker survives");
    drop(talker);
    let stats = server.join();
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.curr_connections, 0);
    assert_eq!(stats.errors, 0);
}

/// The event-loop counters tell a coherent story end to end: accepted
/// splits into retired-plus-live at every instant, wakeups accumulate,
/// and the gauge drains to zero on shutdown.
#[test]
fn stats_counters_stay_coherent_across_connection_lifecycles() {
    let server = start(ServerConfig::default());

    let mut a = Client::connect(server.addr()).expect("connect a");
    let mut b = Client::connect(server.addr()).expect("connect b");
    a.set(1, b"one").expect("set");
    assert_eq!(b.get(1).expect("get").as_deref(), Some(&b"one"[..]));

    let mid = server.stats();
    assert_eq!(mid.accepted, 2);
    assert_eq!(mid.curr_connections, 2);
    assert_eq!(mid.connections, 0, "nothing retired yet");
    assert!(mid.wakeups >= 2, "each served frame needed a readiness wakeup");
    assert_eq!(mid.timeouts, 0);

    a.quit().expect("quit a");
    // Quit is acknowledged (`+BYE`) before the slot retires; poll briefly
    // for the counters to converge.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = server.stats();
        if s.connections == 1 && s.curr_connections == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "retirement never reflected in stats: {s:?}");
        std::thread::sleep(Duration::from_millis(5));
    }

    drop(b);
    let end = server.join();
    assert_eq!(end.accepted, 2);
    assert_eq!(end.connections, 2, "accepted splits into retired + live; all retired now");
    assert_eq!(end.curr_connections, 0);
    assert_eq!(end.errors, 0);
    assert!(end.bytes_in > 0 && end.bytes_out > 0);
}
