//! Loopback integration tests: real sockets, concurrent pipelined clients,
//! final server state checked against a sequential model.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ascylib::api::ConcurrentMap;
use ascylib::skiplist::FraserOptSkipList;
use ascylib_server::client::{decode_optional_int, decode_pair};
use ascylib_server::{Client, Reply, Request, Server, ServerConfig, ShardedOrderedStore};
use ascylib_shard::ShardedMap;

const CLIENTS: usize = 4;
const SPAN: u64 = 512;
const ROUNDS: usize = 120;
const DEPTH: usize = 16;

/// Pages through the whole keyspace with `SCAN` cursors.
fn full_scan(client: &mut Client) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut from = 1u64;
    loop {
        let page = client.scan(from, 256).expect("scan page");
        let Some(&(last, _)) = page.last() else { break };
        out.extend(page);
        from = last + 1;
    }
    out
}

/// The acceptance scenario: ≥4 concurrent pipelined clients run a mixed
/// GET/SET/DEL/SCAN workload against one server over a `ShardedMap`; each
/// client owns a disjoint key range and mirrors its mutations on a local
/// `BTreeMap`, so after the run the server's contents must equal the union
/// of the sequential models — and every GET can be checked against the
/// model *while* the run is concurrent, because nobody else touches those
/// keys.
#[test]
fn concurrent_pipelined_clients_match_the_sequential_model() {
    let map = Arc::new(ShardedMap::new(4, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        ShardedOrderedStore::new(Arc::clone(&map)),
        ServerConfig::for_connections(CLIENTS + 1),
    )
    .expect("bind");
    let addr = server.addr();

    let models: Vec<BTreeMap<u64, u64>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS as u64 {
            handles.push(scope.spawn(move || {
                let base = 1 + c * SPAN;
                let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                let mut client = Client::connect(addr).expect("connect");
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ (c + 1));
                for round in 0..ROUNDS {
                    // Build one pipelined batch of mixed operations over
                    // this client's private key range, mirroring mutations
                    // on the model in queue order.
                    let mut batch: Vec<Request> = Vec::with_capacity(DEPTH);
                    let mut expected: Vec<Option<Option<u64>>> = Vec::with_capacity(DEPTH);
                    for _ in 0..DEPTH {
                        let key = base + rng.random_range(0..SPAN);
                        match rng.random_range(0..100u32) {
                            0..=39 => {
                                batch.push(Request::Get(key));
                                expected.push(Some(model.get(&key).copied()));
                            }
                            40..=69 => {
                                batch.push(Request::Set(key, key * 3 + round as u64));
                                model.entry(key).or_insert(key * 3 + round as u64);
                                expected.push(None);
                            }
                            70..=89 => {
                                batch.push(Request::Del(key));
                                model.remove(&key);
                                expected.push(None);
                            }
                            _ => {
                                batch.push(Request::Scan(key, 8));
                                expected.push(None);
                            }
                        }
                    }
                    let mut p = client.pipeline();
                    for req in &batch {
                        p.push(req);
                    }
                    let replies = p.run().expect("pipeline run");
                    assert_eq!(replies.len(), batch.len());
                    for ((req, reply), expect) in batch.iter().zip(&replies).zip(&expected) {
                        match req {
                            Request::Get(_) => {
                                let got = decode_optional_int(reply.clone()).expect("GET reply");
                                assert_eq!(
                                    got,
                                    expect.expect("GET expectation recorded"),
                                    "client {c}: GET must match the private-range model"
                                );
                            }
                            Request::Scan(from, n) => {
                                // Scans cross other clients' live ranges, so
                                // only shape is checkable mid-run: ascending
                                // keys, within bounds, at most n.
                                let pairs: Vec<(u64, u64)> = match reply {
                                    Reply::Array(elems) => elems
                                        .iter()
                                        .map(|e| decode_pair(e.clone()).expect("pair"))
                                        .collect(),
                                    other => panic!("SCAN reply {other:?}"),
                                };
                                assert!(pairs.len() <= *n);
                                assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
                                assert!(pairs.iter().all(|&(k, _)| k >= *from));
                            }
                            _ => assert!(
                                matches!(reply, Reply::Int(_) | Reply::Null),
                                "SET/DEL reply {reply:?}"
                            ),
                        }
                    }
                }
                client.quit().expect("quit");
                model
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Union of the sequential models == final server contents.
    let mut combined: BTreeMap<u64, u64> = BTreeMap::new();
    for model in &models {
        combined.extend(model.iter().map(|(&k, &v)| (k, v)));
    }

    // Check through the wire (paged SCAN + MGET)...
    let mut checker = Client::connect(addr).expect("connect checker");
    let scanned = full_scan(&mut checker);
    let expected: Vec<(u64, u64)> = combined.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(scanned, expected, "full SCAN sweep must equal the merged sequential model");
    let all_keys: Vec<u64> = (1..=CLIENTS as u64 * SPAN).collect();
    for chunk in all_keys.chunks(512) {
        let answers = checker.mget(chunk).expect("mget");
        for (&k, got) in chunk.iter().zip(answers) {
            assert_eq!(got, combined.get(&k).copied(), "MGET key {k}");
        }
    }
    checker.quit().expect("quit checker");

    // ...and through the in-process handle the test kept.
    assert_eq!(map.size(), combined.len());
    for (&k, &v) in &combined {
        assert_eq!(map.search(k), Some(v), "in-process view of key {k}");
    }
    let stats = server.join();
    assert_eq!(stats.errors, 0, "a well-formed run must produce no error frames");
    assert_eq!(stats.connections, CLIENTS as u64 + 1);
}

/// Wire-level resynchronization: a malformed frame in the middle of a
/// pipelined burst costs exactly one `-ERR` reply, and the rest of the
/// burst executes in order.
#[test]
fn malformed_frame_mid_pipeline_resynchronizes() {
    use std::io::{Read, Write};
    let map = Arc::new(ShardedMap::new(2, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        ShardedOrderedStore::new(map),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"SET 1 10\r\nGARBAGE \x01\x02\r\nGET 1\r\nSCAN 1 4\r\nQUIT\r\n").unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).unwrap();
    assert_eq!(reply, ":1\r\n-ERR illegal byte in frame\r\n:10\r\n*1\r\n=1 10\r\n+BYE\r\n");
    let stats = server.join();
    assert_eq!(stats.errors, 1);
}

/// STATS over the wire reflects the traffic that produced it.
#[test]
fn stats_frame_reports_store_and_server_counters() {
    let map = Arc::new(ShardedMap::new(3, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        ShardedOrderedStore::new(map),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut c = Client::connect(server.addr()).unwrap();
    for k in 1..=10u64 {
        assert!(c.set(k, k).unwrap());
    }
    let stats = c.stats().unwrap();
    let field = |name: &str| -> u64 {
        stats
            .split(' ')
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(field("size"), 10);
    assert_eq!(field("shards"), 3);
    assert_eq!(field("ops"), 10, "ten SETs before the STATS frame");
    assert_eq!(field("frames"), 11);
    assert!(field("bytes_in") > 0);
    assert_eq!(field("errors"), 0);
    c.quit().unwrap();
    server.join();
}
