//! Loopback integration tests: real sockets, concurrent pipelined clients,
//! binary payloads, final server state checked against a sequential model.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use ascylib::skiplist::FraserOptSkipList;
use ascylib_server::client::{decode_optional_bulk, decode_pair};
use ascylib_server::protocol::MAX_VALUE;
use ascylib_server::{BlobOrderedStore, Client, Reply, Request, Server, ServerConfig};
use ascylib_shard::BlobMap;

const CLIENTS: usize = 4;
const SPAN: u64 = 512;
const ROUNDS: usize = 100;
const DEPTH: usize = 16;

/// Pages through the whole keyspace with `SCAN` cursors.
fn full_scan(client: &mut Client) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    let mut from = 1u64;
    loop {
        let page = client.scan(from, 256).expect("scan page");
        let Some((last, _)) = page.last() else { break };
        from = last + 1;
        out.extend(page);
    }
    out
}

/// A deterministic binary value: length and contents derive from `(key,
/// round)`, and the bytes deliberately include NULs, CRs, and LFs.
fn value_for(key: u64, round: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(key.rotate_left(17) ^ round);
    let len = rng.random_range(0..128u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    if len >= 4 {
        v[0] = 0;
        v[1] = b'\n';
        v[2] = b'\r';
    }
    v
}

/// The acceptance scenario: ≥4 concurrent pipelined clients run a mixed
/// GET/SET/DEL/SCAN workload against one server over a `BlobMap`; each
/// client owns a disjoint key range and mirrors its mutations on a local
/// `BTreeMap<u64, Vec<u8>>`, so after the run the server's contents must
/// equal the union of the sequential models — and every GET can be checked
/// against the model *while* the run is concurrent, because nobody else
/// touches those keys.
#[test]
fn concurrent_pipelined_clients_match_the_sequential_model() {
    let map = Arc::new(BlobMap::new(4, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        BlobOrderedStore::new(Arc::clone(&map)),
        ServerConfig::for_connections(CLIENTS + 1),
    )
    .expect("bind");
    let addr = server.addr();

    let results: Vec<(BTreeMap<u64, Vec<u8>>, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS as u64 {
            handles.push(scope.spawn(move || {
                let base = 1 + c * SPAN;
                let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
                let mut gets = 0u64;
                let mut client = Client::connect(addr).expect("connect");
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ (c + 1));
                for round in 0..ROUNDS {
                    // Build one pipelined batch of mixed operations over
                    // this client's private key range, mirroring mutations
                    // on the model in queue order.
                    let mut kinds: Vec<Request> = Vec::with_capacity(DEPTH);
                    let mut expected: Vec<Option<Option<Vec<u8>>>> = Vec::with_capacity(DEPTH);
                    let mut p = client.pipeline();
                    for _ in 0..DEPTH {
                        let key = base + rng.random_range(0..SPAN);
                        match rng.random_range(0..100u32) {
                            0..=39 => {
                                p.get(key);
                                gets += 1;
                                kinds.push(Request::Get(key));
                                expected.push(Some(model.get(&key).cloned()));
                            }
                            40..=69 => {
                                let value = value_for(key, round as u64);
                                p.set(key, &value);
                                // SET is an upsert: the model overwrites.
                                model.insert(key, value.clone());
                                kinds.push(Request::Set(key, value));
                                expected.push(None);
                            }
                            70..=89 => {
                                p.del(key);
                                model.remove(&key);
                                kinds.push(Request::Del(key));
                                expected.push(None);
                            }
                            _ => {
                                p.scan(key, 8);
                                kinds.push(Request::Scan(key, 8));
                                expected.push(None);
                            }
                        }
                    }
                    let replies = p.run().expect("pipeline run");
                    assert_eq!(replies.len(), kinds.len());
                    for ((req, reply), expect) in kinds.iter().zip(&replies).zip(&expected) {
                        match req {
                            Request::Get(_) => {
                                let got =
                                    decode_optional_bulk(reply.clone()).expect("GET reply");
                                assert_eq!(
                                    got.as_ref(),
                                    expect.as_ref().expect("GET expectation recorded").as_ref(),
                                    "client {c}: GET must match the private-range model"
                                );
                            }
                            Request::Scan(from, n) => {
                                // Scans cross other clients' live ranges, so
                                // only shape is checkable mid-run: ascending
                                // keys, within bounds, at most n.
                                let pairs: Vec<(u64, Vec<u8>)> = match reply {
                                    Reply::Array(elems) => elems
                                        .iter()
                                        .map(|e| decode_pair(e.clone()).expect("pair"))
                                        .collect(),
                                    other => panic!("SCAN reply {other:?}"),
                                };
                                assert!(pairs.len() <= *n);
                                assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
                                assert!(pairs.iter().all(|(k, _)| *k >= *from));
                            }
                            _ => assert!(
                                matches!(reply, Reply::Int(_)),
                                "SET/DEL reply {reply:?}"
                            ),
                        }
                    }
                }
                client.quit().expect("quit");
                (model, gets)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let total_gets: u64 = results.iter().map(|(_, g)| g).sum();

    // Union of the sequential models == final server contents.
    let mut combined: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for (model, _) in &results {
        combined.extend(model.iter().map(|(&k, v)| (k, v.clone())));
    }

    // Check through the wire (paged SCAN + MGET)...
    let mut checker = Client::connect(addr).expect("connect checker");
    let scanned = full_scan(&mut checker);
    let expected: Vec<(u64, Vec<u8>)> =
        combined.iter().map(|(&k, v)| (k, v.clone())).collect();
    assert_eq!(scanned, expected, "full SCAN sweep must equal the merged sequential model");
    let all_keys: Vec<u64> = (1..=CLIENTS as u64 * SPAN).collect();
    for chunk in all_keys.chunks(512) {
        let answers = checker.mget(chunk).expect("mget");
        for (&k, got) in chunk.iter().zip(answers) {
            assert_eq!(got, combined.get(&k).cloned(), "MGET key {k}");
        }
    }
    checker.quit().expect("quit checker");

    // ...and through the in-process handle the test kept.
    assert_eq!(map.len(), combined.len());
    for (&k, v) in &combined {
        assert_eq!(map.get_owned(k).as_ref(), Some(v), "in-process view of key {k}");
    }
    // The arena's live-byte accounting agrees with the model exactly.
    assert_eq!(
        map.total_arena_stats().live_bytes(),
        combined.values().map(|v| v.len() as u64).sum::<u64>()
    );
    let stats = server.join();
    assert_eq!(stats.errors, 0, "a well-formed run must produce no error frames");
    assert_eq!(stats.connections, CLIENTS as u64 + 1);
    // Read-outcome coherence: every single-key lookup the run performed —
    // the clients' GETs plus the checker's per-key MGET probes — classified
    // as exactly one hit or one miss.
    assert_eq!(
        stats.hits + stats.misses,
        total_gets + all_keys.len() as u64,
        "hits + misses must equal the keys looked up"
    );
}

/// The value-payload acceptance test: binary values — NUL and newline bytes
/// included — and a maximum-size (64 KiB) payload round-trip through
/// SET/GET/MSET/MGET/SCAN against a sequential model.
#[test]
fn binary_and_max_size_values_round_trip_every_verb() {
    let map = Arc::new(BlobMap::new(3, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        BlobOrderedStore::new(Arc::clone(&map)),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(0xB1A9);

    // SET: every troublesome byte pattern, plus the 64 KiB maximum.
    let mut big = vec![0u8; MAX_VALUE];
    rng.fill_bytes(&mut big);
    let fixtures: Vec<(u64, Vec<u8>)> = vec![
        (1, b"\0\0\0".to_vec()),
        (2, b"\r\n\r\n".to_vec()),
        (3, Vec::new()),
        (4, (0..=255u8).collect()),
        (5, big.clone()),
        (6, b"GET 1\r\nQUIT\r\n".to_vec()), // protocol text as data
    ];
    for (k, v) in &fixtures {
        assert!(c.set(*k, v).expect("SET"), "fresh key {k}");
        model.insert(*k, v.clone());
    }
    // MSET: more binary values, one overwrite of the 64 KiB key.
    let mut big2 = vec![0u8; MAX_VALUE];
    rng.fill_bytes(&mut big2);
    let mset_entries: Vec<(u64, Vec<u8>)> =
        vec![(7, vec![0u8; 1000]), (5, big2.clone()), (8, b"\n".to_vec())];
    let borrowed: Vec<(u64, &[u8])> =
        mset_entries.iter().map(|(k, v)| (*k, v.as_slice())).collect();
    assert_eq!(c.mset(&borrowed).expect("MSET"), vec![true, false, true]);
    for (k, v) in &mset_entries {
        model.insert(*k, v.clone());
    }

    // GET each key against the model.
    for (k, v) in &model {
        assert_eq!(c.get(*k).expect("GET").as_ref(), Some(v), "GET {k}");
    }
    // MGET in one batch (plus a miss).
    let keys: Vec<u64> = model.keys().copied().chain([999]).collect();
    let got = c.mget(&keys).expect("MGET");
    for (k, item) in keys.iter().zip(got) {
        assert_eq!(item, model.get(k).cloned(), "MGET {k}");
    }
    // SCAN sweeps the whole model in key order, payloads intact.
    let swept = full_scan(&mut c);
    let expected: Vec<(u64, Vec<u8>)> =
        model.iter().map(|(&k, v)| (k, v.clone())).collect();
    assert_eq!(swept, expected, "SCAN returns every binary payload in key order");
    // And the in-process handle agrees on the big value.
    assert_eq!(map.get_owned(5), Some(big2));

    // Over-cap SETs are rejected in-band and change nothing.
    let err = c.set(10, &vec![1u8; MAX_VALUE + 1]).expect_err("over cap");
    assert!(err.to_string().contains("exceeds"), "{err}");
    assert_eq!(c.get(10).expect("GET after reject"), None);

    c.quit().expect("quit");
    server.join();
}

/// Wire-level resynchronization: a malformed frame in the middle of a
/// pipelined burst costs exactly one `-ERR` reply, and the rest of the
/// burst executes in order.
#[test]
fn malformed_frame_mid_pipeline_resynchronizes() {
    use std::io::{Read, Write};
    let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        BlobOrderedStore::new(map),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"SET 1 2\r\nXY\r\nGARBAGE \x01\x02\r\nGET 1\r\nSCAN 1 4\r\nQUIT\r\n")
        .unwrap();
    let mut reply = Vec::new();
    s.read_to_end(&mut reply).unwrap();
    assert_eq!(
        reply,
        b":1\r\n-ERR illegal byte in frame\r\n$2\r\nXY\r\n*1\r\n=1 2\r\nXY\r\n+BYE\r\n",
        "got {:?}",
        String::from_utf8_lossy(&reply)
    );
    let stats = server.join();
    assert_eq!(stats.errors, 1);
}

/// STATS over the wire reflects the traffic that produced it.
#[test]
fn stats_frame_reports_store_and_server_counters() {
    let map = Arc::new(BlobMap::new(3, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        BlobOrderedStore::new(map),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut c = Client::connect(server.addr()).unwrap();
    for k in 1..=10u64 {
        assert!(c.set(k, &[7u8; 100]).unwrap());
    }
    assert!(c.get(1).unwrap().is_some());
    assert!(c.get(999).unwrap().is_none());
    let stats = c.stats().unwrap();
    let field = |name: &str| -> u64 {
        stats
            .split(' ')
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(field("size"), 10);
    assert_eq!(field("shards"), 3);
    assert_eq!(field("value_bytes"), 1000, "10 live values of 100 bytes");
    assert_eq!(field("ops"), 12, "ten SETs and two GETs before the STATS frame");
    assert_eq!(field("frames"), 13);
    assert_eq!(field("hits"), 1, "GET 1 found its value");
    assert_eq!(field("misses"), 1, "GET 999 did not");
    assert!(field("bytes_in") > 0);
    assert_eq!(field("errors"), 0);
    c.quit().unwrap();
    server.join();
}

/// End-to-end telemetry: a real loadgen run, then every observability
/// surface — `INFO`, `SLOWLOG`, `METRICS`, and the loadgen's own scrape —
/// checked against the client-side view of the same traffic.
#[test]
fn telemetry_surfaces_reflect_the_run_and_bound_the_client_view() {
    use ascylib_server::loadgen::{self, LoadGenConfig, ValueSize};
    use std::time::Duration;

    let map = Arc::new(BlobMap::new(2, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        BlobOrderedStore::new(map),
        ServerConfig {
            // A zero threshold turns the slow-op log into a full recent-op
            // log, so the deliberate slow op below is captured regardless
            // of how fast this machine is.
            slowlog_threshold: Duration::ZERO,
            ..ServerConfig::for_connections(4)
        },
    )
    .expect("bind");
    let addr = server.addr();

    let cfg = LoadGenConfig {
        connections: 2,
        duration_ms: 120,
        key_range: 512,
        value_size: ValueSize::Fixed(64),
        pipeline_depth: 8,
        ..LoadGenConfig::default()
    };
    let r = loadgen::run(addr, &cfg).expect("loadgen");
    assert!(r.total_ops > 0);
    assert_eq!(r.errors, 0);

    // The loadgen scraped the server's own latency view at end of run. Each
    // request's service time elapses inside the round trip of the batch
    // that carried it, so the server-side p99 must sit within the client's
    // worst batch RTT — plus the histogram's 6.25% bucket-rounding slack.
    let sl = r.server_latency.expect("telemetry is on by default");
    assert!(sl.count >= r.total_ops, "server counted at least the answered ops");
    assert!(sl.p50_ns > 0 && sl.p99_ns >= sl.p50_ns && sl.max_ns >= sl.p999_ns);
    assert!(
        sl.p99_ns <= r.batch_rtt.max + r.batch_rtt.max / 8,
        "server p99 {}ns outside the client envelope (worst batch RTT {}ns)",
        sl.p99_ns,
        r.batch_rtt.max,
    );

    // A deliberately heavy operation: one MSET carrying ~1 MiB of payload.
    let mut c = Client::connect(addr).expect("connect");
    let big = vec![0xABu8; MAX_VALUE];
    let entries: Vec<(u64, &[u8])> = (1000..1015).map(|k| (k, big.as_slice())).collect();
    c.mset(&entries).expect("big MSET");

    // SLOWLOG captured it (newest entries first).
    assert!(c.slowlog_len().expect("len") > 0);
    let slow = c.slowlog_get().expect("slowlog");
    let entry = slow
        .lines()
        .find(|l| l.contains("family=mset"))
        .unwrap_or_else(|| panic!("big MSET missing from slowlog:\n{slow}"));
    assert!(entry.contains("key=1000"), "{entry}");
    assert!(
        entry.contains(&format!("bytes={}", 15 * MAX_VALUE)),
        "payload bytes recorded: {entry}"
    );
    c.slowlog_reset().expect("reset");
    // At threshold zero the RESET frame records *itself* after clearing the
    // rings, so exactly one entry survives its own reset.
    assert_eq!(c.slowlog_len().expect("len after reset"), 1);

    // INFO renders every section; the commands section agrees with the
    // client-side tally on reads (GET hits + misses == GETs answered).
    let info = c.info(None).expect("info");
    for header in ["# server", "# commands", "# latency", "# memory"] {
        assert!(info.contains(header), "INFO missing {header}");
    }
    let field = |name: &str| -> u64 {
        info.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.strip_prefix(':')))
            .unwrap_or_else(|| panic!("missing {name} in INFO"))
            .trim()
            .parse()
            .unwrap()
    };
    assert_eq!(field("cmd_get_ops"), r.gets, "server GET count == client GETs answered");
    assert_eq!(
        field("cmd_get_hits") + field("cmd_get_misses"),
        r.gets,
        "every GET classified as a hit or a miss"
    );
    assert_eq!(field("cmd_get_hits"), r.hits, "hit counts agree across the wire");

    // METRICS is well-formed Prometheus text exposition with real samples.
    let metrics = c.metrics().expect("metrics");
    ascylib_telemetry::expo::validate(&metrics).expect("exposition validates");
    assert!(metrics.contains("ascy_request_duration_ns_bucket"), "{metrics}");
    assert!(metrics.contains("ascy_phase_duration_ns_bucket{phase=\"execute\""), "{metrics}");

    c.quit().expect("quit");
    server.join();
}
