//! Fuzz-style codec tests: the incremental parsers must survive arbitrary
//! byte splits and arbitrary garbage — erroring per frame, never panicking,
//! and always resynchronizing at the next line boundary.

use proptest::prelude::*;

use ascylib_server::protocol::{
    encode_request, wire, ParseError, Reply, ReplyParser, Request, RequestParser, MAX_LINE,
    MAX_SCAN,
};

/// Deterministically builds a request from fuzz integers (the vendored
/// proptest has no enum strategies; this is the projection).
fn request_from(selector: u8, a: u64, b: u64, keys: &[u64]) -> Request {
    let nonempty = |ks: &[u64]| if ks.is_empty() { vec![a] } else { ks.to_vec() };
    match selector % 9 {
        0 => Request::Get(a),
        1 => Request::Set(a, b),
        2 => Request::Del(a),
        3 => Request::MGet(nonempty(keys)),
        4 => Request::MSet(nonempty(keys).iter().map(|&k| (k, k ^ b)).collect()),
        5 => Request::Scan(a, (b as usize) % (MAX_SCAN + 1)),
        6 => Request::Ping,
        7 => Request::Stats,
        _ => Request::Quit,
    }
}

/// Splits `bytes` at fuzz-chosen positions and feeds the chunks one by one,
/// draining after every feed (the worst-case socket delivery pattern).
fn parse_in_random_chunks(
    bytes: &[u8],
    cuts: &[usize],
) -> Vec<Result<Request, ParseError>> {
    let mut positions: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    positions.sort_unstable();
    positions.dedup();
    let mut parser = RequestParser::new();
    let mut out = Vec::new();
    let mut prev = 0;
    for &cut in positions.iter().chain(std::iter::once(&bytes.len())) {
        parser.feed(&bytes[prev..cut]);
        while let Some(item) = parser.next() {
            out.push(item);
        }
        prev = cut;
    }
    parser.feed(&bytes[prev..]);
    while let Some(item) = parser.next() {
        out.push(item);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → split anywhere → parse is the identity, for any request
    /// sequence and any chunking.
    #[test]
    fn encoded_streams_survive_any_split(
        specs in collection::vec((any::<u8>(), any::<u64>(), any::<u64>(),
            collection::vec(any::<u64>(), 0..8)), 1..12),
        cuts in collection::vec(any::<usize>(), 0..24),
    ) {
        let requests: Vec<Request> =
            specs.iter().map(|(s, a, b, ks)| request_from(*s, *a, *b, ks)).collect();
        let mut bytes = Vec::new();
        for r in &requests {
            encode_request(r, &mut bytes);
        }
        let parsed = parse_in_random_chunks(&bytes, &cuts);
        let round_tripped: Vec<Request> =
            parsed.into_iter().map(|item| item.expect("well-formed stream")).collect();
        assert_eq!(round_tripped, requests);
    }

    /// Arbitrary byte soup: the parser never panics, and after the soup a
    /// newline plus a valid frame always parses — whatever state the
    /// garbage left behind, the parser resynchronized.
    #[test]
    fn garbage_never_panics_and_resynchronizes(
        soup in collection::vec(any::<u8>(), 0..2048),
        cuts in collection::vec(any::<usize>(), 0..16),
    ) {
        let mut bytes = soup.clone();
        bytes.extend_from_slice(b"\nPING\r\n");
        let parsed = parse_in_random_chunks(&bytes, &cuts);
        // No panic is the main property; the trailing PING is the
        // resynchronization witness.
        assert_eq!(parsed.last(), Some(&Ok(Request::Ping)));
    }

    /// Soup sprinkled with newlines parses to per-line verdicts; every
    /// error is one of the documented kinds and parsing always terminates.
    #[test]
    fn newline_heavy_garbage_yields_per_line_errors(
        lines in collection::vec(collection::vec(any::<u8>(), 0..64), 1..32),
    ) {
        let mut bytes = Vec::new();
        for l in &lines {
            bytes.extend_from_slice(l);
            bytes.push(b'\n');
        }
        let mut parser = RequestParser::new();
        parser.feed(&bytes);
        let mut items = 0usize;
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        while let Some(_item) = parser.next() {
            items += 1;
            assert!(items <= newlines, "cannot yield more items than terminators");
        }
        // Every newline terminates exactly one line (none can exceed
        // MAX_LINE here), and every terminated line yields one verdict.
        assert_eq!(items, newlines);
    }

    /// The reply parser holds the same never-panic/resynchronize contract.
    #[test]
    fn reply_parser_survives_garbage(
        soup in collection::vec(any::<u8>(), 0..1024),
        cuts in collection::vec(any::<usize>(), 0..8),
    ) {
        let mut bytes = soup.clone();
        bytes.extend_from_slice(b"\n+PONG\r\n");
        let mut positions: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
        positions.sort_unstable();
        positions.dedup();
        let mut parser = ReplyParser::new();
        let mut last = None;
        let mut prev = 0;
        for &cut in positions.iter().chain(std::iter::once(&bytes.len())) {
            parser.feed(&bytes[prev..cut]);
            while let Some(item) = parser.next() {
                last = Some(item);
            }
            prev = cut;
        }
        assert_eq!(last, Some(Ok(Reply::Simple("PONG".into()))));
    }

    /// Server-side reply writers and the client-side parser agree for any
    /// payload values.
    #[test]
    fn reply_writers_round_trip(n in any::<u64>(), k in any::<u64>(), v in any::<u64>(),
                                count in any::<u8>()) {
        let mut bytes = Vec::new();
        wire::int(&mut bytes, n);
        wire::null(&mut bytes);
        wire::pair(&mut bytes, k, v);
        let count = count as usize % 64;
        wire::array_header(&mut bytes, count);
        for i in 0..count {
            wire::int(&mut bytes, i as u64);
        }
        let mut parser = ReplyParser::new();
        parser.feed(&bytes);
        assert_eq!(parser.next(), Some(Ok(Reply::Int(n))));
        assert_eq!(parser.next(), Some(Ok(Reply::Null)));
        assert_eq!(parser.next(), Some(Ok(Reply::Pair(k, v))));
        let arr = (0..count as u64).map(Reply::Int).collect::<Vec<_>>();
        assert_eq!(parser.next(), Some(Ok(Reply::Array(arr))));
        assert_eq!(parser.next(), None);
    }
}

/// Directed malformed-frame cases the fuzz loops may miss: oversize lines
/// (terminated and unterminated), missing terminators, interior NULs.
#[test]
fn directed_malformed_cases() {
    // Missing terminator: a frame without a newline stays pending forever
    // (the connection layer turns EOF into a dropped partial frame).
    let mut p = RequestParser::new();
    p.feed(b"GET 42");
    assert_eq!(p.next(), None);
    p.feed(b"\r\n");
    assert_eq!(p.next(), Some(Ok(Request::Get(42))));

    // Interior NUL, before and after the terminator boundary.
    let mut p = RequestParser::new();
    p.feed(b"GET 4\x002\r\nPING\r\n");
    assert_eq!(p.next(), Some(Err(ParseError::IllegalByte)));
    assert_eq!(p.next(), Some(Ok(Request::Ping)));

    // Oversize terminated line: one error, next frame fine.
    let mut p = RequestParser::new();
    let mut long = vec![b'9'; MAX_LINE + 1];
    long.splice(0..0, b"GET ".iter().copied());
    long.extend_from_slice(b"\r\nPING\r\n");
    p.feed(&long);
    assert_eq!(p.next(), Some(Err(ParseError::Oversize)));
    assert_eq!(p.next(), Some(Ok(Request::Ping)));

    // Oversize unterminated run fed in pieces: exactly one error, then
    // silence until the newline, then normal parsing.
    let mut p = RequestParser::new();
    p.feed(&vec![b'x'; MAX_LINE]);
    assert_eq!(p.next(), None, "within budget: still pending");
    p.feed(&[b'x'; 2]);
    assert_eq!(p.next(), Some(Err(ParseError::Oversize)));
    for _ in 0..4 {
        p.feed(&vec![b'x'; MAX_LINE]);
        assert_eq!(p.next(), None, "still discarding the same run");
    }
    p.feed(b"\nSTATS\r\n");
    assert_eq!(p.next(), Some(Ok(Request::Stats)));
    assert_eq!(p.next(), None);
}
