//! Fuzz-style codec tests: the incremental parsers must survive arbitrary
//! byte splits and arbitrary garbage — erroring per frame, never panicking,
//! and always resynchronizing. With bulk payloads in the grammar, the
//! resynchronization witness needs care: a garbage line that *happens* to
//! form a valid `SET`/`MSET` header legally captures following bytes as
//! payload, so the guaranteed-recovery properties use digit-free garbage
//! (no digits → no parsable length → no payload capture), while the
//! arbitrary-garbage property asserts the weaker no-panic/termination
//! contract.

use proptest::prelude::*;

use ascylib_server::protocol::{
    encode_request, wire, ParseError, Reply, ReplyParser, Request, RequestParser, MAX_LINE,
    MAX_SCAN, MAX_VALUE,
};

/// Deterministically builds a request from fuzz integers (the vendored
/// proptest has no enum strategies; this is the projection).
fn request_from(selector: u8, a: u64, b: u64, keys: &[u64], payload: &[u8]) -> Request {
    let nonempty = |ks: &[u64]| if ks.is_empty() { vec![a] } else { ks.to_vec() };
    match selector % 9 {
        0 => Request::Get(a),
        1 => Request::Set(a, payload.to_vec()),
        2 => Request::Del(a),
        3 => Request::MGet(nonempty(keys)),
        4 => Request::MSet(
            nonempty(keys)
                .iter()
                .enumerate()
                .map(|(i, &k)| {
                    let mut v = payload.to_vec();
                    v.push(i as u8); // distinct payload per entry
                    (k, v)
                })
                .collect(),
        ),
        5 => Request::Scan(a, (b as usize) % (MAX_SCAN + 1)),
        6 => Request::Ping,
        7 => Request::Stats,
        _ => Request::Quit,
    }
}

/// Remaps ASCII digits out of a garbage byte so a random line can never
/// declare a payload length (it still exercises every other parser path).
fn no_digits(b: u8) -> u8 {
    if b.is_ascii_digit() {
        b + 10 // '0'..'9' become ':'..'C'
    } else {
        b
    }
}

/// Splits `bytes` at fuzz-chosen positions and feeds the chunks one by one,
/// draining after every feed (the worst-case socket delivery pattern).
fn parse_in_random_chunks(
    bytes: &[u8],
    cuts: &[usize],
) -> Vec<Result<Request, ParseError>> {
    let mut positions: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    positions.sort_unstable();
    positions.dedup();
    let mut parser = RequestParser::new();
    let mut out = Vec::new();
    let mut prev = 0;
    for &cut in positions.iter().chain(std::iter::once(&bytes.len())) {
        parser.feed(&bytes[prev..cut]);
        while let Some(item) = parser.next() {
            out.push(item);
        }
        prev = cut;
    }
    parser.feed(&bytes[prev..]);
    while let Some(item) = parser.next() {
        out.push(item);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → split anywhere → parse is the identity, for any request
    /// sequence (binary payloads included) and any chunking.
    #[test]
    fn encoded_streams_survive_any_split(
        specs in collection::vec((any::<u8>(), any::<u64>(), any::<u64>(),
            collection::vec(any::<u64>(), 0..8),
            collection::vec(any::<u8>(), 0..64)), 1..12),
        cuts in collection::vec(any::<usize>(), 0..24),
    ) {
        let requests: Vec<Request> = specs
            .iter()
            .map(|(s, a, b, ks, payload)| request_from(*s, *a, *b, ks, payload))
            .collect();
        let mut bytes = Vec::new();
        for r in &requests {
            encode_request(r, &mut bytes);
        }
        let parsed = parse_in_random_chunks(&bytes, &cuts);
        let round_tripped: Vec<Request> =
            parsed.into_iter().map(|item| item.expect("well-formed stream")).collect();
        assert_eq!(round_tripped, requests);
    }

    /// Arbitrary byte soup (digits included, so payload-capturing headers
    /// may form): the parser never panics and always terminates, yielding
    /// no more items than terminators.
    #[test]
    fn arbitrary_garbage_never_panics(
        soup in collection::vec(any::<u8>(), 0..2048),
        cuts in collection::vec(any::<usize>(), 0..16),
    ) {
        let mut bytes = soup.clone();
        bytes.extend_from_slice(b"\nPING\r\n");
        let parsed = parse_in_random_chunks(&bytes, &cuts);
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        assert!(parsed.len() <= newlines, "more items than terminators");
    }

    /// Digit-free byte soup cannot declare payload lengths, so the parser
    /// provably resynchronizes: after the soup, a newline plus a valid
    /// frame always parses.
    #[test]
    fn digit_free_garbage_resynchronizes(
        soup in collection::vec(any::<u8>(), 0..2048),
        cuts in collection::vec(any::<usize>(), 0..16),
    ) {
        let mut bytes: Vec<u8> = soup.iter().map(|&b| no_digits(b)).collect();
        bytes.extend_from_slice(b"\nPING\r\n");
        let parsed = parse_in_random_chunks(&bytes, &cuts);
        assert_eq!(parsed.last(), Some(&Ok(Request::Ping)));
    }

    /// Digit-free soup sprinkled with newlines parses to per-line verdicts;
    /// every error is one of the documented kinds and parsing terminates.
    #[test]
    fn newline_heavy_garbage_yields_per_line_errors(
        lines in collection::vec(collection::vec(any::<u8>(), 0..64), 1..32),
    ) {
        let mut bytes = Vec::new();
        for l in &lines {
            bytes.extend(l.iter().map(|&b| no_digits(b)));
            bytes.push(b'\n');
        }
        let mut parser = RequestParser::new();
        parser.feed(&bytes);
        let mut items = 0usize;
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        while let Some(_item) = parser.next() {
            items += 1;
            assert!(items <= newlines, "cannot yield more items than terminators");
        }
        // Every newline terminates exactly one line (none can exceed
        // MAX_LINE here, and none can open a payload), and every terminated
        // line yields one verdict.
        assert_eq!(items, newlines);
    }

    /// The reply parser holds the same never-panic/resynchronize contract
    /// (digit-free soup: no `$`/`=` header can declare a payload).
    #[test]
    fn reply_parser_survives_garbage(
        soup in collection::vec(any::<u8>(), 0..1024),
        cuts in collection::vec(any::<usize>(), 0..8),
    ) {
        let mut bytes: Vec<u8> = soup.iter().map(|&b| no_digits(b)).collect();
        bytes.extend_from_slice(b"\n+PONG\r\n");
        let mut positions: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
        positions.sort_unstable();
        positions.dedup();
        let mut parser = ReplyParser::new();
        let mut last = None;
        let mut prev = 0;
        for &cut in positions.iter().chain(std::iter::once(&bytes.len())) {
            parser.feed(&bytes[prev..cut]);
            while let Some(item) = parser.next() {
                last = Some(item);
            }
            prev = cut;
        }
        assert_eq!(last, Some(Ok(Reply::Simple("PONG".into()))));
    }

    /// Server-side reply writers and the client-side parser agree for any
    /// payload bytes.
    #[test]
    fn reply_writers_round_trip(n in any::<u64>(), k in any::<u64>(),
                                payload in collection::vec(any::<u8>(), 0..128),
                                count in any::<u8>()) {
        let mut bytes = Vec::new();
        wire::int(&mut bytes, n);
        wire::null(&mut bytes);
        wire::bulk(&mut bytes, &payload);
        wire::pair(&mut bytes, k, &payload);
        let count = count as usize % 64;
        wire::array_header(&mut bytes, count);
        for i in 0..count {
            wire::pair(&mut bytes, i as u64, &payload);
        }
        let mut parser = ReplyParser::new();
        parser.feed(&bytes);
        assert_eq!(parser.next(), Some(Ok(Reply::Int(n))));
        assert_eq!(parser.next(), Some(Ok(Reply::Null)));
        assert_eq!(parser.next(), Some(Ok(Reply::Bulk(payload.clone()))));
        assert_eq!(parser.next(), Some(Ok(Reply::Pair(k, payload.clone()))));
        let arr = (0..count as u64).map(|i| Reply::Pair(i, payload.clone())).collect::<Vec<_>>();
        assert_eq!(parser.next(), Some(Ok(Reply::Array(arr))));
        assert_eq!(parser.next(), None);
    }
}

/// Directed malformed-frame cases the fuzz loops may miss: oversize lines
/// (terminated and unterminated), missing terminators, interior NULs,
/// payload-state edges.
#[test]
fn directed_malformed_cases() {
    // Missing terminator: a frame without a newline stays pending forever
    // (the connection layer turns EOF into a dropped partial frame).
    let mut p = RequestParser::new();
    p.feed(b"GET 42");
    assert_eq!(p.next(), None);
    p.feed(b"\r\n");
    assert_eq!(p.next(), Some(Ok(Request::Get(42))));

    // Interior NUL in a header, before and after the terminator boundary.
    let mut p = RequestParser::new();
    p.feed(b"GET 4\x002\r\nPING\r\n");
    assert_eq!(p.next(), Some(Err(ParseError::IllegalByte)));
    assert_eq!(p.next(), Some(Ok(Request::Ping)));

    // Oversize terminated line: one error, next frame fine.
    let mut p = RequestParser::new();
    let mut long = vec![b'9'; MAX_LINE + 1];
    long.splice(0..0, b"GET ".iter().copied());
    long.extend_from_slice(b"\r\nPING\r\n");
    p.feed(&long);
    assert_eq!(p.next(), Some(Err(ParseError::Oversize)));
    assert_eq!(p.next(), Some(Ok(Request::Ping)));

    // Oversize unterminated run fed in pieces: exactly one error, then
    // silence until the newline, then normal parsing.
    let mut p = RequestParser::new();
    p.feed(&vec![b'x'; MAX_LINE]);
    assert_eq!(p.next(), None, "within budget: still pending");
    p.feed(&[b'x'; 2]);
    assert_eq!(p.next(), Some(Err(ParseError::Oversize)));
    for _ in 0..4 {
        p.feed(&vec![b'x'; MAX_LINE]);
        assert_eq!(p.next(), None, "still discarding the same run");
    }
    p.feed(b"\nSTATS\r\n");
    assert_eq!(p.next(), Some(Ok(Request::Stats)));
    assert_eq!(p.next(), None);
}

/// Directed payload-state cases: byte-at-a-time payload delivery, an
/// over-cap value skipped byte-at-a-time, and a payload whose terminator
/// never comes.
#[test]
fn directed_payload_cases() {
    // Payload trickling in one byte at a time, newlines and NULs included.
    let mut p = RequestParser::new();
    p.feed(b"SET 1 5\r\n");
    assert_eq!(p.next(), None);
    for &b in b"\n\x00a\rb" {
        assert_eq!(p.next(), None, "mid-payload");
        p.feed(&[b]);
    }
    p.feed(b"\r\n");
    assert_eq!(p.next(), Some(Ok(Request::Set(1, b"\n\x00a\rb".to_vec()))));

    // An over-cap declaration is one error; the declared payload (fed in
    // big sloppy chunks) is absorbed, then parsing resumes.
    let mut p = RequestParser::new();
    let claimed = MAX_VALUE + 5000;
    p.feed(format!("SET 2 {claimed}\r\n").as_bytes());
    assert_eq!(p.next(), Some(Err(ParseError::ValueTooLarge)));
    let mut sent = 0;
    while sent < claimed {
        let n = (claimed - sent).min(10_000);
        p.feed(&vec![b'\n'; n]);
        assert_eq!(p.next(), None, "skipping the rejected payload");
        sent += n;
    }
    p.feed(b"\r\nPING\r\n");
    assert_eq!(p.next(), Some(Ok(Request::Ping)));
    assert_eq!(p.next(), None);

    // Reply side: a bulk that ends mid-payload surfaces as UnexpectedEof at
    // the client layer; at the parser layer it simply stays pending.
    let mut rp = ReplyParser::new();
    rp.feed(b"$10\r\nabc");
    assert_eq!(rp.next(), None, "bulk payload pending");
    rp.feed(b"defghij\r\n");
    assert_eq!(rp.next(), Some(Ok(Reply::Bulk(b"abcdefghij".to_vec()))));
}
