//! Hot-key engine coherence battery.
//!
//! The engine's contract (see `shard/src/hotkey.rs`): a front-cache read
//! never returns a value older than the last completed write to that key,
//! and delegated writes keep linearizable per-key outcomes. These tests
//! attack the contract directly:
//!
//! * **canary churn** — N writers overwrite one pinned hot key with
//!   self-describing payloads (writer id + per-writer sequence header,
//!   derived fill byte) while M readers assert every observed value is
//!   untorn and that each writer's sequence numbers never run backwards
//!   (a regression would mean a stale copy resurfaced);
//! * **completed-watermark** — a single writer publishes a watermark
//!   *after* each write returns; readers grab the watermark before each
//!   lookup and the observed value must be at least that fresh — the
//!   "never older than the last completed write" clause verbatim;
//! * **differential** (proptest) — the same operation sequence against an
//!   engine-on and an engine-off instance must be observably equivalent,
//!   over both `ShardedMap<u64>` and `BlobMap` backings.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ascylib::api::ConcurrentMap;
use ascylib::hashtable::ClhtLb;
use ascylib_shard::hotkey::FRONT_VALUE_CAP;
use ascylib_shard::{BlobMap, HotKeyConfig, ShardedMap};

const HOT_KEY: u64 = 0xAB07; // arbitrary nonzero key

fn eager(k: usize) -> HotKeyConfig {
    HotKeyConfig::eager(k)
}

fn hot_blob_map(shards: usize) -> BlobMap<ClhtLb> {
    let map = BlobMap::with_hotkeys(shards, eager(8), |_| ClhtLb::with_capacity(1024));
    if let Some(hot) = map.hotkey_engine() {
        hot.pin(HOT_KEY);
    }
    map
}

/// Canary payload: `[writer_id: u64 | seq: u64 | fill × n]` where the fill
/// byte is a function of both header words — any mix of two payloads (torn
/// read) or a wrong-length copy is detected by the checker.
fn canary(writer: u64, seq: u64) -> Vec<u8> {
    let fill = (writer.wrapping_mul(31).wrapping_add(seq) % 251) as u8;
    let len = 16 + (seq % 40) as usize;
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&writer.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v.resize(len, fill);
    v
}

/// Parses and verifies a canary; returns `(writer_id, seq)`.
fn check_canary(bytes: &[u8]) -> (u64, u64) {
    assert!(bytes.len() >= 16, "canary too short: {} bytes", bytes.len());
    let writer = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let fill = (writer.wrapping_mul(31).wrapping_add(seq) % 251) as u8;
    assert_eq!(bytes.len(), 16 + (seq % 40) as usize, "torn length for {writer}:{seq}");
    assert!(
        bytes[16..].iter().all(|&b| b == fill),
        "torn payload for writer {writer} seq {seq}: {:?}",
        &bytes[16..]
    );
    (writer, seq)
}

#[test]
fn canary_churn_over_blob_map_yields_untorn_monotonic_values() {
    const WRITERS: u64 = 3;
    const WRITES_PER: u64 = 400;
    let map = Arc::new(hot_blob_map(2));
    map.set(HOT_KEY, &canary(0, 0));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Highest sequence observed per writer: a later observation
                // below the watermark means a stale value resurfaced.
                let mut seen = [0u64; WRITERS as usize + 1];
                let mut out = Vec::new();
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    assert!(map.get(HOT_KEY, &mut out), "the hot key is never deleted here");
                    let (writer, seq) = check_canary(&out);
                    assert!(
                        seq >= seen[writer as usize],
                        "writer {writer} ran backwards: saw seq {seq} after {}",
                        seen[writer as usize]
                    );
                    seen[writer as usize] = seq;
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    let writers: Vec<_> = (1..=WRITERS)
        .map(|w| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                for seq in 1..=WRITES_PER {
                    map.set(HOT_KEY, &canary(w, seq));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let observations = r.join().unwrap();
        assert!(observations > 0, "readers must have made progress");
    }

    // Quiescent: the front cache must agree with the backing exactly.
    let mut front = Vec::new();
    assert!(map.get(HOT_KEY, &mut front));
    let stats = map.hotkey_stats().expect("engine attached");
    assert!(stats.delegated > 0, "hot writes must have delegated: {stats:?}");
    assert!(stats.front_hits > 0, "hot reads must have hit the front cache: {stats:?}");
}

#[test]
fn completed_watermark_over_blob_map_is_never_violated() {
    let map = Arc::new(hot_blob_map(2));
    map.set(HOT_KEY, &canary(1, 0));
    // Published only *after* `set` returns: any read that starts later must
    // observe at least this sequence number.
    let completed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let map = Arc::clone(&map);
            let completed = Arc::clone(&completed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let watermark = completed.load(Ordering::Acquire);
                    assert!(map.get(HOT_KEY, &mut out));
                    let (_, seq) = check_canary(&out);
                    assert!(
                        seq >= watermark,
                        "front read returned seq {seq}, older than completed write {watermark}"
                    );
                }
            })
        })
        .collect();

    for seq in 1..=1500u64 {
        map.set(HOT_KEY, &canary(1, seq));
        completed.store(seq, Ordering::Release);
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn completed_watermark_over_sharded_u64_map_is_never_violated() {
    let map = Arc::new(ShardedMap::with_hotkeys(2, eager(8), |_| ClhtLb::with_capacity(1024)));
    map.hotkey_engine().expect("engine attached").pin(HOT_KEY);
    map.insert(HOT_KEY, 0);
    let completed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let map = Arc::clone(&map);
            let completed = Arc::clone(&completed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let watermark = completed.load(Ordering::Acquire);
                    // remove+insert churn has a legal transient miss; only a
                    // *present* value can be judged against the watermark.
                    if let Some(v) = map.search(HOT_KEY) {
                        assert!(
                            v >= watermark,
                            "front read returned {v}, older than completed write {watermark}"
                        );
                    }
                }
            })
        })
        .collect();

    // The structures' insert is insert-if-absent, so the writer churns with
    // remove+insert — both legs hit the delegation path on a fronted key.
    for seq in 1..=1500u64 {
        map.remove(HOT_KEY);
        assert!(map.insert(HOT_KEY, seq));
        completed.store(seq, Ordering::Release);
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(map.search(HOT_KEY), Some(1500));
    let stats = map.hotkey_stats().expect("engine attached");
    assert!(stats.delegated > 0, "fronted churn must delegate: {stats:?}");
}

#[test]
fn oversize_hot_values_pass_through_but_stay_coherent() {
    let map = hot_blob_map(2);
    let big = vec![0xEEu8; FRONT_VALUE_CAP + 100];
    map.set(HOT_KEY, &big);
    let mut out = Vec::new();
    for _ in 0..10 {
        assert!(map.get(HOT_KEY, &mut out));
        assert_eq!(out, big, "oversize values must round-trip via the backing");
    }
    // Shrinking back under the cap re-enables caching.
    map.set(HOT_KEY, b"small again");
    assert!(map.get(HOT_KEY, &mut out));
    assert_eq!(out, b"small again");
    assert!(map.get(HOT_KEY, &mut out));
    assert_eq!(out, b"small again");
    let stats = map.hotkey_stats().unwrap();
    assert!(stats.front_hits >= 1, "small value must be served from the front: {stats:?}");
}

#[test]
fn delegated_delete_caches_absence_until_the_next_write() {
    let map = hot_blob_map(2);
    map.set(HOT_KEY, b"here");
    let mut out = Vec::new();
    assert!(map.get(HOT_KEY, &mut out)); // pending → fill
    assert!(map.get(HOT_KEY, &mut out)); // hit
    assert!(map.del(HOT_KEY), "present key deletes");
    assert!(!map.get(HOT_KEY, &mut out), "deleted key reads absent");
    assert!(!map.del(HOT_KEY), "double delete fails");
    map.set(HOT_KEY, b"back");
    assert!(map.get(HOT_KEY, &mut out));
    assert_eq!(out, b"back");
}

mod differential {
    use super::*;
    use proptest::prelude::*;

    /// Keys drawn from a tiny space (`1..=12`) so the eager engine fronts
    /// most of them and the scripted ops constantly cross the
    /// front-cache/backing line.
    const KEY_SPACE: u64 = 12;

    fn key_of(raw: u64) -> u64 {
        1 + raw % KEY_SPACE
    }

    /// Drives the same decoded op against the engine-on and engine-off
    /// `ShardedMap`, asserting identical observable outcomes at every
    /// step. Op decoding: selector % 7 → insert, remove, search, contains,
    /// multi_get, multi_insert, multi_remove (batched forms derive a small
    /// key window from `raw`, same idiom as `tests/differential.rs`).
    fn check_sharded(ops: &[(u8, u64, u64)]) {
        let on =
            ShardedMap::with_hotkeys(2, HotKeyConfig::eager(8), |_| ClhtLb::with_capacity(256));
        let off = ShardedMap::new(2, |_| ClhtLb::with_capacity(256));
        for (i, &(op, raw, aux)) in ops.iter().enumerate() {
            let key = key_of(raw);
            match op % 7 {
                0 => assert_eq!(on.insert(key, aux), off.insert(key, aux), "insert step {i}"),
                1 => assert_eq!(on.remove(key), off.remove(key), "remove step {i}"),
                2 => assert_eq!(on.search(key), off.search(key), "search step {i}"),
                3 => assert_eq!(on.contains(key), off.contains(key), "contains step {i}"),
                4 => {
                    let keys: Vec<u64> =
                        (0..raw % 6).map(|j| key_of(raw.wrapping_add(j * 11))).collect();
                    assert_eq!(on.multi_get(&keys), off.multi_get(&keys), "multi_get step {i}");
                }
                5 => {
                    let entries: Vec<(u64, u64)> = (0..raw % 6)
                        .map(|j| (key_of(raw.wrapping_add(j * 13)), aux.wrapping_add(j)))
                        .collect();
                    assert_eq!(
                        on.multi_insert(&entries),
                        off.multi_insert(&entries),
                        "multi_insert step {i}"
                    );
                }
                _ => {
                    let keys: Vec<u64> =
                        (0..raw % 6).map(|j| key_of(raw.wrapping_add(j * 17))).collect();
                    assert_eq!(
                        on.multi_remove(&keys),
                        off.multi_remove(&keys),
                        "multi_remove step {i}"
                    );
                }
            }
        }
        assert_eq!(on.size(), off.size());
        for k in 1..=KEY_SPACE {
            assert_eq!(on.search(k), off.search(k), "final state, key {k}");
        }
    }

    /// Same differential drive over `BlobMap` byte values. Values derive
    /// from `aux` (fill byte + length); every 5th set straddles the
    /// front-cache cap so the pass-through path is exercised too.
    fn check_blob(ops: &[(u8, u64, u64)]) {
        let on = BlobMap::with_hotkeys(2, HotKeyConfig::eager(8), |_| ClhtLb::with_capacity(256));
        let off = BlobMap::new(2, |_| ClhtLb::with_capacity(256));
        let mut out_on = Vec::new();
        let mut out_off = Vec::new();
        for (i, &(op, raw, aux)) in ops.iter().enumerate() {
            let key = key_of(raw);
            match op % 4 {
                0 => {
                    let len = if aux % 5 == 0 {
                        FRONT_VALUE_CAP - 4 + (aux % 12) as usize
                    } else {
                        (aux % 40) as usize
                    };
                    let value = vec![aux as u8; len];
                    assert_eq!(on.set(key, &value), off.set(key, &value), "set step {i}");
                }
                1 => assert_eq!(on.del(key), off.del(key), "del step {i}"),
                2 => {
                    assert_eq!(
                        on.get(key, &mut out_on),
                        off.get(key, &mut out_off),
                        "get step {i}"
                    );
                    assert_eq!(out_on, out_off, "get payload step {i}");
                }
                _ => {
                    let keys: Vec<u64> =
                        (0..raw % 6).map(|j| key_of(raw.wrapping_add(j * 11))).collect();
                    assert_eq!(on.multi_get(&keys), off.multi_get(&keys), "multi_get step {i}");
                }
            }
        }
        assert_eq!(on.len(), off.len());
        for k in 1..=KEY_SPACE {
            assert_eq!(on.get_owned(k), off.get_owned(k), "final state, key {k}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Engine-on and engine-off `ShardedMap`s are observably equal
        /// under any op sequence (the engine is a pure optimization).
        #[test]
        fn prop_sharded_map_engine_on_off_equivalent(
            ops in collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..120)
        ) {
            check_sharded(&ops);
        }

        /// Engine-on and engine-off `BlobMap`s are observably equal.
        #[test]
        fn prop_blob_map_engine_on_off_equivalent(
            ops in collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..90)
        ) {
            check_blob(&ops);
        }
    }
}
