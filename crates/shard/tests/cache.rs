//! Cache-tier differential and interleaving tests.
//!
//! Property tests drive a [`BlobMap`] with a hand-cranked [`FakeClock`]
//! against a sequential `BTreeMap` model of TTL semantics — expiry at the
//! exact millisecond boundary, overwrite-resets-TTL, `PERSIST`, corpse
//! reads — and, separately, assert the byte-budget invariant (`live_bytes`
//! never exceeds the budget, and an evicted key may vanish but must never
//! read back stale). Deterministic interleaving tests then pin down the
//! hot-key cooperation contract: a fronted key whose backing value is
//! evicted or expires is poisoned *before* the blob is retired, so the
//! front cache can never serve the retired bytes.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use ascylib::hashtable::ClhtLb;
use ascylib_shard::{BlobMap, CacheConfig, FakeClock, HotKeyConfig, MsClock};

/// Sequential model: key → (value, optional absolute deadline in ms).
type Model = BTreeMap<u64, (Vec<u8>, Option<u64>)>;

/// Drops every model entry whose deadline has passed — the map treats
/// those as absent on every observable surface (reclamation is lazy, but
/// single-threaded observation cannot tell).
fn purge(model: &mut Model, now: u64) {
    model.retain(|_, &mut (_, deadline)| deadline.map_or(true, |d| now < d));
}

fn clocked(shards: usize, cfg: CacheConfig) -> (BlobMap<ClhtLb>, Arc<FakeClock>) {
    let clock = Arc::new(FakeClock::new());
    let cfg = cfg.with_clock(clock.clone());
    let map = BlobMap::with_config(shards, HotKeyConfig::default(), cfg, |_| {
        ClhtLb::with_capacity(256)
    });
    (map, clock)
}

/// Applies a mixed TTL-op sequence to the map and the model, asserting
/// agreement step by step. `ops` decode as: selector % 8 → 0/1 `set_ex`,
/// 2 plain `set`, 3 `expire`, 4 `persist`, 5 `ttl_ms`, 6 `del`, 7 `get`;
/// the clock advances by `adv` milliseconds before each step, so deadlines
/// lapse mid-sequence (including exactly at the boundary, since both the
/// deadline arithmetic and the advances are whole milliseconds).
fn check_ttl_against_model(
    map: BlobMap<ClhtLb>,
    clock: &FakeClock,
    ops: &[(u8, u64, u64, u64)],
    key_space: u64,
) {
    let mut model: Model = BTreeMap::new();
    for (i, &(op, raw, ttl, adv)) in ops.iter().enumerate() {
        clock.advance(adv);
        let now = clock.now_ms();
        purge(&mut model, now);
        let key = 1 + raw % key_space;
        match op % 8 {
            0 | 1 => {
                let value = format!("v{i}").into_bytes();
                let expected = !model.contains_key(&key);
                assert_eq!(map.set_ex(key, &value, ttl), expected, "set_ex({key}) step {i}");
                let deadline = (ttl != 0).then(|| (now + ttl).max(1));
                model.insert(key, (value, deadline));
            }
            2 => {
                let value = format!("p{i}").into_bytes();
                let expected = !model.contains_key(&key);
                assert_eq!(map.set(key, &value), expected, "set({key}) step {i}");
                model.insert(key, (value, None));
            }
            3 => {
                let expected = model.contains_key(&key);
                assert_eq!(map.expire(key, ttl), expected, "expire({key}) step {i}");
                if let Some((_, deadline)) = model.get_mut(&key) {
                    *deadline = Some((now + ttl).max(1));
                }
            }
            4 => {
                let expected = model.contains_key(&key);
                assert_eq!(map.persist(key), expected, "persist({key}) step {i}");
                if let Some((_, deadline)) = model.get_mut(&key) {
                    *deadline = None;
                }
            }
            5 => {
                let expected = model
                    .get(&key)
                    .map(|&(_, deadline)| deadline.map(|d| d - now));
                assert_eq!(map.ttl_ms(key), expected, "ttl_ms({key}) step {i}");
            }
            6 => {
                let expected = model.remove(&key).is_some();
                assert_eq!(map.del(key), expected, "del({key}) step {i}");
            }
            _ => {
                let expected = model.get(&key).map(|(v, _)| v.clone());
                assert_eq!(map.get_owned(key), expected, "get({key}) step {i}");
                assert_eq!(map.contains(key), expected.is_some(), "contains({key}) step {i}");
            }
        }
    }
    // Final sweep: every key agrees, including ones whose deadline lapsed
    // without ever being read again.
    let now = clock.now_ms();
    purge(&mut model, now);
    for key in 1..=key_space {
        let expected = model.get(&key).map(|(v, _)| v.clone());
        assert_eq!(map.get_owned(key), expected, "final get({key})");
    }
    // Lapsed deadlines that were observed (or swept) were counted.
    let c = map.cache_stats();
    assert_eq!(c.budget_bytes, 0, "this config is unbounded");
    assert_eq!(c.evictions, 0, "no budget, no eviction");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_ttl_semantics_match_the_model(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), 0u64..48, 0u64..8),
            1..300,
        )
    ) {
        let (map, clock) = clocked(1, CacheConfig::unbounded());
        check_ttl_against_model(map, &clock, &ops, 24);
    }

    #[test]
    fn prop_ttl_semantics_are_shard_count_invariant(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), 0u64..48, 0u64..8),
            1..250,
        )
    ) {
        let (map, clock) = clocked(4, CacheConfig::unbounded());
        check_ttl_against_model(map, &clock, &ops, 24);
    }

    /// Budget invariant under churn: `live_bytes` never exceeds the budget
    /// while nothing is force-admitted, and an evicted key may read as
    /// absent but must never read back a value other than its latest write.
    #[test]
    fn prop_eviction_never_overruns_the_budget_or_serves_stale_bytes(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>(), 1usize..200), 1..300)
    ) {
        let (map, _clock) = clocked(1, CacheConfig::unbounded().with_budget(4096));
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (i, &(op, raw, len)) in ops.iter().enumerate() {
            let key = 1 + raw % 32;
            match op % 4 {
                0 | 1 => {
                    let value = vec![b'a' + (i % 23) as u8; len];
                    map.set(key, &value);
                    model.insert(key, value);
                }
                2 => {
                    map.del(key);
                    model.remove(&key);
                }
                _ => {
                    // A present value is always the latest write. Absent
                    // is legal for evicted keys (the no-budget
                    // differential above covers the must-be-present
                    // direction).
                    if let Some(v) = map.get_owned(key) {
                        assert_eq!(Some(&v), model.get(&key), "stale read of {key}");
                    }
                }
            }
            let c = map.cache_stats();
            if c.forced == 0 {
                assert!(
                    c.live_bytes <= c.budget_bytes,
                    "step {i}: live {} > budget {}",
                    c.live_bytes,
                    c.budget_bytes
                );
            }
        }
    }
}

/// A fronted (hot) key whose backing value is evicted must not be served
/// from the front cache afterwards: eviction poisons the seqlock slot
/// *before* retiring the handle, so the retired bytes are unreachable.
#[test]
fn evicting_a_fronted_key_never_serves_the_retired_blob() {
    let cfg = CacheConfig::unbounded().with_budget(4 * 1024);
    let map = BlobMap::with_config(1, HotKeyConfig::eager(8), cfg, |_| {
        ClhtLb::with_capacity(1024)
    });
    assert!(map.set(1, b"pinned"));
    for _ in 0..64 {
        assert_eq!(map.get_owned(1).as_deref(), Some(&b"pinned"[..]));
    }
    let h = map.hotkey_stats().expect("engine is attached");
    assert!(h.front_hits > 0, "64 reads of one key must promote and front it: {h:?}");

    // Never-read churn fills the 4 KiB budget until CLOCK's hand reaches
    // key 1 (its ref bit decays after one lap without reads).
    let mut filler = 1000u64;
    while map.contains(1) {
        map.set(filler, &[0u8; 128]);
        filler += 1;
        assert!(filler < 1000 + 100_000, "churn never evicted the fronted key");
    }
    assert_eq!(map.get_owned(1), None, "front cache served an evicted value");
    let c = map.cache_stats();
    assert!(c.evictions > 0, "{c:?}");
    assert!(c.live_bytes <= c.budget_bytes || c.forced > 0, "{c:?}");

    // The key is reusable: a fresh write is a create and reads back.
    assert!(map.set(1, b"fresh"));
    assert_eq!(map.get_owned(1).as_deref(), Some(&b"fresh"[..]));
}

/// The expiry flavour of the same contract: arming a TTL on a fronted key
/// poisons its slot (TTL'd values are never front-cached), and once the
/// deadline lapses the key reads as absent everywhere — the front cache
/// cannot resurrect the lease.
#[test]
fn a_lapsed_lease_on_a_fronted_key_reads_as_absent() {
    let clock = Arc::new(FakeClock::new());
    let cfg = CacheConfig::unbounded().with_clock(clock.clone());
    let map = BlobMap::with_config(1, HotKeyConfig::eager(8), cfg, |_| {
        ClhtLb::with_capacity(256)
    });
    assert!(map.set(1, b"hot"));
    for _ in 0..64 {
        assert_eq!(map.get_owned(1).as_deref(), Some(&b"hot"[..]));
    }
    assert!(map.hotkey_stats().expect("engine").front_hits > 0);

    assert!(map.expire(1, 5));
    // Alive until the deadline; the read now comes from the backing store
    // (leased values bypass the front cache), so it sees the TTL.
    assert_eq!(map.get_owned(1).as_deref(), Some(&b"hot"[..]));
    assert_eq!(map.ttl_ms(1), Some(Some(5)));
    clock.advance(5);
    assert!(!map.contains(1), "deadline is inclusive: now == expire_at is dead");
    assert_eq!(map.get_owned(1), None);
    assert_eq!(map.ttl_ms(1), None);
    assert!(map.cache_stats().expired() >= 1);

    // Overwriting the corpse is a create and is immediately readable.
    assert!(map.set(1, b"fresh"));
    assert_eq!(map.get_owned(1).as_deref(), Some(&b"fresh"[..]));
}

/// Concurrent churn under a small budget with hot-key fronting on: values
/// are a function of their key, so any read that returns bytes can be
/// validated exactly. Eviction retiring blobs under readers must never
/// produce a torn or stale payload.
#[test]
fn concurrent_churn_under_budget_never_returns_torn_values() {
    fn value_of(key: u64) -> Vec<u8> {
        vec![b'a' + (key % 23) as u8; 8 + (key % 240) as usize]
    }

    let cfg = CacheConfig::unbounded().with_budget(32 * 1024);
    let map = Arc::new(BlobMap::with_config(2, HotKeyConfig::eager(8), cfg, |_| {
        ClhtLb::with_capacity(4096)
    }));
    let writers = 4;
    let mut handles = Vec::new();
    for t in 0..writers {
        let map = Arc::clone(&map);
        handles.push(std::thread::spawn(move || {
            let mut state = 0xC0FFEE_u64.wrapping_mul(t + 1);
            for _ in 0..20_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let key = 1 + state % 512;
                if state & 7 == 0 {
                    map.del(key);
                } else {
                    map.set(key, &value_of(key));
                }
            }
        }));
    }
    for t in 0..2u64 {
        let map = Arc::clone(&map);
        handles.push(std::thread::spawn(move || {
            let mut state = 0xBEEF_u64.wrapping_mul(t + 1);
            let mut out = Vec::new();
            for _ in 0..40_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Skew toward a handful of keys so some get fronted while
                // eviction churns underneath them.
                let key = 1 + state % if state & 3 == 0 { 512 } else { 8 };
                if map.get(key, &mut out) {
                    assert_eq!(out, value_of(key), "torn/stale read of key {key}");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let c = map.cache_stats();
    assert!(c.evictions > 0, "churn past 32 KiB must evict: {c:?}");
    assert!(
        c.live_bytes <= c.budget_bytes || c.forced > 0,
        "quiescent overrun without forced admissions: {c:?}"
    );
}
