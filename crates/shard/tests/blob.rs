//! Blob-layer integration tests: arena reclamation under churn (no torn or
//! reused payload is ever observable) and property-based differential
//! testing of `BlobMap` against `HashMap<u64, Vec<u8>>`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use ascylib::hashtable::ClhtLb;
use ascylib::skiplist::FraserOptSkipList;
use ascylib_shard::BlobMap;

/// Payload self-description: `[key | seq | len]` header (24 bytes, LE) and a
/// fill byte derived from `(key, seq)`. Any torn, truncated, or
/// reused-while-reading blob breaks at least one of the checks in
/// [`check_canary`].
const CANARY_HEADER: usize = 24;

fn canary_payload(key: u64, seq: u64, len: usize) -> Vec<u8> {
    let len = len.max(CANARY_HEADER);
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(len as u64).to_le_bytes());
    let fill = (key ^ seq.rotate_left(17)) as u8 | 1;
    out.resize(len, fill);
    out
}

fn check_canary(key: u64, bytes: &[u8]) {
    assert!(
        bytes.len() >= CANARY_HEADER,
        "key {key}: blob shorter than its header ({} bytes)",
        bytes.len()
    );
    let read_key = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    assert_eq!(read_key, key, "key {key}: blob belongs to another key (reused mid-read?)");
    assert_eq!(len as usize, bytes.len(), "key {key}: length prefix disagrees with the copy");
    let fill = (key ^ seq.rotate_left(17)) as u8 | 1;
    for (i, &b) in bytes[CANARY_HEADER..].iter().enumerate() {
        assert_eq!(
            b, fill,
            "key {key} seq {seq}: torn byte at offset {} ({b} != {fill})",
            CANARY_HEADER + i
        );
    }
}

/// N writers overwrite/delete a small set of hot keys while readers copy
/// blobs out concurrently; every successful read must observe one fully
/// written payload (canary bytes + length prefix intact).
#[test]
fn readers_never_observe_torn_or_reused_blobs_under_churn() {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const HOT_KEYS: u64 = 16;
    const OPS_PER_WRITER: u64 = 15_000;

    let map = Arc::new(BlobMap::new(4, |_| FraserOptSkipList::new()));
    let done = Arc::new(AtomicBool::new(false));
    let reads_ok = Arc::new(AtomicU64::new(0));

    // Small retire batches so reclamation (and hence potential reuse) is
    // exercised constantly, not only at the 512-object default threshold.
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let map = Arc::clone(&map);
            scope.spawn(move || {
                ascylib_ssmem::set_gc_threshold(8);
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ w);
                for i in 0..OPS_PER_WRITER {
                    let key = 1 + rng.random_range(0..HOT_KEYS);
                    if rng.random_range(0..10u32) < 8 {
                        let seq = (w << 48) | i;
                        let len = CANARY_HEADER + rng.random_range(0..200usize);
                        map.set(key, &canary_payload(key, seq, len));
                    } else {
                        map.del(key);
                    }
                }
            });
        }
        for r in 0..READERS as u64 {
            let map = Arc::clone(&map);
            let done = Arc::clone(&done);
            let reads_ok = Arc::clone(&reads_ok);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xBEEF ^ r);
                let mut buf = Vec::new();
                let mut hits = 0u64;
                while !done.load(Ordering::Acquire) {
                    let key = 1 + rng.random_range(0..HOT_KEYS);
                    if map.get(key, &mut buf) {
                        check_canary(key, &buf);
                        hits += 1;
                    }
                }
                reads_ok.fetch_add(hits, Ordering::Relaxed);
            });
        }
        // Readers run until the writers are done; writer completion is
        // observable through the map's aggregate write counters (each
        // writer performs exactly OPS_PER_WRITER inserts + removes).
        let want = (WRITERS as u64) * OPS_PER_WRITER;
        loop {
            let s = map.total_stats();
            if s.inserts + s.removes >= want {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        done.store(true, Ordering::Release);
    });

    assert!(reads_ok.load(Ordering::Relaxed) > 0, "readers must observe live blobs");
    // Final state self-check: whatever survived is a valid canary payload.
    let mut buf = Vec::new();
    let mut live = 0u64;
    for key in 1..=HOT_KEYS {
        if map.get(key, &mut buf) {
            check_canary(key, &buf);
            live += 1;
        }
    }
    let stats = map.total_arena_stats();
    assert_eq!(stats.live_blobs(), live, "arena ledger agrees with the surviving keys");
    assert_eq!(map.len() as u64, live);
}

/// Steady same-size overwrite churn reuses retired blob memory across
/// epochs instead of growing: the ssmem pool serves recycled allocations
/// and live payload bytes stay exactly one value's worth per key.
#[test]
fn arena_reuses_blob_memory_across_epochs_without_leak_growth() {
    let map = BlobMap::new(2, |_| ClhtLb::with_capacity(64));
    ascylib_ssmem::set_gc_threshold(4);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut payload = vec![0u8; 256];

    let mut reused_seen = false;
    let mut peak_pooled = 0u64;
    for round in 0..2_000u64 {
        for key in 1..=8u64 {
            rng.fill_bytes(&mut payload);
            payload[0] = round as u8; // vary contents, not size
            map.set(key, &payload);
        }
        ascylib_ssmem::collect();
        let s = ascylib_ssmem::thread_stats();
        peak_pooled = peak_pooled.max(s.pooled);
        if s.reused > 0 {
            reused_seen = true;
            if round > 200 {
                break;
            }
        }
    }
    assert!(reused_seen, "epoch churn must recycle retired blob memory");

    let arena = map.total_arena_stats();
    assert_eq!(arena.live_blobs(), 8, "one live blob per key, every overwrite retired one");
    assert_eq!(arena.live_bytes(), 8 * 256);
    // The no-leak witness: pending + pooled memory is bounded by the GC
    // threshold and pool caps, not by the number of overwrites performed.
    let s = ascylib_ssmem::thread_stats();
    assert!(
        s.pending + s.pooled < 512,
        "retired blobs must be recycled, not accumulated: {s:?}"
    );
}

/// Driver for the differential suites: applies a fuzz-chosen op sequence to
/// a `BlobMap` and to a `HashMap<u64, Vec<u8>>` model; every observable
/// result must agree.
fn check_against_model<M, F>(make: F, ops: &[(u8, u64, Vec<u8>)], ordered: bool)
where
    M: ascylib::api::ConcurrentMap,
    F: Fn() -> BlobMap<M>,
    BlobMap<M>: ScanIfOrdered,
{
    let map = make();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut out = Vec::new();
    for (i, (op, raw_key, payload)) in ops.iter().enumerate() {
        let key = 1 + raw_key % 48;
        match op % 6 {
            0 | 1 => {
                let created = map.set(key, payload);
                assert_eq!(created, !model.contains_key(&key), "set({key}) step {i}");
                model.insert(key, payload.clone());
            }
            2 => {
                assert_eq!(map.del(key), model.remove(&key).is_some(), "del({key}) step {i}");
            }
            3 => {
                let found = map.get(key, &mut out);
                match model.get(&key) {
                    Some(v) => {
                        assert!(found, "get({key}) step {i}");
                        assert_eq!(&out, v, "get({key}) step {i}");
                    }
                    None => assert!(!found, "get({key}) step {i}"),
                }
            }
            4 => {
                let keys: Vec<u64> = (key..key + 5).collect();
                let got = map.multi_get(&keys);
                let want: Vec<Option<Vec<u8>>> =
                    keys.iter().map(|k| model.get(k).cloned()).collect();
                assert_eq!(got, want, "multi_get step {i}");
            }
            _ => {
                if ordered {
                    let got = map.scan_if_ordered(key, 8);
                    let mut want: Vec<(u64, Vec<u8>)> = model
                        .iter()
                        .filter(|(&k, _)| k >= key)
                        .map(|(&k, v)| (k, v.clone()))
                        .collect();
                    want.sort_by_key(|&(k, _)| k);
                    want.truncate(8);
                    assert_eq!(got, want, "scan step {i}");
                }
            }
        }
    }
    assert_eq!(map.len(), model.len());
    let arena = map.total_arena_stats();
    assert_eq!(arena.live_blobs() as usize, model.len());
    assert_eq!(
        arena.live_bytes(),
        model.values().map(|v| v.len() as u64).sum::<u64>(),
        "live payload bytes must equal the model's"
    );
}

/// Lets the shared driver call `scan` only on ordered backings.
trait ScanIfOrdered {
    fn scan_if_ordered(&self, from: u64, n: usize) -> Vec<(u64, Vec<u8>)>;
}

impl ScanIfOrdered for BlobMap<FraserOptSkipList> {
    fn scan_if_ordered(&self, from: u64, n: usize) -> Vec<(u64, Vec<u8>)> {
        self.scan(from, n)
    }
}

impl ScanIfOrdered for BlobMap<ClhtLb> {
    fn scan_if_ordered(&self, _from: u64, _n: usize) -> Vec<(u64, Vec<u8>)> {
        unreachable!("hash backings are never scanned by the driver")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ordered backing: the full surface (set/del/get/multi_get/scan)
    /// against the sequential model, arbitrary binary payloads included.
    #[test]
    fn prop_blob_map_over_skiplist_matches_hashmap(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..96)),
            1..200,
        )
    ) {
        check_against_model(|| BlobMap::new(3, |_| FraserOptSkipList::new()), &ops, true);
    }

    /// Hash backing: point and batched operations against the model.
    #[test]
    fn prop_blob_map_over_clht_matches_hashmap(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..96)),
            1..200,
        )
    ) {
        check_against_model(|| BlobMap::new(3, |_| ClhtLb::with_capacity(64)), &ops, false);
    }
}
