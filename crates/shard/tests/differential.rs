//! Property-based differential tests: a `ShardedMap` over any backing
//! structure must be indistinguishable, per key, from the sequential model
//! (`BTreeMap`). Covers the singular API, the batched API, and mixes of the
//! two, for a lock-based hash backing (`clht_lb`) and a lock-free list
//! backing (`harris`) as the two representative shard types.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ascylib::api::ConcurrentMap;
use ascylib::bst::BstTk;
use ascylib::hashtable::ClhtLb;
use ascylib::list::HarrisList;
use ascylib::ordered::OrderedMap;
use ascylib::skiplist::FraserOptSkipList;
use ascylib_shard::ShardedMap;

/// Applies a mixed singular/batched operation sequence to the sharded map
/// and the model, asserting agreement step by step.
///
/// `ops` entries decode as: selector % 6 → 0 insert, 1 remove, 2 search,
/// 3 multi_insert, 4 multi_remove, 5 multi_get; the batched forms consume a
/// window of subsequent keys so batches overlap the singular traffic.
fn check_against_model<M: ConcurrentMap>(
    map: ShardedMap<M>,
    ops: &[(u8, u64)],
    key_space: u64,
) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, &(op, raw)) in ops.iter().enumerate() {
        let key = 1 + raw % key_space;
        match op % 6 {
            0 => {
                let expected = !model.contains_key(&key);
                assert_eq!(map.insert(key, i as u64), expected, "insert({key}) step {i}");
                model.entry(key).or_insert(i as u64);
            }
            1 => {
                assert_eq!(map.remove(key), model.remove(&key), "remove({key}) step {i}");
            }
            2 => {
                assert_eq!(map.search(key), model.get(&key).copied(), "search({key}) step {i}");
            }
            3 => {
                // Batch-insert a window of keys derived from this op.
                let entries: Vec<(u64, u64)> =
                    (0..1 + raw % 7).map(|j| (1 + (raw + j * 11) % key_space, i as u64 + j)).collect();
                let outcomes = map.multi_insert(&entries);
                for (j, &(k, v)) in entries.iter().enumerate() {
                    let expected = !model.contains_key(&k);
                    assert_eq!(outcomes[j], expected, "multi_insert[{j}]({k}) step {i}");
                    model.entry(k).or_insert(v);
                }
            }
            4 => {
                let keys: Vec<u64> =
                    (0..1 + raw % 7).map(|j| 1 + (raw + j * 13) % key_space).collect();
                let outcomes = map.multi_remove(&keys);
                for (j, &k) in keys.iter().enumerate() {
                    assert_eq!(outcomes[j], model.remove(&k), "multi_remove[{j}]({k}) step {i}");
                }
            }
            _ => {
                let keys: Vec<u64> =
                    (0..1 + raw % 9).map(|j| 1 + (raw + j * 17) % key_space).collect();
                let outcomes = map.multi_get(&keys);
                for (j, &k) in keys.iter().enumerate() {
                    assert_eq!(
                        outcomes[j],
                        model.get(&k).copied(),
                        "multi_get[{j}]({k}) step {i}"
                    );
                }
            }
        }
    }
    // Final state: aggregate size composes the shard views; every surviving
    // key is found with its model value and every absent probe misses.
    assert_eq!(map.size(), model.len());
    for (&k, &v) in &model {
        assert_eq!(map.search(k), Some(v));
    }
    for k in 1..=key_space {
        if !model.contains_key(&k) {
            assert_eq!(map.search(k), None);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_sharded_clht_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..300)) {
        check_against_model(ShardedMap::new(8, |_| ClhtLb::with_capacity(32)), &ops, 96);
    }

    #[test]
    fn prop_sharded_harris_matches_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..300)) {
        check_against_model(ShardedMap::new(5, |_| HarrisList::new()), &ops, 96);
    }

    #[test]
    fn prop_single_shard_degenerates_to_the_backing_structure(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200)) {
        // shards = 1 must still satisfy the model: the layer adds routing
        // and stats but no semantics.
        check_against_model(ShardedMap::new(1, |_| ClhtLb::with_capacity(64)), &ops, 48);
    }

    #[test]
    fn prop_shard_count_is_transparent(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200)) {
        // The same op sequence over different shard counts yields identical
        // observable behaviour (per-key linearizability is routing-invariant).
        check_against_model(ShardedMap::new(3, |_| ClhtLb::with_capacity(32)), &ops, 64);
        check_against_model(ShardedMap::new(13, |_| ClhtLb::with_capacity(16)), &ops, 64);
    }
}

/// Range-operation differential check: scatter-gather `range_search`/`scan`
/// over an ordered backing must agree with the `BTreeMap` model — in
/// particular the k-way merge must deliver *globally* key-ordered results
/// even though each shard holds an arbitrary hash-routed subset. The op
/// decoding and step-by-step model comparison live in the shared
/// `testing::ordered_ops_check` driver; this adds the shard-specific
/// assertions on top.
fn check_ranges_against_model<M: OrderedMap>(map: ShardedMap<M>, ops: &[(u8, u64, u64)]) {
    ascylib::testing::ordered_ops_check(&map, ops, 128);
    // Whole-range sweep: globally ordered.
    let mut out = Vec::new();
    map.range_search(1, u64::MAX, &mut out);
    assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "global key order violated");
    assert_eq!(out.len(), map.size());
    // Every shard participated in the scans (the final sweep alone touches
    // each one).
    let stats = map.total_stats();
    assert!(stats.scans >= map.shard_count() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_sharded_harris_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..250)) {
        check_ranges_against_model(ShardedMap::new(5, |_| HarrisList::new()), &ops);
    }

    #[test]
    fn prop_sharded_fraser_opt_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..250)) {
        check_ranges_against_model(ShardedMap::new(8, |_| FraserOptSkipList::new()), &ops);
    }

    #[test]
    fn prop_sharded_bst_tk_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..250)) {
        check_ranges_against_model(ShardedMap::new(3, |_| BstTk::new()), &ops);
    }
}

/// Concurrent per-key linearizability: threads hammer a small shared key set
/// with inserts/removes; every individual outcome must be consistent with
/// *some* per-key history (checked via per-key success balancing), and the
/// final size must equal the global insert/remove balance.
#[test]
fn concurrent_per_key_balance_holds() {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    let map = Arc::new(ShardedMap::new(4, |_| ClhtLb::with_capacity(64)));
    let key_space = 32u64;
    let per_key_balance: Arc<Vec<AtomicI64>> =
        Arc::new((0..=key_space).map(|_| AtomicI64::new(0)).collect());
    let threads = 4;
    let mut handles = Vec::new();
    for t in 0..threads {
        let map = Arc::clone(&map);
        let balance = Arc::clone(&per_key_balance);
        handles.push(std::thread::spawn(move || {
            let mut state = 0x51AB_u64.wrapping_mul(t + 1);
            for _ in 0..20_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let key = 1 + state % key_space;
                if state & 1 == 0 {
                    if map.insert(key, key) {
                        balance[key as usize].fetch_add(1, Ordering::Relaxed);
                    }
                } else if map.remove(key).is_some() {
                    balance[key as usize].fetch_sub(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut expected = 0usize;
    for key in 1..=key_space {
        let bal = per_key_balance[key as usize].load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            bal == 0 || bal == 1,
            "key {key}: successful inserts minus removes must be 0 or 1, got {bal}"
        );
        assert_eq!(
            map.search(key).is_some(),
            bal == 1,
            "key {key}: presence disagrees with its op balance"
        );
        expected += bal as usize;
    }
    assert_eq!(map.size(), expected);
    // The recorded stats agree with the balances too.
    let stats = map.total_stats();
    assert_eq!(stats.inserts_ok - stats.removes_ok, expected as u64);
}
