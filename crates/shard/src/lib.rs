//! # ascylib-shard — a sharded serving layer over the ASCYLIB structures
//!
//! The ASCY paper shows how to make *one* concurrent search data structure
//! scale. A serving system layered on top faces the next bottleneck: a
//! single instance, however scalable, is one coherence domain, one memory
//! footprint, one hot list/tree, and under skewed production traffic a few
//! popular keys dominate every core's cache traffic. The fix is the same
//! asynchronized-concurrency lesson applied one level up — partition the
//! work so no coordination point serializes it:
//!
//! * [`ShardedMap`] routes every key to one of `N` independent
//!   [`ConcurrentMap`](ascylib::api::ConcurrentMap) instances (any of the
//!   ASCYLIB structures, mixed freely via the registry). Per-key operations
//!   stay linearizable because a key always lands on the same linearizable
//!   shard; there is no cross-shard synchronization at all.
//! * [`router::ShardRouter`] is the stateless hash router (Fibonacci
//!   mixing + Lemire reduction, any shard count).
//! * [`stats::ShardStats`] gives each shard a cache-line-padded block of
//!   traffic counters, so observing a hot shard does not create the false
//!   sharing the layer exists to remove.
//! * The batched API ([`ShardedMap::multi_get`],
//!   [`ShardedMap::multi_insert`], [`ShardedMap::multi_remove`]) groups a
//!   request batch by shard before dispatch and returns results in input
//!   order.
//! * Sharded deployments of *ordered* backings (lists, skip lists, BSTs)
//!   additionally expose the [`ascylib::ordered::OrderedMap`] range-scan
//!   surface: `range_search`/`scan` scatter to every shard and gather the
//!   per-shard sorted results with a k-way merge into one globally
//!   key-ordered answer (with the same non-snapshot semantics as a single
//!   structure).
//! * [`blob::BlobMap`] layers **variable-length byte values** on top: the
//!   sharded index stores 64-bit handles into per-shard ssmem-backed
//!   [`blob::ValueArena`]s, readers copy payloads out under epoch guards,
//!   and overwrites/deletes retire the displaced blob through the same
//!   grace-period machinery that protects the structures' nodes.
//! * [`cache::CacheConfig`] turns the blob map into a **bounded cache**:
//!   per-shard byte budgets enforced by CLOCK eviction on the SET path,
//!   TTL expiry (lazy on read, plus a sweep piggybacked on writes and
//!   scans), with the reference/generation/TTL metadata riding the spare
//!   bits of the 64-bit handle word — the read path pays one relaxed
//!   bit-set and zero extra cache lines.
//!
//! Pairs with `ascylib_harness::dist::KeyDist` to benchmark any structure
//! under uniform, Zipfian, or hotspot traffic (`fig10_sharding` in the bench
//! crate, `examples/sharded_cache.rs` for an end-to-end demo).
//!
//! ```
//! use ascylib::api::ConcurrentMap;
//! use ascylib::hashtable::ClhtLb;
//! use ascylib_shard::ShardedMap;
//!
//! let map = ShardedMap::new(8, |_| ClhtLb::with_capacity(128));
//! map.insert(7, 700);
//! assert_eq!(map.multi_get(&[7, 8]), vec![Some(700), None]);
//! assert_eq!(map.size(), 1);
//! ```

#![warn(missing_docs)]

pub mod blob;
mod batch;
pub mod cache;
pub mod hotkey;
mod map;
mod range;
pub mod router;
pub mod stats;

pub use blob::{ArenaStatsSnapshot, BlobMap, ValueArena};
pub use cache::{CacheConfig, CacheStatsSnapshot, FakeClock, MsClock, WallClock};
pub use hotkey::{HotKeyConfig, HotKeyEngine, HotKeyStatsSnapshot};
pub use map::ShardedMap;
pub use stats::ShardStatsSnapshot;
