//! The sharded map itself.

use std::sync::Arc;

use ascylib::api::ConcurrentMap;

use crate::hotkey::{FrontReadU64, HotKeyConfig, HotKeyEngine, HotKeyStatsSnapshot, HotOp, HotOpKind, HotOpResult};
use crate::router::ShardRouter;
use crate::stats::{ShardStats, ShardStatsSnapshot};

/// Hash-routed sharding over `N` independent [`ConcurrentMap`] instances.
///
/// Every key deterministically routes to one shard (see
/// [`crate::router::ShardRouter`]), so per-key operations inherit the
/// backing structure's linearizability: two operations on the same key
/// always contend inside the same linearizable shard, and operations on
/// different keys were independent to begin with. There is deliberately *no*
/// cross-shard coordination — no global lock, no shared counter on the
/// operation path — which is exactly what lets shards scale independently
/// (aggregate views like [`ConcurrentMap::size`] compose per-shard answers
/// and are as non-linearizable as the underlying `size` already was).
///
/// `ShardedMap` itself implements [`ConcurrentMap`], so it drops into the
/// harness, the registry-driven benchmarks, and anywhere else a single
/// structure would go.
pub struct ShardedMap<M> {
    shards: Box<[M]>,
    stats: Box<[ShardStats]>,
    router: ShardRouter,
    /// The optional hot-key engine (see [`crate::hotkey`]). `None` — the
    /// default — keeps every path exactly as it was before the engine
    /// existed; [`Self::with_hotkeys`] opts in.
    hot: Option<Box<HotKeyEngine>>,
}

impl<M: ConcurrentMap> ShardedMap<M> {
    /// Builds a sharded map over `shards` instances; `make(i)` constructs
    /// the `i`-th shard (size hash-table shards for `capacity / shards`).
    ///
    /// # Panics
    ///
    /// If `shards` is zero.
    pub fn new(shards: usize, mut make: impl FnMut(usize) -> M) -> Self {
        let router = ShardRouter::new(shards);
        ShardedMap {
            shards: (0..shards).map(&mut make).collect(),
            stats: (0..shards).map(|_| ShardStats::default()).collect(),
            router,
            hot: None,
        }
    }

    /// Like [`new`](Self::new), additionally attaching a hot-key engine
    /// (detection + front cache + flat-combining delegation, see
    /// [`crate::hotkey`]). `cfg.k == 0` — or building without the `hotkey`
    /// cargo feature — yields a plain map, so callers can thread an
    /// environment knob straight through.
    pub fn with_hotkeys(shards: usize, cfg: HotKeyConfig, make: impl FnMut(usize) -> M) -> Self {
        let mut map = Self::new(shards, make);
        map.hot = HotKeyEngine::new(shards, cfg);
        map
    }

    /// The attached hot-key engine, if any.
    pub fn hotkey_engine(&self) -> Option<&HotKeyEngine> {
        self.hot.as_deref()
    }

    /// Hot-key engine counters, when an engine is attached.
    pub fn hotkey_stats(&self) -> Option<HotKeyStatsSnapshot> {
        self.hot.as_deref().map(HotKeyEngine::stats)
    }

    /// Current top-k hot keys (empty without an engine).
    pub fn hot_keys(&self) -> Vec<(u64, u64)> {
        self.hot.as_deref().map(HotKeyEngine::hot_keys).unwrap_or_default()
    }

    pub(crate) fn hot(&self) -> Option<&HotKeyEngine> {
        self.hot.as_deref()
    }

    /// Applies a delegated op against the backing shard, *without* stats
    /// (each delegating thread records its own outcome, so the combiner
    /// applying a batch must not double-count).
    fn apply_hot(&self, op: &HotOp) -> HotOpResult {
        let shard = &self.shards[self.router.route(op.key)];
        match op.kind {
            HotOpKind::Insert => HotOpResult { ok: shard.insert(op.key, op.val_u64), old: 0 },
            HotOpKind::Del => match shard.remove(op.key) {
                Some(old) => HotOpResult { ok: true, old },
                None => HotOpResult { ok: false, old: 0 },
            },
            HotOpKind::Set => unreachable!("ShardedMap never publishes blob ops"),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.router.shards()
    }

    /// The shard index a key routes to.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        self.router.route(key)
    }

    /// Direct access to one shard (for inspection/tests).
    pub fn shard(&self, index: usize) -> &M {
        &self.shards[index]
    }

    #[inline]
    pub(crate) fn shard_and_stats(&self, key: u64) -> (&M, &ShardStats) {
        let idx = self.router.route(key);
        (&self.shards[idx], &self.stats[idx])
    }

    #[inline]
    pub(crate) fn stats_of(&self, index: usize) -> &ShardStats {
        &self.stats[index]
    }

    /// Per-shard element counts (same consistency caveat as
    /// [`ConcurrentMap::size`]).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.size()).collect()
    }

    /// Per-shard traffic counters.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Traffic counters aggregated over all shards, plus the reads the
    /// hot-key front cache answered without touching a shard (folded into
    /// `searches`/`hits` here so a fronted search still counts; the
    /// per-shard snapshots deliberately exclude them).
    pub fn total_stats(&self) -> ShardStatsSnapshot {
        let mut total = ShardStatsSnapshot::default();
        for s in &self.stats {
            total.merge(&s.snapshot());
        }
        if let Some(h) = self.hotkey_stats() {
            total.searches = total.searches.saturating_add(h.front_hits + h.front_absent);
            total.hits = total.hits.saturating_add(h.front_hits);
        }
        total
    }
}

impl ShardedMap<Arc<dyn ConcurrentMap>> {
    /// Builds a sharded map whose shards come from an
    /// [`ascylib::registry`] entry, each sized for `capacity / shards`
    /// elements.
    pub fn from_registry(
        entry: &ascylib::registry::AlgorithmEntry,
        shards: usize,
        capacity: usize,
    ) -> Self {
        let per_shard = (capacity / shards.max(1)).max(1);
        ShardedMap::new(shards, |_| (entry.construct)(per_shard))
    }
}

impl<M: ConcurrentMap> ConcurrentMap for ShardedMap<M> {
    fn search(&self, key: u64) -> Option<u64> {
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            match hot.read_u64(key) {
                // Front-served reads skip the shard-stats RMWs;
                // `total_stats` folds the engine counters back in.
                FrontReadU64::Hit(v) => return Some(v),
                FrontReadU64::Absent => return None,
                FrontReadU64::Pending(ticket) => {
                    let (shard, stats) = self.shard_and_stats(key);
                    let found = shard.search(key);
                    stats.record_search(found.is_some());
                    hot.fill_u64(&ticket, found);
                    return found;
                }
                FrontReadU64::Miss => {}
            }
        }
        let (shard, stats) = self.shard_and_stats(key);
        let found = shard.search(key);
        stats.record_search(found.is_some());
        found
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            if hot.fronted(key) {
                let res = hot.delegate(HotOp::insert(key, value), &mut |op| self.apply_hot(op));
                self.stats[self.router.route(key)].record_insert(res.ok);
                return res.ok;
            }
            let (shard, stats) = self.shard_and_stats(key);
            let ok = shard.insert(key, value);
            stats.record_insert(ok);
            // The key may have been promoted while we wrote: drop any
            // cached copy so no reader sees a value older than this write.
            hot.poison(key);
            return ok;
        }
        let (shard, stats) = self.shard_and_stats(key);
        let ok = shard.insert(key, value);
        stats.record_insert(ok);
        ok
    }

    fn remove(&self, key: u64) -> Option<u64> {
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            if hot.fronted(key) {
                let res = hot.delegate(HotOp::del(key), &mut |op| self.apply_hot(op));
                self.stats[self.router.route(key)].record_remove(res.ok);
                return res.ok.then_some(res.old);
            }
            let (shard, stats) = self.shard_and_stats(key);
            let removed = shard.remove(key);
            stats.record_remove(removed.is_some());
            hot.poison(key);
            return removed;
        }
        let (shard, stats) = self.shard_and_stats(key);
        let removed = shard.remove(key);
        stats.record_remove(removed.is_some());
        removed
    }

    /// Sum of the shard sizes (each shard's `size` is already only a
    /// sanity-check view; the sum composes those views).
    fn size(&self) -> usize {
        self.shards.iter().map(|s| s.size()).sum()
    }

    fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Routes to the owning shard's `contains` (no stats recorded: the
    /// harness counts `search`, and `contains` is its wrapper). Cached
    /// front-cache answers are honoured; a pending slot just falls through
    /// (the backing is always current — writes land there first).
    fn contains(&self, key: u64) -> bool {
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            match hot.read_u64(key) {
                FrontReadU64::Hit(_) => return true,
                FrontReadU64::Absent => return false,
                FrontReadU64::Pending(_) | FrontReadU64::Miss => {}
            }
        }
        self.shards[self.router.route(key)].contains(key)
    }
}

impl<M: ConcurrentMap> std::fmt::Debug for ShardedMap<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shard_count())
            .field("sizes", &self.shard_sizes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;
    use ascylib::list::HarrisList;
    use ascylib::registry;

    #[test]
    fn basic_semantics_route_through_shards() {
        let map = ShardedMap::new(8, |_| ClhtLb::with_capacity(64));
        for k in 1..=200u64 {
            assert!(map.insert(k, k * 7));
            assert!(!map.insert(k, 0), "duplicate insert must fail");
        }
        assert_eq!(map.size(), 200);
        assert!(!map.is_empty());
        for k in 1..=200u64 {
            assert_eq!(map.search(k), Some(k * 7));
            assert!(map.contains(k));
        }
        assert_eq!(map.search(201), None);
        for k in 1..=200u64 {
            assert_eq!(map.remove(k), Some(k * 7));
            assert_eq!(map.remove(k), None);
        }
        assert!(map.is_empty());
        // All 200 elements were spread over the shards.
        let stats = map.total_stats();
        assert_eq!(stats.inserts_ok, 200);
        assert_eq!(stats.removes_ok, 200);
        assert_eq!(stats.hits, 200);
    }

    #[test]
    fn shard_sizes_sum_to_total() {
        let map = ShardedMap::new(5, |_| HarrisList::new());
        for k in 1..=97u64 {
            map.insert(k, k);
        }
        let sizes = map.shard_sizes();
        assert_eq!(sizes.len(), 5);
        assert_eq!(sizes.iter().sum::<usize>(), 97);
        assert_eq!(map.size(), 97);
        // Dense keys must not pile into one shard.
        assert!(sizes.iter().all(|&s| s > 0), "empty shard under dense keys: {sizes:?}");
    }

    #[test]
    fn keys_always_find_their_shard_again() {
        let map = ShardedMap::new(7, |_| ClhtLb::with_capacity(32));
        for k in (1..=500u64).step_by(13) {
            let idx = map.shard_of(k);
            map.insert(k, k);
            // The element is in exactly the routed shard.
            assert_eq!(map.shard(idx).search(k), Some(k));
            for other in 0..map.shard_count() {
                if other != idx {
                    assert_eq!(map.shard(other).search(k), None);
                }
            }
        }
    }

    #[test]
    fn registry_backed_construction_works() {
        let entry = registry::by_name("ht-clht-lb").unwrap();
        let map = ShardedMap::from_registry(&entry, 4, 1024);
        assert_eq!(map.shard_count(), 4);
        assert!(map.insert(11, 110));
        assert_eq!(map.search(11), Some(110));
        assert_eq!(map.remove(11), Some(110));
    }

    #[test]
    fn partitioned_concurrency_over_shards() {
        // Reuses the core test battery: the sharded map must behave like any
        // other ConcurrentMap under concurrent disjoint-key traffic.
        ascylib::testing::partitioned_concurrency(
            || ShardedMap::new(4, |_| ClhtLb::with_capacity(256)),
            4,
            128,
        );
    }

    #[test]
    fn balance_stress_over_shards() {
        ascylib::testing::balance_stress(
            || ShardedMap::new(3, |_| HarrisList::new()),
            4,
            2_000,
            96,
        );
    }
}
