//! Cache-tier policy knobs for [`crate::BlobMap`]: byte budgets, TTLs, and
//! the millisecond clock that drives expiry.
//!
//! The mechanism (CLOCK eviction, lazy expiry, the piggybacked sweep) lives
//! in [`crate::blob`]; this module holds the *policy* surface — the config
//! a server or load generator threads down to the store, the spec parsers
//! shared by `kv_server` and `kv_loadgen` (`ASCYLIB_BUDGET` / `--budget`,
//! `ASCYLIB_TTL` / `--ttl`), the swappable clock (a [`FakeClock`] lets the
//! differential tests drive expiry deterministically), and the counter
//! snapshot every scrape surface renders.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A millisecond clock the cache tier reads expiry deadlines against.
///
/// Production uses [`WallClock`] (monotonic, process-relative); tests use
/// [`FakeClock`] to hit exact expiry boundaries deterministically. The only
/// contract is monotonicity — deadlines are stored as absolute `now + ttl`
/// milliseconds, so a clock that jumps backwards would resurrect expired
/// values.
pub trait MsClock: Send + Sync + std::fmt::Debug {
    /// Milliseconds on this clock's (arbitrary, monotone) timeline.
    fn now_ms(&self) -> u64;
}

/// The default clock: milliseconds since the first observation, measured on
/// the OS monotonic clock (immune to wall-time adjustments).
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

/// Process-wide origin for [`WallClock`], fixed at first use so every arena
/// sharing the default clock agrees on the timeline.
static WALL_EPOCH: OnceLock<Instant> = OnceLock::new();

impl MsClock for WallClock {
    fn now_ms(&self) -> u64 {
        WALL_EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
    }
}

/// A hand-cranked clock for tests: time only moves when the test says so,
/// so "expiry at the exact boundary" is a reachable state, not a race.
#[derive(Debug, Default)]
pub struct FakeClock {
    ms: AtomicU64,
}

impl FakeClock {
    /// A fake clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute reading. Must not move backwards
    /// (the cache tier's deadlines assume monotone time).
    pub fn set(&self, ms: u64) {
        self.ms.store(ms, Ordering::Relaxed);
    }
}

impl MsClock for FakeClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::Relaxed)
    }
}

/// Policy for a [`crate::BlobMap`]'s cache tier.
///
/// The default config is fully inert: no byte budget (the store grows
/// without bound, as before this tier existed), no default TTL (values
/// live until deleted), wall clock. `EXPIRE`/`SET … EX` still work against
/// an inert config — per-value TTLs don't need a policy, only the budget
/// and the *default* TTL are policy.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total payload-byte budget across all shards (`None` = unbounded).
    /// Enforced on the SET path by CLOCK eviction; split evenly over
    /// shards, so per-shard skew can evict before the global sum fills.
    pub budget_bytes: Option<u64>,
    /// TTL applied to plain `set` calls (`None` = values don't expire
    /// unless stored via `set_ex` or aged via `expire`).
    pub default_ttl_ms: Option<u64>,
    /// The clock expiry deadlines are measured against.
    pub clock: Arc<dyn MsClock>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { budget_bytes: None, default_ttl_ms: None, clock: Arc::new(WallClock) }
    }
}

impl CacheConfig {
    /// The inert config: unbounded, no default TTL (see type docs).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Sets the total byte budget (`0` means unbounded).
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.budget_bytes = (bytes != 0).then_some(bytes);
        self
    }

    /// Sets the default TTL for plain `set` calls (`0` means none).
    pub fn with_ttl_ms(mut self, ms: u64) -> Self {
        self.default_ttl_ms = (ms != 0).then_some(ms);
        self
    }

    /// Swaps the clock (tests pass a [`FakeClock`] here).
    pub fn with_clock(mut self, clock: Arc<dyn MsClock>) -> Self {
        self.clock = clock;
        self
    }

    /// `true` if any policy (budget or default TTL) is configured.
    pub fn is_active(&self) -> bool {
        self.budget_bytes.is_some() || self.default_ttl_ms.is_some()
    }

    /// Builds a config from `ASCYLIB_BUDGET` and `ASCYLIB_TTL`, panicking
    /// loudly on malformed specs (same contract as `ValueSize::from_env`:
    /// a typo'd limit must not silently become "unbounded").
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(spec) = std::env::var("ASCYLIB_BUDGET") {
            cfg.budget_bytes = parse_budget(&spec).unwrap_or_else(|| {
                panic!("bad ASCYLIB_BUDGET spec {spec:?} (want e.g. 64mb, 512kb, 1048576, or off)")
            });
        }
        if let Ok(spec) = std::env::var("ASCYLIB_TTL") {
            cfg.default_ttl_ms = parse_ttl(&spec).unwrap_or_else(|| {
                panic!("bad ASCYLIB_TTL spec {spec:?} (want e.g. 500ms, 30s, 5m, 2h, or off)")
            });
        }
        cfg
    }

    /// [`from_env`](Self::from_env) with optional command-line overrides:
    /// a `--budget` / `--ttl` flag spec wins over its environment variable.
    /// Malformed specs panic with the accepted forms, like the env path —
    /// a typo'd limit must not silently become "unbounded".
    pub fn resolve(budget_flag: Option<&str>, ttl_flag: Option<&str>) -> Self {
        let mut cfg = Self::from_env();
        if let Some(spec) = budget_flag {
            cfg.budget_bytes = parse_budget(spec).unwrap_or_else(|| {
                panic!("bad --budget spec {spec:?} (want e.g. 64mb, 512kb, 1048576, or off)")
            });
        }
        if let Some(spec) = ttl_flag {
            cfg.default_ttl_ms = parse_ttl(spec).unwrap_or_else(|| {
                panic!("bad --ttl spec {spec:?} (want e.g. 500ms, 30s, 5m, 2h, or off)")
            });
        }
        cfg
    }

    /// Human-readable policy summary for startup banners.
    pub fn describe(&self) -> String {
        let budget = match self.budget_bytes {
            Some(b) => format!("budget {b} B"),
            None => "no budget".to_string(),
        };
        match self.default_ttl_ms {
            Some(t) => format!("{budget}, default ttl {t} ms"),
            None => budget,
        }
    }
}

/// Parses a byte-budget spec: a decimal count with an optional `kb`/`mb`/
/// `gb` suffix (case-insensitive), or `off`/`none`/`0` for unbounded.
/// Outer `None` = malformed; inner `None` = explicitly unbounded.
pub fn parse_budget(spec: &str) -> Option<Option<u64>> {
    let s = spec.trim().to_ascii_lowercase();
    if s == "off" || s == "none" || s == "0" {
        return Some(None);
    }
    let (digits, unit) = match s.find(|c: char| !c.is_ascii_digit()) {
        Some(0) => return None,
        Some(i) => s.split_at(i),
        None => (s.as_str(), ""),
    };
    let n: u64 = digits.parse().ok()?;
    let mul: u64 = match unit {
        "" | "b" => 1,
        "kb" | "k" => 1 << 10,
        "mb" | "m" => 1 << 20,
        "gb" | "g" => 1 << 30,
        _ => return None,
    };
    let bytes = n.checked_mul(mul)?;
    Some((bytes != 0).then_some(bytes))
}

/// Parses a TTL spec: a decimal count with an optional `ms`/`s`/`m`/`h`
/// suffix (no suffix = seconds), or `off`/`none`/`0` for no default TTL.
/// Outer `None` = malformed; inner `None` = explicitly no TTL.
pub fn parse_ttl(spec: &str) -> Option<Option<u64>> {
    let s = spec.trim().to_ascii_lowercase();
    if s == "off" || s == "none" || s == "0" {
        return Some(None);
    }
    let (digits, unit) = match s.find(|c: char| !c.is_ascii_digit()) {
        Some(0) => return None,
        Some(i) => s.split_at(i),
        None => (s.as_str(), ""),
    };
    let n: u64 = digits.parse().ok()?;
    let mul: u64 = match unit {
        "ms" => 1,
        "" | "s" => 1_000,
        "m" => 60_000,
        "h" => 3_600_000,
        _ => return None,
    };
    let ms = n.checked_mul(mul)?;
    Some((ms != 0).then_some(ms))
}

/// Point-in-time cache-tier counters (summed over shards by
/// [`crate::BlobMap::cache_stats`]).
///
/// # Counters vs. gauges
///
/// `budget_bytes` and `live_bytes` are **gauges** (current state);
/// everything else is a monotone **counter**. [`merge`](Self::merge) sums
/// all fields — per-shard budgets and live bytes legitimately add up to
/// the store totals, unlike cross-*snapshot* gauge merging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Configured payload-byte budget (0 = unbounded). Gauge.
    pub budget_bytes: u64,
    /// Payload bytes currently reserved/live (headers and size-class
    /// padding excluded). Gauge; with a budget configured this never
    /// exceeds it unless `forced` admissions occurred.
    pub live_bytes: u64,
    /// Values evicted by CLOCK to make room under the budget.
    pub evictions: u64,
    /// Expired values reclaimed lazily by a read that found them dead.
    pub expired_lazy: u64,
    /// Expired values reclaimed by the piggybacked write/scan sweep.
    pub expired_swept: u64,
    /// Admissions forced through over budget because nothing was
    /// evictable (e.g. a single value larger than a shard's budget).
    pub forced: u64,
    /// Values currently carrying an expiry deadline. Gauge.
    pub ttl_live: u64,
}

impl CacheStatsSnapshot {
    /// Adds another shard's snapshot into this one (saturating).
    pub fn merge(&mut self, other: &CacheStatsSnapshot) {
        self.budget_bytes = self.budget_bytes.saturating_add(other.budget_bytes);
        self.live_bytes = self.live_bytes.saturating_add(other.live_bytes);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.expired_lazy = self.expired_lazy.saturating_add(other.expired_lazy);
        self.expired_swept = self.expired_swept.saturating_add(other.expired_swept);
        self.forced = self.forced.saturating_add(other.forced);
        self.ttl_live = self.ttl_live.saturating_add(other.ttl_live);
    }

    /// Total expired values reclaimed (lazy + swept).
    pub fn expired(&self) -> u64 {
        self.expired_lazy.saturating_add(self.expired_swept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_specs_parse_units_and_reject_garbage() {
        assert_eq!(parse_budget("1048576"), Some(Some(1 << 20)));
        assert_eq!(parse_budget("512kb"), Some(Some(512 << 10)));
        assert_eq!(parse_budget("64MB"), Some(Some(64 << 20)));
        assert_eq!(parse_budget(" 2gb "), Some(Some(2 << 30)));
        assert_eq!(parse_budget("16k"), Some(Some(16 << 10)));
        assert_eq!(parse_budget("off"), Some(None));
        assert_eq!(parse_budget("0"), Some(None));
        assert_eq!(parse_budget("0kb"), Some(None));
        assert_eq!(parse_budget(""), None);
        assert_eq!(parse_budget("mb"), None);
        assert_eq!(parse_budget("12tb"), None);
        assert_eq!(parse_budget("1.5mb"), None);
        assert_eq!(parse_budget("-1"), None);
        assert_eq!(parse_budget("99999999999999999999"), None, "overflowing count");
        assert_eq!(parse_budget("99999999999gb"), None, "overflowing multiply");
    }

    #[test]
    fn ttl_specs_parse_units_and_reject_garbage() {
        assert_eq!(parse_ttl("500ms"), Some(Some(500)));
        assert_eq!(parse_ttl("30s"), Some(Some(30_000)));
        assert_eq!(parse_ttl("30"), Some(Some(30_000)), "bare count is seconds");
        assert_eq!(parse_ttl("5M"), Some(Some(300_000)));
        assert_eq!(parse_ttl("2h"), Some(Some(7_200_000)));
        assert_eq!(parse_ttl("off"), Some(None));
        assert_eq!(parse_ttl("none"), Some(None));
        assert_eq!(parse_ttl("0ms"), Some(None));
        assert_eq!(parse_ttl(""), None);
        assert_eq!(parse_ttl("s"), None);
        assert_eq!(parse_ttl("10d"), None);
        assert_eq!(parse_ttl("ten"), None);
    }

    #[test]
    fn fake_clock_is_hand_cranked() {
        let c = FakeClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(250);
        assert_eq!(c.now_ms(), 250);
        c.set(1000);
        assert_eq!(c.now_ms(), 1000);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let a = WallClock.now_ms();
        let b = WallClock.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn config_builders_and_activity() {
        let inert = CacheConfig::unbounded();
        assert!(!inert.is_active());
        assert!(CacheConfig::unbounded().with_budget(1024).is_active());
        assert!(CacheConfig::unbounded().with_ttl_ms(500).is_active());
        assert!(!CacheConfig::unbounded().with_budget(0).with_ttl_ms(0).is_active());
    }

    #[test]
    fn flag_specs_override_and_describe_renders_the_policy() {
        // No flags: whatever the (unset) environment says — inert here.
        assert_eq!(CacheConfig::resolve(None, None).describe(), "no budget");
        let cfg = CacheConfig::resolve(Some("64kb"), Some("30s"));
        assert_eq!(cfg.budget_bytes, Some(64 << 10));
        assert_eq!(cfg.default_ttl_ms, Some(30_000));
        assert_eq!(cfg.describe(), "budget 65536 B, default ttl 30000 ms");
        assert_eq!(CacheConfig::resolve(Some("off"), Some("off")).describe(), "no budget");
    }

    #[test]
    #[should_panic(expected = "bad --budget spec")]
    fn malformed_budget_flags_panic_loudly() {
        let _ = CacheConfig::resolve(Some("12tb"), None);
    }

    #[test]
    #[should_panic(expected = "bad --ttl spec")]
    fn malformed_ttl_flags_panic_loudly() {
        let _ = CacheConfig::resolve(None, Some("ten"));
    }

    #[test]
    fn snapshot_merge_sums_everything() {
        let mut a = CacheStatsSnapshot {
            budget_bytes: 100,
            live_bytes: 40,
            evictions: 1,
            expired_lazy: 2,
            expired_swept: 3,
            forced: 0,
            ttl_live: 4,
        };
        let b = CacheStatsSnapshot {
            budget_bytes: 100,
            live_bytes: 60,
            evictions: 10,
            expired_lazy: 20,
            expired_swept: 30,
            forced: 1,
            ttl_live: 40,
        };
        a.merge(&b);
        assert_eq!(a.budget_bytes, 200);
        assert_eq!(a.live_bytes, 100);
        assert_eq!(a.evictions, 11);
        assert_eq!(a.expired(), 55);
        assert_eq!(a.forced, 1);
        assert_eq!(a.ttl_live, 44);
    }
}
