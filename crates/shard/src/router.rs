//! Key → shard routing.
//!
//! Routing must be cheap (it sits in front of every operation), stable (a
//! key always lands on the same shard — this is what makes the sharded map
//! linearizable per key), and well-mixed (the benchmark keyspace is dense
//! integers `1..=2N`, so the identity hash would stripe adjacent keys into
//! the same shard and a Zipfian head of consecutive keys into one hot shard).

/// Stateless hash router mapping `u64` keys onto `[0, shards)`.
///
/// The hash is a Fibonacci multiply followed by an xor-fold of the high bits
/// (the multiplier is ⌊2⁶⁴/φ⌋, which distributes consecutive integers
/// maximally far apart), and the index is taken with Lemire's multiply-shift
/// reduction so any shard count works, not just powers of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` shards (must be at least 1).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded map needs at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard index for a key, in `[0, shards)`.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h = h ^ (h >> 32);
        ((h as u128 * self.shards as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_stable_and_in_range() {
        for shards in [1usize, 2, 3, 7, 8, 16, 100] {
            let r = ShardRouter::new(shards);
            for key in 1..5_000u64 {
                let idx = r.route(key);
                assert!(idx < shards);
                assert_eq!(idx, r.route(key), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = ShardRouter::new(1);
        assert!((1..1000u64).all(|k| r.route(k) == 0));
    }

    #[test]
    fn dense_keyspaces_spread_roughly_evenly() {
        let shards = 16;
        let r = ShardRouter::new(shards);
        let mut counts = vec![0usize; shards];
        let keys = 16_000u64;
        for key in 1..=keys {
            counts[r.route(key)] += 1;
        }
        let expect = keys as usize / shards;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {i} badly balanced: {c} of {keys} (expected ~{expect})"
            );
        }
    }

    #[test]
    fn consecutive_keys_do_not_stripe_into_one_shard() {
        // The Zipfian head is the first few consecutive keys; they must not
        // all land on one shard.
        let r = ShardRouter::new(8);
        let head: std::collections::BTreeSet<usize> = (1..=8u64).map(|k| r.route(k)).collect();
        assert!(head.len() >= 4, "keys 1..=8 only hit shards {head:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardRouter::new(0);
    }
}
