//! The hot-key engine: detection, front cache, and write delegation for
//! skewed traffic.
//!
//! Sharding removes *cross-key* contention, but under Zipfian skew a
//! handful of keys dominate the traffic and every core fights over the
//! same few cache lines — the exact phenomenon the paper's cache-miss
//! analysis attributes slowdowns to, and one no amount of sharding can
//! dilute (the hot key always routes to the same shard). This module
//! attacks *intra-key* contention in three parts:
//!
//! 1. **Detection** — a per-shard, cache-padded count-min sketch updated
//!    on a 1-in-N sample of operations (the hot path pays one thread-local
//!    tick per op and ~one sketch increment per sample) feeds a small
//!    top-k table (k ≤ 64) with periodic decay, exposed via
//!    [`HotKeyEngine::hot_keys`].
//! 2. **Front cache** — the top-k entries get seqlock-versioned value
//!    copies in a small read-mostly slot array consulted *before* the
//!    shard route on reads. A hit is a couple of shared (unbounced) cache
//!    line reads and a short copy; the epoch guard, index probe, and
//!    arena indirection of the backing path are all skipped.
//! 3. **Delegation** — writes to a fronted key are published into a
//!    per-shard flat-combining slot array; one combiner applies the batch
//!    against the backing structure while the others spin on their slot,
//!    collapsing N CAS storms on one key into a single owner pass.
//!
//! # Coherence contract
//!
//! A front-cache read **never returns a value older than the last
//! completed write** to that key. The protocol that guarantees it:
//!
//! * The backing structure is written *first*, always. The front cache is
//!   strictly a cache of the backing — a reader that bypasses it (scans,
//!   batched paths, `contains`) can never observe staleness.
//! * Writers that see the key fronted delegate through the combiner; the
//!   owner refreshes the slot *after* each backing apply, and per-key
//!   installs are serialized by the per-slot writer lock, so slot order
//!   matches backing order.
//! * A writer that raced a promotion (checked before the key was fronted,
//!   applied to the backing, then found the key fronted) **poisons** the
//!   slot: the cached copy is dropped and the slot's `version` bumps, so
//!   any in-flight fill or delegated install that predates the write
//!   fails its version check instead of installing a stale value.
//! * Reads of a fronted-but-empty (pending) slot fall through to the
//!   backing and then try to install what they read, guarded by the same
//!   version check (a lease, in memcache terms): the fill only lands if
//!   no write invalidated the slot since before the backing read.
//!
//! Values longer than [`FRONT_VALUE_CAP`] are never cached (their slot
//! stays pending and reads pass through); delegation still batches their
//! writes.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam_utils::CachePadded;

use crate::router::ShardRouter;

/// Largest payload a front-cache slot can hold, in bytes. Bigger values
/// pass through to the backing on every read (their writes still combine).
pub const FRONT_VALUE_CAP: usize = 256;

/// Hard ceiling on `k` (the front cache is a read-mostly *array*; past a
/// few dozen entries the probe itself would start missing in cache).
pub const MAX_K: usize = 64;

const FRONT_WORDS: usize = FRONT_VALUE_CAP / 8;

/// `len` sentinel: the slot fronts the key but holds no value copy
/// (readers fall through to the backing and may fill).
const LEN_PENDING: u32 = u32::MAX;
/// `len` sentinel: the key is known absent (cached negative lookup).
const LEN_ABSENT: u32 = u32::MAX - 1;

// 4 rows x 1024 columns x 4 B = 16 KiB per shard. Column count bounds
// detection depth: a key is only distinguishable from collision noise
// when its sample rate exceeds ~1/SKETCH_COLS of the stream, so 1024
// columns resolve the full MAX_K tail of a zipf(1.2) keyspace where 256
// would drown everything past rank ~30 in its own noise floor.
const SKETCH_ROWS: usize = 4;
const SKETCH_COLS: usize = 1024;

const COMBINE_SLOTS: usize = 4;
const SLOT_EMPTY: u32 = 0;
const SLOT_WRITING: u32 = 1;
const SLOT_PUBLISHED: u32 = 2;
const SLOT_DONE: u32 = 3;

const STRIPES: usize = 8;

/// Tuning knobs for [`HotKeyEngine`]. `k = 0` disables the engine
/// entirely (constructors return `None` and the maps run their plain
/// paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotKeyConfig {
    /// Maximum keys fronted at once (clamped to [`MAX_K`]; 0 disables).
    pub k: usize,
    /// Sample 1 op in this many for sketch updates (rounded up to a power
    /// of two; 1 samples everything — useful in tests).
    pub sample_every: u32,
    /// Halve sketch and top-k counts every this many *sampled* updates.
    pub decay_every: u64,
    /// Sketch estimate needed before a key is considered for promotion.
    pub promote_min: u32,
}

impl Default for HotKeyConfig {
    /// 16 fronted keys, 1-in-128 sampling, decay every 4096 samples,
    /// promote at an estimate of 16. The sampling rate keeps the
    /// detection cost on *cold* traffic (4 sketch-line touches per
    /// sample) well under 1% of a backing operation. The
    /// conservative-update sketch keeps a key's estimate near its true
    /// sampled count, so the promotion threshold separates skew from
    /// noise directly: a key must actually account for ~16 of the 4096
    /// samples in a decay epoch (≈ 0.4% of all traffic) to be fronted,
    /// which evenly spread workloads never reach.
    fn default() -> Self {
        HotKeyConfig { k: 16, sample_every: 128, decay_every: 4096, promote_min: 16 }
    }
}

impl HotKeyConfig {
    /// The default configuration with `k` fronted keys.
    pub fn with_k(k: usize) -> Self {
        HotKeyConfig { k, ..Default::default() }
    }

    /// Reads the `ASCYLIB_HOTKEYS` environment variable (the `k` knob;
    /// `0` disables); defaults to the stock configuration.
    ///
    /// # Panics
    ///
    /// Panics on a non-numeric spec (the examples want a loud failure,
    /// not a silently substituted default).
    pub fn from_env() -> HotKeyConfig {
        match std::env::var("ASCYLIB_HOTKEYS") {
            Ok(spec) => {
                let k = spec
                    .trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad ASCYLIB_HOTKEYS spec {spec:?}"));
                HotKeyConfig::with_k(k)
            }
            Err(_) => HotKeyConfig::default(),
        }
    }

    /// An aggressive configuration for tests: everything sampled, instant
    /// promotion, fast decay.
    pub fn eager(k: usize) -> Self {
        HotKeyConfig { k, sample_every: 1, decay_every: 65536, promote_min: 2 }
    }
}

/// The kind of write travelling through the combiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotOpKind {
    /// Blob-layer overwrite: `val_u64` carries the pre-stored arena
    /// handle, `ptr`/`len` the payload bytes (for the slot refresh).
    Set,
    /// Structure-level insert-if-absent of `val_u64`.
    Insert,
    /// Remove.
    Del,
}

/// One write published into a combining slot. Plain data — the payload
/// bytes behind `ptr` are owned by the publishing thread, which keeps
/// them alive while it spins for completion.
#[derive(Debug, Clone, Copy)]
pub struct HotOp {
    /// What to apply.
    pub kind: HotOpKind,
    /// The (hot) key.
    pub key: u64,
    /// Value (`Insert`) or arena handle (`Set`).
    pub val_u64: u64,
    /// Payload pointer for `Set` (as an address; 0 otherwise).
    pub ptr: usize,
    /// Payload length for `Set`.
    pub len: usize,
}

impl HotOp {
    /// A structure-level insert op.
    pub fn insert(key: u64, value: u64) -> Self {
        HotOp { kind: HotOpKind::Insert, key, val_u64: value, ptr: 0, len: 0 }
    }

    /// A delete op.
    pub fn del(key: u64) -> Self {
        HotOp { kind: HotOpKind::Del, key, val_u64: 0, ptr: 0, len: 0 }
    }

    /// A blob overwrite op carrying the pre-stored handle and the payload
    /// it points at (kept alive by the publisher until the op completes).
    pub fn set(key: u64, handle: u64, value: &[u8]) -> Self {
        HotOp {
            kind: HotOpKind::Set,
            key,
            val_u64: handle,
            ptr: value.as_ptr() as usize,
            len: value.len(),
        }
    }

    /// The payload bytes of a `Set` op.
    ///
    /// # Safety
    ///
    /// Only valid while the publishing thread is still waiting on the op
    /// (it owns the buffer) — i.e. from inside the combiner's apply pass.
    unsafe fn payload(&self) -> &[u8] {
        // SAFETY: forwarded caller contract.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

/// What a delegated write produced: `ok` is the operation's boolean
/// outcome (created / inserted / removed), `old` the removed value when
/// the apply returns one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotOpResult {
    /// Operation outcome (`set` created, `insert` succeeded, `del` found).
    pub ok: bool,
    /// Removed value (structure-level `Del` only).
    pub old: u64,
}

/// Outcome of a front-cache read probe.
#[derive(Debug)]
pub enum FrontRead {
    /// Served from the front cache; the value was appended to the output.
    Hit,
    /// Served from the front cache: the key is known absent.
    Absent,
    /// The key is fronted but the slot holds no copy — read the backing,
    /// then offer the result back via [`HotKeyEngine::fill`].
    Pending(FillTicket),
    /// Not fronted (or mid-update): take the plain backing path.
    Miss,
}

/// A fill lease handed out by a pending front-cache probe: the install
/// only lands if no write invalidated the slot after the lease was taken
/// (and therefore possibly after the caller's backing read).
#[derive(Debug, Clone, Copy)]
pub struct FillTicket {
    slot: usize,
    key: u64,
    version: u64,
}

/// Point-in-time engine counters.
///
/// # Counters vs. gauges
///
/// Every field except `fronted` is a monotone **counter**;
/// [`merge_counters`](Self::merge_counters) sums those and deliberately
/// leaves the `fronted` **gauge** untouched (same contract as the server's
/// `ServerStatsSnapshot`: gauges are set once by whoever owns the live
/// view, never summed across snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotKeyStatsSnapshot {
    /// Operations that passed the 1-in-N sampler into the sketch.
    pub sampled: u64,
    /// Keys promoted into the front table.
    pub promotions: u64,
    /// Keys demoted (decayed out or displaced).
    pub demotions: u64,
    /// Reads served a value copy from the front cache.
    pub front_hits: u64,
    /// Reads served a cached negative lookup.
    pub front_absent: u64,
    /// Reads that found the key fronted but had to fall through (no copy
    /// cached yet, oversize value, or a concurrent refresh in flight).
    pub front_pending: u64,
    /// Successful read-side slot fills.
    pub fills: u64,
    /// Slots invalidated by a racing plain write.
    pub poisons: u64,
    /// Writes that travelled through the flat combiner.
    pub delegated: u64,
    /// Combiner owner passes (each applies ≥ 1 delegated write).
    pub combined_batches: u64,
    /// Keys currently fronted (gauge — not merged).
    pub fronted: u64,
}

impl HotKeyStatsSnapshot {
    /// Mean delegated writes applied per combiner pass.
    pub fn avg_batch(&self) -> f64 {
        if self.combined_batches == 0 {
            0.0
        } else {
            self.delegated as f64 / self.combined_batches as f64
        }
    }

    /// Front-cache hit rate over reads that probed a fronted key.
    pub fn front_hit_rate(&self) -> f64 {
        let served = self.front_hits + self.front_absent;
        let total = served + self.front_pending;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }

    /// Adds the **counter** fields of another snapshot into this one
    /// (saturating); the `fronted` gauge is deliberately not merged — the
    /// aggregator overwrites it from the live table.
    pub fn merge_counters(&mut self, other: &HotKeyStatsSnapshot) {
        self.sampled = self.sampled.saturating_add(other.sampled);
        self.promotions = self.promotions.saturating_add(other.promotions);
        self.demotions = self.demotions.saturating_add(other.demotions);
        self.front_hits = self.front_hits.saturating_add(other.front_hits);
        self.front_absent = self.front_absent.saturating_add(other.front_absent);
        self.front_pending = self.front_pending.saturating_add(other.front_pending);
        self.fills = self.fills.saturating_add(other.fills);
        self.poisons = self.poisons.saturating_add(other.poisons);
        self.delegated = self.delegated.saturating_add(other.delegated);
        self.combined_batches = self.combined_batches.saturating_add(other.combined_batches);
    }
}

// ---------------------------------------------------------------------------
// Striped counters: hot-path stats must not themselves become the shared
// cache line the engine exists to remove.

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    static TICK: Cell<u32> = const { Cell::new(0) };
}

fn stripe_id() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
        s.set(v);
        v
    })
}

#[derive(Default)]
struct Striped([CachePadded<AtomicU64>; STRIPES]);

impl Striped {
    #[inline]
    fn add(&self, n: u64) {
        self.0[stripe_id()].fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.0.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

// ---------------------------------------------------------------------------
// Detection: per-shard count-min sketch + top-k table with decay.

struct Sketch {
    rows: [[AtomicU32; SKETCH_COLS]; SKETCH_ROWS],
}

impl Default for Sketch {
    fn default() -> Self {
        Sketch { rows: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU32::new(0))) }
    }
}

#[inline]
fn mix(key: u64) -> u64 {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

impl Sketch {
    /// Conservative-update increment: raises only the cells below
    /// `min + 1` (via `fetch_max`, so racing bumps stay monotone) and
    /// returns the new count-min estimate. Plain count-min inflates every
    /// colliding cell on every bump, which pushes the background noise
    /// floor up to the *total* sample rate over the column count;
    /// conservative update keeps cold keys' estimates near their true
    /// counts, so a promotion threshold can sit between a skewed tail
    /// rank and uniform background where plain count-min could not
    /// separate the two.
    fn bump(&self, key: u64) -> u32 {
        let h1 = mix(key);
        let h2 = mix(key ^ 0xC2B2_AE3D_27D4_EB4F) | 1;
        let mut cells: [&AtomicU32; SKETCH_ROWS] = [&self.rows[0][0]; SKETCH_ROWS];
        let mut est = u32::MAX;
        for (i, row) in self.rows.iter().enumerate() {
            let idx = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % SKETCH_COLS as u64) as usize;
            cells[i] = &row[idx];
            est = est.min(cells[i].load(Ordering::Relaxed));
        }
        // Saturate well below u32::MAX so decay halving never wraps.
        if est >= u32::MAX / 2 {
            return est;
        }
        let target = est + 1;
        for cell in cells {
            cell.fetch_max(target, Ordering::Relaxed);
        }
        target
    }

    /// Halves every cell. Racy against concurrent bumps (an increment can
    /// be lost) — the sketch is approximate by construction.
    fn decay(&self) {
        for row in &self.rows {
            for cell in row {
                let v = cell.load(Ordering::Relaxed);
                if v > 0 {
                    cell.store(v / 2, Ordering::Relaxed);
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TopEntry {
    key: u64,
    count: u32,
}

// ---------------------------------------------------------------------------
// Front cache slots.

struct FrontSlot {
    /// Seqlock sequence: even = stable, odd = writer in progress. All
    /// transitions happen under `lock`.
    seq: AtomicU64,
    /// Fill lease: bumped by every poison, claim, release, and delegated
    /// install. A fill (or delegated install) captured before a bump must
    /// not land.
    version: AtomicU64,
    /// The fronted key (0 = empty; the structures reserve key 0).
    key: AtomicU64,
    /// Cached payload length, or [`LEN_PENDING`] / [`LEN_ABSENT`].
    len: AtomicU32,
    /// Slot writer lock (combiner installs, fills, poisons, claims).
    lock: AtomicU32,
    /// Payload bytes, word-packed (torn reads are rejected by `seq`).
    words: [AtomicU64; FRONT_WORDS],
}

impl Default for FrontSlot {
    fn default() -> Self {
        FrontSlot {
            seq: AtomicU64::new(0),
            version: AtomicU64::new(0),
            key: AtomicU64::new(0),
            len: AtomicU32::new(LEN_PENDING),
            lock: AtomicU32::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl FrontSlot {
    fn acquire(&self) {
        let mut spins = 0u32;
        while self
            .lock
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins % 1024 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn try_acquire(&self) -> bool {
        self.lock.compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed).is_ok()
    }

    fn release(&self) {
        self.lock.store(0, Ordering::Release);
    }

    /// Rewrites the slot contents under the seqlock write protocol.
    /// Caller holds `lock`.
    fn write(&self, key: u64, state: SlotState) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.key.store(key, Ordering::Relaxed);
        match state {
            SlotState::Pending => self.len.store(LEN_PENDING, Ordering::Relaxed),
            SlotState::Absent => self.len.store(LEN_ABSENT, Ordering::Relaxed),
            SlotState::Value(bytes) => {
                debug_assert!(bytes.len() <= FRONT_VALUE_CAP);
                for (i, chunk) in bytes.chunks(8).enumerate() {
                    let mut word = [0u8; 8];
                    word[..chunk.len()].copy_from_slice(chunk);
                    self.words[i].store(u64::from_le_bytes(word), Ordering::Relaxed);
                }
                self.len.store(bytes.len() as u32, Ordering::Relaxed);
            }
        }
        self.seq.store(s + 2, Ordering::Release);
    }
}

enum SlotState<'a> {
    Pending,
    Absent,
    Value(&'a [u8]),
}

// ---------------------------------------------------------------------------
// Flat-combining slots.

struct CombineSlot {
    state: AtomicU32,
    kind: AtomicU32,
    key: AtomicU64,
    val: AtomicU64,
    ptr: AtomicU64,
    len: AtomicU64,
    res_ok: AtomicU32,
    res_old: AtomicU64,
}

impl Default for CombineSlot {
    fn default() -> Self {
        CombineSlot {
            state: AtomicU32::new(SLOT_EMPTY),
            kind: AtomicU32::new(0),
            key: AtomicU64::new(0),
            val: AtomicU64::new(0),
            ptr: AtomicU64::new(0),
            len: AtomicU64::new(0),
            res_ok: AtomicU32::new(0),
            res_old: AtomicU64::new(0),
        }
    }
}

impl CombineSlot {
    /// Reads the published op. Caller observed `SLOT_PUBLISHED` with
    /// `Acquire`, so the Relaxed field reads are ordered after the
    /// publisher's writes.
    fn op(&self) -> HotOp {
        let kind = match self.kind.load(Ordering::Relaxed) {
            0 => HotOpKind::Set,
            1 => HotOpKind::Insert,
            _ => HotOpKind::Del,
        };
        HotOp {
            kind,
            key: self.key.load(Ordering::Relaxed),
            val_u64: self.val.load(Ordering::Relaxed),
            ptr: self.ptr.load(Ordering::Relaxed) as usize,
            len: self.len.load(Ordering::Relaxed) as usize,
        }
    }

    fn put_op(&self, op: &HotOp) {
        let kind = match op.kind {
            HotOpKind::Set => 0,
            HotOpKind::Insert => 1,
            HotOpKind::Del => 2,
        };
        self.kind.store(kind, Ordering::Relaxed);
        self.key.store(op.key, Ordering::Relaxed);
        self.val.store(op.val_u64, Ordering::Relaxed);
        self.ptr.store(op.ptr as u64, Ordering::Relaxed);
        self.len.store(op.len as u64, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Combiner {
    lock: AtomicU32,
    slots: [CombineSlot; COMBINE_SLOTS],
}

// ---------------------------------------------------------------------------
// The engine.

struct EngineCounters {
    sampled: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
    front_hits: Striped,
    front_absent: Striped,
    front_pending: Striped,
    fills: AtomicU64,
    poisons: AtomicU64,
    delegated: Striped,
    combined_batches: AtomicU64,
}

impl Default for EngineCounters {
    fn default() -> Self {
        EngineCounters {
            sampled: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            front_hits: Striped::default(),
            front_absent: Striped::default(),
            front_pending: Striped::default(),
            fills: AtomicU64::new(0),
            poisons: AtomicU64::new(0),
            delegated: Striped::default(),
            combined_batches: AtomicU64::new(0),
        }
    }
}

/// The three-part hot-key engine (see the module docs). One instance
/// serves one map; [`ShardedMap`](crate::ShardedMap) and
/// [`BlobMap`](crate::BlobMap) construct it via their `with_hotkeys`
/// constructors and thread every operation through it.
pub struct HotKeyEngine {
    k: usize,
    sample_mask: u32,
    decay_every: u64,
    promote_min: u32,
    router: ShardRouter,
    sketches: Box<[CachePadded<Sketch>]>,
    samples: CachePadded<AtomicU64>,
    topk: Mutex<Vec<TopEntry>>,
    slots: Box<[FrontSlot]>,
    /// Read-path filter mirroring each slot's owner key. A `FrontSlot`
    /// spans multiple cache lines, so cold-key probes into `slots` would
    /// miss L1; this dense array (8 B per slot) stays resident and
    /// rejects non-fronted keys with a single relaxed load. It is
    /// updated under the slot lock wherever ownership changes; a stale
    /// entry can only cause a benign miss or a wasted full probe — the
    /// slot's own `key` stays authoritative inside the seqlock dance.
    filter: Box<[AtomicU64]>,
    slot_shift: u32,
    /// Number of slots currently owning a key (`slot.key != 0`),
    /// maintained under the slot locks. Readers use a relaxed load of
    /// this as a zero-cost "is the front even populated" early-out: a
    /// stale zero only costs one backing read, never staleness.
    live: CachePadded<AtomicU64>,
    combiners: Box<[CachePadded<Combiner>]>,
    c: EngineCounters,
}

impl HotKeyEngine {
    /// Builds an engine for a map of `shards` shards. Returns `None` when
    /// `cfg.k == 0` or the `hotkey` cargo feature is disabled — callers
    /// hold an `Option` and fall back to their plain paths.
    pub fn new(shards: usize, cfg: HotKeyConfig) -> Option<Box<HotKeyEngine>> {
        if cfg.k == 0 || !cfg!(feature = "hotkey") {
            return None;
        }
        let k = cfg.k.min(MAX_K);
        // 4x fan-out: top-k keys are direct-mapped, so slot collisions
        // silently halve coverage of the hot mass; at 4k slots the
        // expected number of colliding top-k keys stays in single digits
        // even at MAX_K.
        let slot_count = (k * 4).next_power_of_two().max(8);
        Some(Box::new(HotKeyEngine {
            k,
            sample_mask: cfg.sample_every.next_power_of_two().max(1) - 1,
            decay_every: cfg.decay_every.max(1),
            promote_min: cfg.promote_min.max(1),
            router: ShardRouter::new(shards),
            sketches: (0..shards).map(|_| CachePadded::new(Sketch::default())).collect(),
            samples: CachePadded::new(AtomicU64::new(0)),
            topk: Mutex::new(Vec::with_capacity(k)),
            slots: (0..slot_count).map(|_| FrontSlot::default()).collect(),
            filter: (0..slot_count).map(|_| AtomicU64::new(0)).collect(),
            slot_shift: 64 - slot_count.trailing_zeros(),
            live: CachePadded::new(AtomicU64::new(0)),
            combiners: (0..shards).map(|_| CachePadded::new(Combiner::default())).collect(),
            c: EngineCounters::default(),
        }))
    }

    /// Maximum fronted keys this engine was configured for.
    pub fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn slot_idx(&self, key: u64) -> usize {
        (mix(key) >> self.slot_shift) as usize
    }

    #[inline]
    fn slot_of(&self, key: u64) -> &FrontSlot {
        &self.slots[self.slot_idx(key)]
    }

    // -- detection ---------------------------------------------------------

    /// Hot-path detection hook: call once per keyspace operation. Pays a
    /// thread-local tick; 1-in-N calls feed the sketch and may promote.
    /// The tick counter is shared by every engine the thread drives, so
    /// the fire decision hashes it with a per-engine salt (the engine's
    /// address — stable, it lives in a `Box`): two engines interleaved on
    /// one thread each see a strided subsequence of the shared ticks, and
    /// an unsalted `tick & mask` test would systematically miss (or
    /// double-fire) on such strides instead of sampling 1-in-N.
    #[inline]
    pub fn record_access(&self, key: u64) {
        if key == 0 {
            return;
        }
        let salt = self as *const Self as u64;
        let fire = TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            (mix(u64::from(v) ^ salt) as u32) & self.sample_mask == 0
        });
        if fire {
            self.sample(key);
        }
    }

    #[cold]
    fn sample(&self, key: u64) {
        self.c.sampled.fetch_add(1, Ordering::Relaxed);
        let shard = self.router.route(key);
        let est = self.sketches[shard].bump(key);
        let n = self.samples.fetch_add(1, Ordering::Relaxed) + 1;
        if n % self.decay_every == 0 {
            self.decay();
        }
        if est >= self.promote_min {
            self.try_promote(key, est);
        }
    }

    fn decay(&self) {
        for s in self.sketches.iter() {
            s.decay();
        }
        let Ok(mut topk) = self.topk.lock() else { return };
        let mut evicted: Vec<u64> = Vec::new();
        topk.retain_mut(|e| {
            e.count /= 2;
            if e.count == 0 {
                evicted.push(e.key);
                false
            } else {
                true
            }
        });
        drop(topk);
        for key in evicted {
            self.release_slot(key);
            self.c.demotions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_promote(&self, key: u64, est: u32) {
        // Contended promotion attempts just skip: detection is statistical
        // and another sample will come around.
        let Ok(mut topk) = self.topk.try_lock() else { return };
        if let Some(e) = topk.iter_mut().find(|e| e.key == key) {
            e.count = e.count.max(est);
            let est = e.count;
            drop(topk);
            // Re-claim in case the slot was stolen or never claimed.
            self.claim_slot(key, est);
            return;
        }
        if topk.len() < self.k {
            topk.push(TopEntry { key, count: est });
            drop(topk);
            self.c.promotions.fetch_add(1, Ordering::Relaxed);
            self.claim_slot(key, est);
            return;
        }
        let (min_idx, min_count) = topk
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.count))
            .min_by_key(|&(_, c)| c)
            .expect("top-k is non-empty here");
        if est > min_count.saturating_mul(2) {
            let displaced = topk[min_idx].key;
            topk[min_idx] = TopEntry { key, count: est };
            drop(topk);
            self.release_slot(displaced);
            self.c.demotions.fetch_add(1, Ordering::Relaxed);
            self.c.promotions.fetch_add(1, Ordering::Relaxed);
            self.claim_slot(key, est);
        }
    }

    /// Points the key's direct-mapped slot at it (state pending) unless a
    /// clearly hotter key already owns the slot.
    fn claim_slot(&self, key: u64, est: u32) {
        let idx = self.slot_idx(key);
        let slot = &self.slots[idx];
        let cur = slot.key.load(Ordering::Relaxed);
        if cur == key {
            return;
        }
        if cur != 0 {
            // Direct-mapped collision between two top-k keys: steal only
            // with clear margin (hysteresis keeps the slot from flapping).
            let cur_est = self
                .topk
                .lock()
                .map(|t| t.iter().find(|e| e.key == cur).map_or(0, |e| e.count))
                .unwrap_or(0);
            if est <= cur_est.saturating_mul(2) {
                return;
            }
        }
        slot.acquire();
        if slot.key.load(Ordering::Relaxed) == 0 {
            self.live.fetch_add(1, Ordering::Relaxed);
        }
        slot.version.fetch_add(1, Ordering::Relaxed);
        slot.write(key, SlotState::Pending);
        self.filter[idx].store(key, Ordering::Relaxed);
        slot.release();
    }

    fn release_slot(&self, key: u64) {
        let idx = self.slot_idx(key);
        let slot = &self.slots[idx];
        if slot.key.load(Ordering::Relaxed) != key {
            return;
        }
        slot.acquire();
        if slot.key.load(Ordering::Relaxed) == key {
            self.live.fetch_sub(1, Ordering::Relaxed);
            slot.version.fetch_add(1, Ordering::Relaxed);
            slot.write(0, SlotState::Pending);
            self.filter[idx].store(0, Ordering::Relaxed);
        }
        slot.release();
    }

    /// Forces `key` into the top-k table and claims its slot (evicting
    /// the coldest entry if full). For tests and operational pinning.
    pub fn pin(&self, key: u64) {
        let mut topk = self.topk.lock().expect("top-k lock poisoned");
        let count = u32::MAX / 4;
        if let Some(e) = topk.iter_mut().find(|e| e.key == key) {
            e.count = count;
        } else {
            if topk.len() >= self.k {
                let (min_idx, _) = topk
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, e.count))
                    .min_by_key(|&(_, c)| c)
                    .expect("top-k non-empty");
                let displaced = topk.swap_remove(min_idx).key;
                drop(topk);
                self.release_slot(displaced);
                self.c.demotions.fetch_add(1, Ordering::Relaxed);
                topk = self.topk.lock().expect("top-k lock poisoned");
            }
            topk.push(TopEntry { key, count });
            self.c.promotions.fetch_add(1, Ordering::Relaxed);
        }
        drop(topk);
        // Pinning overrides the hysteresis: evict whatever holds the slot.
        let idx = self.slot_idx(key);
        let slot = &self.slots[idx];
        let cur = slot.key.load(Ordering::Relaxed);
        if cur != key {
            slot.acquire();
            if slot.key.load(Ordering::Relaxed) == 0 {
                self.live.fetch_add(1, Ordering::Relaxed);
            }
            slot.version.fetch_add(1, Ordering::Relaxed);
            slot.write(key, SlotState::Pending);
            self.filter[idx].store(key, Ordering::Relaxed);
            slot.release();
        }
    }

    /// The current top-k table: `(key, frequency estimate)` pairs, hottest
    /// first. Estimates are sampled counts (multiply by the sampling rate
    /// for an absolute figure) and decay over time.
    pub fn hot_keys(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .topk
            .lock()
            .map(|t| t.iter().map(|e| (e.key, e.count as u64)).collect())
            .unwrap_or_default();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    // -- front cache: read side --------------------------------------------

    /// Probes the front cache for `key`, appending a cached value to
    /// `out` on a hit (bytes land directly in `out` — no intermediate
    /// buffer; a torn copy is truncated away before retrying). See
    /// [`FrontRead`] for the contract of each arm.
    #[inline]
    pub fn read(&self, key: u64, out: &mut Vec<u8>) -> FrontRead {
        // Empty-front early-out: until detection promotes something, the
        // whole probe is one relaxed load of a read-mostly line. (Reads
        // that race a first promotion may still see zero and miss — one
        // extra backing read, never a stale value.)
        if key == 0 || self.live.load(Ordering::Relaxed) == 0 {
            return FrontRead::Miss;
        }
        let idx = (mix(key) >> self.slot_shift) as usize;
        // Cold-key fast path: a single relaxed load of the L1-resident
        // filter rejects keys that are not fronted without touching the
        // (much larger) slot array. Races with a concurrent claim/steal
        // are benign — the backing store is always coherent, so a stale
        // mismatch just means one more backing read.
        if self.filter[idx].load(Ordering::Relaxed) != key {
            return FrontRead::Miss;
        }
        let slot = &self.slots[idx];
        let start = out.len();
        for _ in 0..2 {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 != 0 {
                // A writer is mid-update; the backing is always coherent.
                self.c.front_pending.add(1);
                return FrontRead::Miss;
            }
            if slot.key.load(Ordering::Relaxed) != key {
                return FrontRead::Miss;
            }
            let len = slot.len.load(Ordering::Relaxed);
            let res = if len == LEN_PENDING {
                // Capture the fill lease *before* the caller reads the
                // backing: any write completing after that read bumps
                // `version` and voids the lease.
                let version = slot.version.load(Ordering::Acquire);
                FrontRead::Pending(FillTicket { slot: idx, key, version })
            } else if len == LEN_ABSENT {
                FrontRead::Absent
            } else {
                let len = len as usize;
                debug_assert!(len <= FRONT_VALUE_CAP);
                let words = len.div_ceil(8);
                out.reserve(words * 8);
                for w in &slot.words[..words] {
                    out.extend_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
                }
                out.truncate(start + len);
                FrontRead::Hit
            };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                match &res {
                    FrontRead::Hit => self.c.front_hits.add(1),
                    FrontRead::Absent => self.c.front_absent.add(1),
                    FrontRead::Pending(_) => self.c.front_pending.add(1),
                    FrontRead::Miss => {}
                }
                return res;
            }
            // Torn read: the slot changed under us; drop the partial copy
            // and retry once, then let the backing answer.
            out.truncate(start);
        }
        self.c.front_pending.add(1);
        FrontRead::Miss
    }

    /// [`read`](Self::read) specialised for `u64`-valued maps (the value
    /// is cached as its 8-byte little-endian image; one word load, no
    /// byte buffer).
    #[inline]
    pub fn read_u64(&self, key: u64) -> FrontReadU64 {
        // Same empty-front early-out as `read`.
        if key == 0 || self.live.load(Ordering::Relaxed) == 0 {
            return FrontReadU64::Miss;
        }
        let idx = (mix(key) >> self.slot_shift) as usize;
        // Same cold-key filter fast path as `read`.
        if self.filter[idx].load(Ordering::Relaxed) != key {
            return FrontReadU64::Miss;
        }
        let slot = &self.slots[idx];
        for _ in 0..2 {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 != 0 {
                self.c.front_pending.add(1);
                return FrontReadU64::Miss;
            }
            if slot.key.load(Ordering::Relaxed) != key {
                return FrontReadU64::Miss;
            }
            let len = slot.len.load(Ordering::Relaxed);
            let res = if len == LEN_PENDING {
                let version = slot.version.load(Ordering::Acquire);
                FrontReadU64::Pending(FillTicket { slot: idx, key, version })
            } else if len == LEN_ABSENT {
                FrontReadU64::Absent
            } else if len == 8 {
                FrontReadU64::Hit(slot.words[0].load(Ordering::Relaxed))
            } else {
                // A non-8-byte copy can only mean the slot serves a
                // different (byte-valued) map — treat as uncached.
                FrontReadU64::Miss
            };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                match &res {
                    FrontReadU64::Hit(_) => self.c.front_hits.add(1),
                    FrontReadU64::Absent => self.c.front_absent.add(1),
                    FrontReadU64::Pending(_) => self.c.front_pending.add(1),
                    FrontReadU64::Miss => {}
                }
                return res;
            }
        }
        self.c.front_pending.add(1);
        FrontReadU64::Miss
    }

    /// Offers a backing read's result to a pending slot. The install only
    /// lands if the lease is still valid — i.e. no write invalidated the
    /// slot since before the caller's backing read. `None` caches absence;
    /// oversize values are dropped (the slot stays pending).
    pub fn fill(&self, ticket: &FillTicket, value: Option<&[u8]>) {
        if let Some(v) = value {
            if v.len() > FRONT_VALUE_CAP {
                return;
            }
        }
        let slot = &self.slots[ticket.slot];
        // Opportunistic: a busy slot means a writer or another fill is
        // active; dropping this fill is always safe.
        if !slot.try_acquire() {
            return;
        }
        if slot.version.load(Ordering::Relaxed) == ticket.version
            && slot.key.load(Ordering::Relaxed) == ticket.key
        {
            match value {
                Some(v) => slot.write(ticket.key, SlotState::Value(v)),
                None => slot.write(ticket.key, SlotState::Absent),
            }
            self.c.fills.fetch_add(1, Ordering::Relaxed);
        }
        slot.release();
    }

    /// [`fill`](Self::fill) for `u64`-valued maps.
    pub fn fill_u64(&self, ticket: &FillTicket, value: Option<u64>) {
        match value {
            Some(v) => self.fill(ticket, Some(&v.to_le_bytes())),
            None => self.fill(ticket, None),
        }
    }

    // -- front cache: write side -------------------------------------------

    /// `true` if writes to `key` must delegate through the combiner.
    #[inline]
    pub fn fronted(&self, key: u64) -> bool {
        key != 0 && self.slot_of(key).key.load(Ordering::Acquire) == key
    }

    /// Post-apply hook for plain (non-delegated) writers: if the key
    /// turns out to be fronted (a promotion raced this write), drop the
    /// cached copy and void outstanding fill leases, so no reader can be
    /// served a value older than this completed write. The cache tier's
    /// eviction and expiry paths call this too — always *before* the
    /// backing handle is retired, so a front copy never outlives (or
    /// dangles past) the value it mirrors.
    #[inline]
    pub fn poison(&self, key: u64) {
        if key == 0 {
            return;
        }
        let slot = self.slot_of(key);
        if slot.key.load(Ordering::Relaxed) != key {
            return;
        }
        slot.acquire();
        if slot.key.load(Ordering::Relaxed) == key {
            slot.version.fetch_add(1, Ordering::Relaxed);
            slot.write(key, SlotState::Pending);
            self.c.poisons.fetch_add(1, Ordering::Relaxed);
        }
        slot.release();
    }

    // -- delegation --------------------------------------------------------

    /// Runs `op` through the key's shard combiner: one thread applies a
    /// batch of published ops against the backing (via `apply`) and
    /// refreshes the front cache after each, while the others spin on
    /// their slot. `apply` must perform the op against the backing and
    /// return its outcome; it is called by whichever thread ends up
    /// combining, possibly for *other* threads' ops of any [`HotOpKind`]
    /// this map publishes.
    pub fn delegate(
        &self,
        op: HotOp,
        apply: &mut dyn FnMut(&HotOp) -> HotOpResult,
    ) -> HotOpResult {
        self.c.delegated.add(1);
        let combiner = &self.combiners[self.router.route(op.key)];
        let mut spins = 0u32;
        loop {
            if combiner
                .lock
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let res = self.apply_one(&op, apply);
                self.drain(combiner, apply);
                combiner.lock.store(0, Ordering::Release);
                self.c.combined_batches.fetch_add(1, Ordering::Relaxed);
                return res;
            }
            if let Some(idx) = self.try_publish(combiner, &op) {
                return self.await_slot(combiner, idx, &op, apply);
            }
            spins += 1;
            if spins % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Applies one op to the backing and write-through refreshes the
    /// front slot. The version snapshot taken *before* the backing apply
    /// orders the install against racing plain-writer poisons: if one
    /// lands in between, this install is downgraded to a fresh poison —
    /// merely skipping would leave the poison's version live, and a fill
    /// lease taken against it could install a backing read that predates
    /// this delegated write.
    fn apply_one(&self, op: &HotOp, apply: &mut dyn FnMut(&HotOp) -> HotOpResult) -> HotOpResult {
        let slot = self.slot_of(op.key);
        let fronted = slot.key.load(Ordering::Relaxed) == op.key;
        let version = slot.version.load(Ordering::Acquire);
        let res = apply(op);
        if !fronted {
            return res;
        }
        let state = match op.kind {
            HotOpKind::Set => {
                if op.len > FRONT_VALUE_CAP {
                    Some(SlotState::Pending)
                } else {
                    // SAFETY: the publisher owns the payload and is still
                    // spinning on this op (or it is our own stack slice).
                    Some(SlotState::Value(unsafe { op.payload() }))
                }
            }
            HotOpKind::Insert if res.ok => Some(SlotState::Value(&op.val_u64.to_le_bytes())),
            HotOpKind::Del if res.ok => Some(SlotState::Absent),
            // Failed insert / delete mutated nothing; the cached copy (if
            // any) is still the latest completed write.
            _ => None,
        };
        if let Some(state) = state {
            slot.acquire();
            if slot.key.load(Ordering::Relaxed) == op.key {
                slot.version.fetch_add(1, Ordering::Relaxed);
                if slot.version.load(Ordering::Relaxed) == version.wrapping_add(1) {
                    slot.write(op.key, state);
                } else {
                    // A plain-writer poison landed between our snapshot
                    // and the backing apply. A reader may hold a fill
                    // lease minted against *its* version with a backing
                    // value read before our op landed; the bump above
                    // voided that lease, and the slot stays uncached
                    // until a post-apply lease refills it.
                    slot.write(op.key, SlotState::Pending);
                    self.c.poisons.fetch_add(1, Ordering::Relaxed);
                }
            }
            slot.release();
        }
        res
    }

    fn drain(&self, combiner: &Combiner, apply: &mut dyn FnMut(&HotOp) -> HotOpResult) {
        // Two passes: the second catches ops published while the first
        // was busy (stragglers beyond that reclaim their op themselves).
        for _ in 0..2 {
            for slot in &combiner.slots {
                if slot.state.load(Ordering::Acquire) == SLOT_PUBLISHED {
                    let op = slot.op();
                    let res = self.apply_one(&op, apply);
                    slot.res_ok.store(res.ok as u32, Ordering::Relaxed);
                    slot.res_old.store(res.old, Ordering::Relaxed);
                    slot.state.store(SLOT_DONE, Ordering::Release);
                }
            }
        }
    }

    fn try_publish(&self, combiner: &Combiner, op: &HotOp) -> Option<usize> {
        for (i, slot) in combiner.slots.iter().enumerate() {
            if slot.state.load(Ordering::Relaxed) == SLOT_EMPTY
                && slot
                    .state
                    .compare_exchange(SLOT_EMPTY, SLOT_WRITING, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                slot.put_op(op);
                slot.state.store(SLOT_PUBLISHED, Ordering::Release);
                return Some(i);
            }
        }
        None
    }

    /// Spins for a published op's completion; periodically tries to take
    /// the combiner lock so a published-after-drain op is never stranded
    /// (its publisher combines it itself).
    fn await_slot(
        &self,
        combiner: &Combiner,
        idx: usize,
        op: &HotOp,
        apply: &mut dyn FnMut(&HotOp) -> HotOpResult,
    ) -> HotOpResult {
        let slot = &combiner.slots[idx];
        let mut rounds = 0u32;
        loop {
            for _ in 0..64 {
                if slot.state.load(Ordering::Acquire) == SLOT_DONE {
                    let res = HotOpResult {
                        ok: slot.res_ok.load(Ordering::Relaxed) != 0,
                        old: slot.res_old.load(Ordering::Relaxed),
                    };
                    slot.state.store(SLOT_EMPTY, Ordering::Release);
                    return res;
                }
                std::hint::spin_loop();
            }
            if combiner
                .lock
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // We hold the lock, so no combiner is processing our slot:
                // it is either still published (reclaim and self-combine)
                // or already done.
                let res = if slot.state.load(Ordering::Acquire) == SLOT_PUBLISHED {
                    slot.state.store(SLOT_EMPTY, Ordering::Release);
                    self.apply_one(op, apply)
                } else {
                    debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_DONE);
                    let res = HotOpResult {
                        ok: slot.res_ok.load(Ordering::Relaxed) != 0,
                        old: slot.res_old.load(Ordering::Relaxed),
                    };
                    slot.state.store(SLOT_EMPTY, Ordering::Release);
                    res
                };
                self.drain(combiner, apply);
                combiner.lock.store(0, Ordering::Release);
                self.c.combined_batches.fetch_add(1, Ordering::Relaxed);
                return res;
            }
            rounds += 1;
            if rounds % 16 == 0 {
                std::thread::yield_now();
            }
        }
    }

    // -- stats -------------------------------------------------------------

    /// A point-in-time copy of the engine counters.
    pub fn stats(&self) -> HotKeyStatsSnapshot {
        HotKeyStatsSnapshot {
            sampled: self.c.sampled.load(Ordering::Relaxed),
            promotions: self.c.promotions.load(Ordering::Relaxed),
            demotions: self.c.demotions.load(Ordering::Relaxed),
            front_hits: self.c.front_hits.sum(),
            front_absent: self.c.front_absent.sum(),
            front_pending: self.c.front_pending.sum(),
            fills: self.c.fills.load(Ordering::Relaxed),
            poisons: self.c.poisons.load(Ordering::Relaxed),
            delegated: self.c.delegated.sum(),
            combined_batches: self.c.combined_batches.load(Ordering::Relaxed),
            fronted: self.slots.iter().filter(|s| s.key.load(Ordering::Relaxed) != 0).count()
                as u64,
        }
    }
}

/// [`FrontRead`] for `u64`-valued maps.
#[derive(Debug)]
pub enum FrontReadU64 {
    /// Served from the front cache.
    Hit(u64),
    /// Cached negative lookup.
    Absent,
    /// Fronted but uncached — read the backing, then
    /// [`HotKeyEngine::fill_u64`].
    Pending(FillTicket),
    /// Not fronted.
    Miss,
}

impl std::fmt::Debug for HotKeyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotKeyEngine")
            .field("k", &self.k)
            .field("slots", &self.slots.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eager(k: usize) -> Box<HotKeyEngine> {
        HotKeyEngine::new(4, HotKeyConfig::eager(k)).expect("k > 0 builds an engine")
    }

    #[test]
    fn k_zero_disables_the_engine() {
        assert!(HotKeyEngine::new(4, HotKeyConfig::with_k(0)).is_none());
    }

    #[test]
    fn sampling_detects_a_skewed_key() {
        let e = HotKeyEngine::new(2, HotKeyConfig { sample_every: 1, ..Default::default() })
            .unwrap();
        for round in 0..200u64 {
            e.record_access(42);
            e.record_access(1 + (round % 50));
        }
        let hot = e.hot_keys();
        assert!(!hot.is_empty(), "the dominant key must be detected");
        assert_eq!(hot[0].0, 42, "key 42 dominates: {hot:?}");
        assert!(e.stats().sampled >= 400);
    }

    #[test]
    fn interleaved_engines_both_sample() {
        // Two engines driven alternately by one thread share the
        // per-thread tick; the per-engine salt must keep both samplers
        // firing (an unsalted `tick & mask` test strands whichever
        // engine lands on the wrong residue of the shared stride).
        let cfg = HotKeyConfig { sample_every: 2, ..Default::default() };
        let a = HotKeyEngine::new(2, cfg).unwrap();
        let b = HotKeyEngine::new(2, cfg).unwrap();
        for _ in 0..4096 {
            a.record_access(1);
            b.record_access(1);
        }
        assert!(a.stats().sampled > 0, "engine A never sampled");
        assert!(b.stats().sampled > 0, "engine B never sampled");
    }

    #[test]
    fn pending_then_fill_then_hit() {
        let e = eager(4);
        e.pin(7);
        let mut out = Vec::new();
        let FrontRead::Pending(t) = e.read(7, &mut out) else {
            panic!("freshly pinned slot starts pending");
        };
        e.fill(&t, Some(b"payload"));
        match e.read(7, &mut out) {
            FrontRead::Hit => assert_eq!(out, b"payload"),
            other => panic!("expected a hit, got {other:?}"),
        }
        let s = e.stats();
        assert_eq!(s.fills, 1);
        assert_eq!(s.front_hits, 1);
        assert!(s.fronted >= 1);
    }

    #[test]
    fn fill_caches_absence() {
        let e = eager(4);
        e.pin(9);
        let mut out = Vec::new();
        let FrontRead::Pending(t) = e.read(9, &mut out) else { panic!("pending") };
        e.fill(&t, None);
        assert!(matches!(e.read(9, &mut out), FrontRead::Absent));
        assert_eq!(e.stats().front_absent, 1);
    }

    #[test]
    fn oversize_values_are_never_cached() {
        let e = eager(4);
        e.pin(3);
        let mut out = Vec::new();
        let FrontRead::Pending(t) = e.read(3, &mut out) else { panic!("pending") };
        e.fill(&t, Some(&vec![0u8; FRONT_VALUE_CAP + 1]));
        assert!(
            matches!(e.read(3, &mut out), FrontRead::Pending(_)),
            "an oversize fill must be dropped"
        );
        assert_eq!(e.stats().fills, 0);
    }

    #[test]
    fn poison_voids_an_outstanding_fill_lease() {
        let e = eager(4);
        e.pin(5);
        let mut out = Vec::new();
        let FrontRead::Pending(t) = e.read(5, &mut out) else { panic!("pending") };
        // A plain writer applied to the backing and then noticed the slot:
        // the lease taken before its write must die with the poison.
        e.poison(5);
        e.fill(&t, Some(b"stale"));
        assert!(
            matches!(e.read(5, &mut out), FrontRead::Pending(_)),
            "a fill whose lease predates a poison must not land"
        );
        assert_eq!(e.stats().poisons, 1);
        assert_eq!(e.stats().fills, 0);
    }

    #[test]
    fn delegated_install_repoisons_after_a_racing_plain_poison() {
        let e = eager(4);
        e.pin(17);
        let mut out = Vec::new();
        let FrontRead::Pending(t) = e.read(17, &mut out) else { panic!("pending") };
        e.fill(&t, Some(b"old"));
        let mut lease = None;
        // Reproduce the window between the combiner's version snapshot
        // and its write-through install: a plain writer completes against
        // the backing and poisons, then a reader takes a fill lease whose
        // backing read predates the delegated write.
        e.delegate(HotOp::set(17, 0, b"new"), &mut |_| {
            e.poison(17);
            let mut buf = Vec::new();
            let FrontRead::Pending(t) = e.read(17, &mut buf) else {
                panic!("poisoned slot must read pending");
            };
            lease = Some(t);
            HotOpResult { ok: true, old: 0 }
        });
        // The install saw the version mismatch and must have voided the
        // lease (re-poison), not skipped silently — otherwise the lease
        // installs a value older than the completed delegated write.
        e.fill(&lease.expect("lease taken during the window"), Some(b"stale"));
        out.clear();
        assert!(
            matches!(e.read(17, &mut out), FrontRead::Pending(_)),
            "a lease minted inside the delegation window must not install"
        );
        assert_eq!(e.stats().fills, 1, "only the setup fill may land");
        assert_eq!(e.stats().poisons, 2, "plain poison + install re-poison");
    }

    #[test]
    fn delegated_writes_refresh_the_slot_write_through() {
        let e = eager(4);
        e.pin(11);
        assert!(e.fronted(11));
        let res = e.delegate(HotOp::set(11, 0xDEAD, b"fresh"), &mut |op| {
            assert_eq!(op.key, 11);
            HotOpResult { ok: true, old: 0 }
        });
        assert!(res.ok);
        let mut out = Vec::new();
        assert!(matches!(e.read(11, &mut out), FrontRead::Hit));
        assert_eq!(out, b"fresh");
        // A delegated delete caches the absence.
        let res = e.delegate(HotOp::del(11), &mut |_| HotOpResult { ok: true, old: 0 });
        assert!(res.ok);
        out.clear();
        assert!(matches!(e.read(11, &mut out), FrontRead::Absent));
        let s = e.stats();
        assert_eq!(s.delegated, 2);
        assert!(s.combined_batches >= 2);
        assert!((s.avg_batch() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn delegated_u64_insert_and_remove_round_trip() {
        let e = eager(4);
        e.pin(21);
        let res = e.delegate(HotOp::insert(21, 777), &mut |op| HotOpResult {
            ok: true,
            old: op.val_u64,
        });
        assert!(res.ok);
        match e.read_u64(21) {
            FrontReadU64::Hit(v) => assert_eq!(v, 777),
            other => panic!("expected cached 777, got {other:?}"),
        }
        let res = e.delegate(HotOp::del(21), &mut |_| HotOpResult { ok: true, old: 777 });
        assert_eq!(res.old, 777);
        assert!(matches!(e.read_u64(21), FrontReadU64::Absent));
    }

    #[test]
    fn failed_mutations_leave_the_cached_copy_alone() {
        let e = eager(4);
        e.pin(13);
        e.delegate(HotOp::insert(13, 5), &mut |_| HotOpResult { ok: true, old: 0 });
        // A failed insert (key already present) must not clobber the copy.
        e.delegate(HotOp::insert(13, 9), &mut |_| HotOpResult { ok: false, old: 0 });
        match e.read_u64(13) {
            FrontReadU64::Hit(v) => assert_eq!(v, 5),
            other => panic!("expected 5 cached, got {other:?}"),
        }
    }

    #[test]
    fn decay_demotes_cold_keys_and_releases_their_slots() {
        let e = HotKeyEngine::new(
            2,
            HotKeyConfig { k: 4, sample_every: 1, decay_every: 32, promote_min: 2 },
        )
        .unwrap();
        for _ in 0..8 {
            e.record_access(77);
        }
        assert!(e.fronted(77), "hot key promoted and fronted");
        // Cold traffic floods the sampler; repeated decays halve 77's
        // count to zero and the slot must come back.
        for i in 0..4096u64 {
            e.record_access(1000 + i);
        }
        assert!(!e.fronted(77), "decayed key must be demoted");
        assert!(e.stats().demotions >= 1);
        assert!(e.hot_keys().iter().all(|&(k, _)| k != 77));
    }

    #[test]
    fn merge_counters_sums_counters_but_not_the_gauge() {
        let mut a = HotKeyStatsSnapshot {
            front_hits: 5,
            delegated: 2,
            fronted: 3,
            ..Default::default()
        };
        let b = HotKeyStatsSnapshot {
            front_hits: 7,
            delegated: 1,
            fronted: 4,
            sampled: u64::MAX,
            ..Default::default()
        };
        a.merge_counters(&b);
        assert_eq!(a.front_hits, 12);
        assert_eq!(a.delegated, 3);
        assert_eq!(a.sampled, u64::MAX, "saturating add");
        assert_eq!(a.fronted, 3, "gauge must not be summed by the merge");
    }

    #[test]
    fn hit_rate_and_batch_stats_are_sane_on_empty() {
        let s = HotKeyStatsSnapshot::default();
        assert_eq!(s.front_hit_rate(), 0.0);
        assert_eq!(s.avg_batch(), 0.0);
    }

    #[test]
    fn pin_evicts_the_coldest_when_full() {
        let e = eager(2);
        e.pin(1);
        e.pin(2);
        e.pin(3);
        let hot = e.hot_keys();
        assert_eq!(hot.len(), 2);
        assert!(hot.iter().any(|&(k, _)| k == 3), "latest pin wins: {hot:?}");
    }

    #[test]
    fn concurrent_delegation_is_linearizable_per_key() {
        use std::sync::atomic::AtomicU64 as A;
        use std::sync::Arc;
        let e = Arc::new(*eager(4));
        e.pin(99);
        let backing = Arc::new(A::new(0));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let e = Arc::clone(&e);
                let backing = Arc::clone(&backing);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let val = t * 1_000_000 + i + 1;
                        e.delegate(HotOp::insert(99, val), &mut |op| {
                            // The "backing": last writer wins, serialized
                            // by the combiner.
                            backing.store(op.val_u64, Ordering::Relaxed);
                            HotOpResult { ok: true, old: 0 }
                        });
                        // The cached copy must be *some* delegated value,
                        // never torn or stale beyond the backing.
                        if let FrontReadU64::Hit(v) = e.read_u64(99) {
                            assert!(v % 1_000_000 <= 500, "torn value {v}");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Quiescent: the cache must equal the backing exactly.
        match e.read_u64(99) {
            FrontReadU64::Hit(v) => assert_eq!(v, backing.load(Ordering::Relaxed)),
            other => panic!("expected a settled cached value, got {other:?}"),
        }
        assert_eq!(e.stats().delegated, 2000);
    }
}
