//! Per-shard serving statistics.
//!
//! Each shard owns one cache-line-padded block of atomic counters, so a hot
//! shard's bookkeeping never false-shares with its neighbours — the same
//! discipline the paper applies to the structures themselves. Counters are
//! bumped with `Relaxed` fetch-adds (they are independent event counts with
//! no ordering relationship to the data they describe) and read through
//! [`ShardStats::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Atomic per-shard counters (one padded block per shard).
#[derive(Debug, Default)]
pub struct ShardStats {
    inner: CachePadded<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    searches: AtomicU64,
    hits: AtomicU64,
    inserts: AtomicU64,
    inserts_ok: AtomicU64,
    removes: AtomicU64,
    removes_ok: AtomicU64,
    scans: AtomicU64,
    scan_keys: AtomicU64,
}

/// A plain-value copy of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// `search` calls routed to this shard.
    pub searches: u64,
    /// Searches that found their key.
    pub hits: u64,
    /// `insert` calls routed to this shard.
    pub inserts: u64,
    /// Inserts that succeeded (key was absent).
    pub inserts_ok: u64,
    /// `remove` calls routed to this shard.
    pub removes: u64,
    /// Removes that succeeded (key was present).
    pub removes_ok: u64,
    /// Range scans that touched this shard (every shard participates in a
    /// scatter-gather scan, so this counts per-shard sub-scans).
    pub scans: u64,
    /// Keys this shard contributed to scatter-gather scan results.
    pub scan_keys: u64,
}

impl ShardStatsSnapshot {
    /// Total operations routed to the shard.
    pub fn operations(&self) -> u64 {
        // Saturating: these are sums of long-running monotonic counters (see
        // ascylib::stats::OpCounters::merge for the rationale).
        self.searches
            .saturating_add(self.inserts)
            .saturating_add(self.removes)
            .saturating_add(self.scans)
    }

    /// Fraction of searches that hit, in `[0, 1]` (0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.hits as f64 / self.searches as f64
        }
    }

    /// Adds another snapshot (used to aggregate across shards).
    pub fn merge(&mut self, other: &ShardStatsSnapshot) {
        self.searches = self.searches.saturating_add(other.searches);
        self.hits = self.hits.saturating_add(other.hits);
        self.inserts = self.inserts.saturating_add(other.inserts);
        self.inserts_ok = self.inserts_ok.saturating_add(other.inserts_ok);
        self.removes = self.removes.saturating_add(other.removes);
        self.removes_ok = self.removes_ok.saturating_add(other.removes_ok);
        self.scans = self.scans.saturating_add(other.scans);
        self.scan_keys = self.scan_keys.saturating_add(other.scan_keys);
    }
}

impl ShardStats {
    /// Records one search and whether it hit.
    #[inline]
    pub fn record_search(&self, hit: bool) {
        self.inner.searches.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one insert and whether it succeeded.
    #[inline]
    pub fn record_insert(&self, ok: bool) {
        self.inner.inserts.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.inner.inserts_ok.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one remove and whether it succeeded.
    #[inline]
    pub fn record_remove(&self, ok: bool) {
        self.inner.removes.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.inner.removes_ok.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a batch of `n` searches of which `hits` found their key (one
    /// fetch-add per counter instead of per key).
    #[inline]
    pub fn record_searches(&self, n: u64, hits: u64) {
        self.inner.searches.fetch_add(n, Ordering::Relaxed);
        if hits > 0 {
            self.inner.hits.fetch_add(hits, Ordering::Relaxed);
        }
    }

    /// Records a batch of `n` inserts of which `ok` succeeded.
    #[inline]
    pub fn record_inserts(&self, n: u64, ok: u64) {
        self.inner.inserts.fetch_add(n, Ordering::Relaxed);
        if ok > 0 {
            self.inner.inserts_ok.fetch_add(ok, Ordering::Relaxed);
        }
    }

    /// Records a batch of `n` removes of which `ok` succeeded.
    #[inline]
    pub fn record_removes(&self, n: u64, ok: u64) {
        self.inner.removes.fetch_add(n, Ordering::Relaxed);
        if ok > 0 {
            self.inner.removes_ok.fetch_add(ok, Ordering::Relaxed);
        }
    }

    /// Records one per-shard sub-scan that contributed `keys` keys.
    #[inline]
    pub fn record_scan(&self, keys: u64) {
        self.inner.scans.fetch_add(1, Ordering::Relaxed);
        if keys > 0 {
            self.inner.scan_keys.fetch_add(keys, Ordering::Relaxed);
        }
    }

    /// Reads the counters (not an atomic cross-counter snapshot: each value
    /// is individually exact, which is all reporting needs).
    pub fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            searches: self.inner.searches.load(Ordering::Relaxed),
            hits: self.inner.hits.load(Ordering::Relaxed),
            inserts: self.inner.inserts.load(Ordering::Relaxed),
            inserts_ok: self.inner.inserts_ok.load(Ordering::Relaxed),
            removes: self.inner.removes.load(Ordering::Relaxed),
            removes_ok: self.inner.removes_ok.load(Ordering::Relaxed),
            scans: self.inner.scans.load(Ordering::Relaxed),
            scan_keys: self.inner.scan_keys.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_reflected_in_snapshots() {
        let s = ShardStats::default();
        s.record_search(true);
        s.record_search(false);
        s.record_insert(true);
        s.record_insert(false);
        s.record_remove(true);
        let snap = s.snapshot();
        assert_eq!(snap.searches, 2);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.inserts_ok, 1);
        assert_eq!(snap.removes, 1);
        assert_eq!(snap.removes_ok, 1);
        assert_eq!(snap.operations(), 5);
        assert_eq!(snap.hit_rate(), 0.5);
    }

    #[test]
    fn merge_aggregates_and_hit_rate_handles_zero() {
        let mut a = ShardStatsSnapshot { searches: 4, hits: 2, ..Default::default() };
        let b = ShardStatsSnapshot { searches: 6, hits: 4, inserts: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.searches, 10);
        assert_eq!(a.hits, 6);
        assert_eq!(a.operations(), 11);
        assert_eq!(ShardStatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn stats_blocks_are_cache_padded() {
        let pair = [ShardStats::default(), ShardStats::default()];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 64, "adjacent shard stats share a cache line ({})", b - a);
    }

    #[test]
    fn concurrent_recording_loses_no_updates() {
        let s = std::sync::Arc::new(ShardStats::default());
        let threads = 4;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        s.record_search(i % 2 == 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.searches, (threads * per_thread) as u64);
        assert_eq!(snap.hits, (threads * per_thread / 2) as u64);
    }
}
