//! The blob-value layer: variable-length `[u8]` payloads over the untouched
//! `u64 → u64` machinery — now a **budgeted cache tier**.
//!
//! The ASCYLIB structures (and [`ShardedMap`] over them) move 64-bit values
//! — enough for the paper's figures, not for a KV store that must hold real
//! payloads. Instead of rewriting 18 structures, this module stores payloads
//! *outside* the structures and indexes them with 64-bit **handles**:
//!
//! * [`ValueArena`] owns the payload memory. Each blob is a header-prefixed
//!   allocation from `ascylib-ssmem` (`alloc_raw`/`retire_raw`), so blob
//!   lifetime rides the same epoch machinery that protects the structures'
//!   own nodes: a blob retired by a `DEL`/overwrite is not reused until
//!   every thread that could still be copying it has left its operation.
//! * [`BlobMap`] is the safe facade: `set` writes the blob, publishes its
//!   handle through the sharded map, and retires the displaced blob;
//!   `get`/`multi_get`/`scan` fetch handles and copy payloads out **under
//!   one [`ssmem::protect`] guard**, so a concurrent delete can never free a
//!   blob mid-read. Readers therefore never observe torn, truncated, or
//!   reused payloads — only values that were fully written before publish.
//!
//! # The cache tier: handle tags and the blob header
//!
//! A handle is still `ptr as u64`, but the spare bits now carry metadata
//! (blobs are 8-aligned and user-space pointers fit 48 bits, so the low 3
//! and top 16 bits of the word are free — `debug_assert`ed at store time):
//!
//! ```text
//! bit 63..48   per-arena generation tag (defeats handle ABA: a recycled
//!              pointer re-stored gets a different tag, so an evictor's
//!              stale snapshot never matches a fresh value)
//! bit 47..3    the blob address (8-aligned)
//! bit 0        TTL flag: set iff the value carries an expiry deadline,
//!              so reads of never-expiring values skip the expiry check
//!              without loading anything
//! ```
//!
//! The blob header grew from 8 to 16 bytes:
//!
//! ```text
//! word 0   meta: payload length (low 63 bits) | CLOCK reference bit (63)
//! word 1   expire_at_ms (0 = no deadline); atomic, EXPIRE/PERSIST mutate it
//! ```
//!
//! The CLOCK reference bit lives in the header word the read path already
//! loads for the length, so tracking a hit costs **one relaxed bit-set and
//! zero extra cache lines** — and only when a byte budget is configured and
//! the bit isn't already set (hot blobs settle into a read-only state).
//!
//! # Budget enforcement
//!
//! With a [`CacheConfig`] budget, every `set` **reserves** its payload
//! bytes against the shard's share via a CAS loop before allocating; a
//! reservation that would overflow the budget runs CLOCK eviction (clear
//! reference bits, evict the first unreferenced victim) until it fits. The
//! per-shard `live_bytes` gauge therefore never exceeds the budget at any
//! externally observable instant — except `forced` admissions, counted
//! separately, when nothing is evictable (e.g. one value larger than a
//! shard's whole share).
//!
//! # Expiry
//!
//! Expiry is **lazy**: a read that finds a dead value answers "missing",
//! then unlinks and retires the corpse after its epoch guard drops. An
//! incremental sweep piggybacks on the write path (every
//! `SWEEP_EVERY`th `set` per shard walks a few ledger entries — no new
//! threads) and on `scan`, which reclaims any corpse it walks over.
//!
//! # Hot-key cooperation
//!
//! Values carrying a TTL are **never** installed in the hot-key front
//! cache (their fill leases are simply dropped), so a front hit can never
//! outlive its deadline. Eviction and expiry of a fronted key poison its
//! seqlock slot *before* the handle is retired — the engine's never-stale
//! guarantee survives the cache tier.
//!
//! # Consistency
//!
//! Per-key operations keep the shard layer's linearizability with one
//! deliberate exception: an **overwrite** (`set` on a present key) is
//! remove-then-insert on the index, so a concurrent reader can observe a
//! transient miss between the two steps. Readers never see a mix of old and
//! new payload bytes — payloads are immutable after publish (the expiry
//! word is the one mutable, atomic field). `expire`/`persist` racing an
//! overwrite of the same key resolve in an arbitrary order.
//!
//! # Teardown
//!
//! Hash backings cannot enumerate their keys, so each arena keeps a
//! write-path-only ledger of live handles (one mutex per *shard*, touched
//! only by `set`/`del` and the eviction/sweep machinery — reads stay
//! asynchronized). Dropping the map frees every live blob through the
//! ledger; blobs already retired are owned by the epoch machinery and
//! freed by its collector.

use std::alloc::Layout;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ascylib::api::ConcurrentMap;
use ascylib::ordered::OrderedMap;
use ascylib_ssmem as ssmem;
use crossbeam_utils::CachePadded;

use crate::cache::{CacheConfig, CacheStatsSnapshot, MsClock, WallClock};
use crate::hotkey::{
    FillTicket, FrontRead, HotKeyConfig, HotKeyEngine, HotKeyStatsSnapshot, HotOp, HotOpKind,
    HotOpResult,
};
use crate::map::ShardedMap;

/// Bytes of blob header: the meta word (payload length + CLOCK reference
/// bit) and the expiry word. The retire path reconstructs the allocation
/// layout from the header alone.
const HEADER: usize = 16;

/// Blob alignment (a header of two `u64` words).
const ALIGN: usize = 8;

/// Allocation sizes are rounded up to this granularity so the ssmem reuse
/// pool sees a bounded number of size classes (two payloads within the same
/// 64-byte bucket recycle each other's memory).
const SIZE_CLASS: usize = 64;

/// Handle bit 0: the value carries an expiry deadline.
const TAG_TTL: u64 = 1;

/// Handle bits 63..48: the arena generation tag.
const TAG_GEN_MASK: u64 = 0xFFFF << 48;

/// Clears every tag bit, leaving the 8-aligned blob address.
const ADDR_MASK: u64 = !(TAG_GEN_MASK | 0x7);

/// Meta-word bit 63: the CLOCK reference bit.
const META_REF: u64 = 1 << 63;

/// Meta-word bits 62..0: the payload length.
const META_LEN_MASK: u64 = META_REF - 1;

/// Every `SWEEP_EVERY`th `set` on a shard walks a slice of the ledger
/// looking for expired values (skipped entirely while no value on the
/// shard carries a deadline).
const SWEEP_EVERY: u64 = 64;

/// Ledger entries examined per sweep step.
const SWEEP_BATCH: usize = 8;

/// Consecutive fruitless eviction attempts before a reservation is forced
/// through over budget (progress guarantee; see `CacheStatsSnapshot::forced`).
const EVICT_FORCE_ATTEMPTS: u32 = 128;

/// The blob address a (possibly tagged) handle points at.
#[inline]
fn blob_addr(handle: u64) -> *mut u8 {
    (handle & ADDR_MASK) as *mut u8
}

/// `true` if the handle's value carries an expiry deadline.
#[inline]
fn has_ttl(handle: u64) -> bool {
    handle & TAG_TTL != 0
}

/// The meta word (length + reference bit) of a blob.
///
/// # Safety
///
/// `ptr` must be a live (or owned/protected) blob allocation.
#[inline]
unsafe fn meta_cell<'a>(ptr: *mut u8) -> &'a AtomicU64 {
    // SAFETY: forwarded caller contract; word 0 is 8-aligned by `ALIGN`.
    unsafe { &*(ptr as *const AtomicU64) }
}

/// The expiry word of a blob. Same safety contract as [`meta_cell`].
#[inline]
unsafe fn expire_cell<'a>(ptr: *mut u8) -> &'a AtomicU64 {
    // SAFETY: forwarded caller contract; word 1 sits inside the header.
    unsafe { &*(ptr.add(8) as *const AtomicU64) }
}

/// The allocation layout backing a blob of `len` payload bytes. Must be a
/// pure function of `len`: `store` and `retire` both derive it, and the
/// layouts have to match for the allocator.
fn blob_layout(len: usize) -> Layout {
    let size = (HEADER + len).div_ceil(SIZE_CLASS) * SIZE_CLASS;
    Layout::from_size_align(size, ALIGN).expect("valid blob layout")
}

/// Traffic counters of one arena (monotone, `Relaxed`: independent event
/// counts with no ordering obligations, as everywhere else in this crate).
#[derive(Debug, Default)]
struct ArenaCounters {
    blobs_stored: AtomicU64,
    blobs_retired: AtomicU64,
    bytes_stored: AtomicU64,
    bytes_retired: AtomicU64,
}

/// Cache-tier counters of one arena (same `Relaxed` convention; `live_now`
/// is the budget-reservation gauge, written by `reserve`/`retire`).
#[derive(Debug, Default)]
struct CacheCounters {
    live_now: AtomicU64,
    evictions: AtomicU64,
    expired_lazy: AtomicU64,
    expired_swept: AtomicU64,
    forced: AtomicU64,
    ttl_live: AtomicU64,
    sweep_tick: AtomicU64,
    generation: AtomicU64,
}

/// A point-in-time copy of one arena's counters (or a sum over arenas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStatsSnapshot {
    /// Blobs written through [`ValueArena::store`].
    pub blobs_stored: u64,
    /// Blobs retired (displaced by an overwrite, deleted, evicted, or
    /// expired).
    pub blobs_retired: u64,
    /// Payload bytes written (headers and size-class padding excluded).
    pub bytes_stored: u64,
    /// Payload bytes retired.
    pub bytes_retired: u64,
}

impl ArenaStatsSnapshot {
    /// Blobs currently live (stored minus retired).
    pub fn live_blobs(&self) -> u64 {
        self.blobs_stored.saturating_sub(self.blobs_retired)
    }

    /// Payload bytes currently live.
    pub fn live_bytes(&self) -> u64 {
        self.bytes_stored.saturating_sub(self.bytes_retired)
    }

    /// Adds another snapshot (aggregation across shards).
    pub fn merge(&mut self, other: &ArenaStatsSnapshot) {
        self.blobs_stored = self.blobs_stored.saturating_add(other.blobs_stored);
        self.blobs_retired = self.blobs_retired.saturating_add(other.blobs_retired);
        self.bytes_stored = self.bytes_stored.saturating_add(other.bytes_stored);
        self.bytes_retired = self.bytes_retired.saturating_add(other.bytes_retired);
    }
}

/// The write-path ledger: every live handle with its key, indexed by blob
/// address (tags excluded, so retagging a handle in place — `EXPIRE` on a
/// previously deadline-free value — keeps the entry findable), plus the
/// persistent CLOCK hand and the TTL-sweep cursor.
#[derive(Debug, Default)]
struct Ledger {
    /// `(key, tagged handle)` of every live blob on this shard.
    entries: Vec<(u64, u64)>,
    /// Blob address → position in `entries`.
    index: HashMap<u64, usize>,
    /// CLOCK hand: where the next victim scan resumes.
    hand: usize,
    /// TTL-sweep cursor: where the next sweep step resumes.
    sweep: usize,
}

impl Ledger {
    fn insert(&mut self, key: u64, handle: u64) {
        self.index.insert(handle & ADDR_MASK, self.entries.len());
        self.entries.push((key, handle));
    }

    fn remove(&mut self, handle: u64) {
        if let Some(pos) = self.index.remove(&(handle & ADDR_MASK)) {
            self.entries.swap_remove(pos);
            if pos < self.entries.len() {
                let moved = self.entries[pos].1;
                self.index.insert(moved & ADDR_MASK, pos);
            }
        }
    }

    /// Rewrites the stored handle of a live entry (same blob address).
    fn retag(&mut self, handle: u64, new_handle: u64) {
        debug_assert_eq!(handle & ADDR_MASK, new_handle & ADDR_MASK);
        if let Some(&pos) = self.index.get(&(handle & ADDR_MASK)) {
            self.entries[pos].1 = new_handle;
        }
    }
}

/// A payload arena: header-prefixed `[u8]` blobs in ssmem-managed memory,
/// addressed by opaque 64-bit handles that fit wherever a `u64` value goes.
///
/// The arena does not synchronize readers itself — it inherits ssmem's
/// epoch protocol. The safety rules (enforced by [`BlobMap`], stated here
/// for direct users):
///
/// * a handle may be [`read`](Self::read_into) only under an
///   [`ssmem::protect`] guard created *before* the handle was fetched from
///   whatever shared index published it;
/// * a handle must be [`retire`](Self::retire)d at most once, and only
///   after it has been unlinked from every shared index.
///
/// Budget *policy* (reservation loops, eviction) lives in [`BlobMap`]; the
/// arena only carries the mechanism (the ledger, the gauges, the clock).
#[derive(Debug)]
pub struct ValueArena {
    /// Live handles + CLOCK state, maintained by the write path only, so
    /// teardown can free payloads without key enumeration from the backing.
    ledger: Mutex<Ledger>,
    stats: CachePadded<ArenaCounters>,
    cache: CachePadded<CacheCounters>,
    /// This shard's payload-byte budget (`None` = unbounded).
    budget: Option<u64>,
    /// The clock expiry deadlines are measured against.
    clock: Arc<dyn MsClock>,
}

impl Default for ValueArena {
    fn default() -> Self {
        Self::with_policy(None, Arc::new(WallClock))
    }
}

impl ValueArena {
    /// A fresh, empty, unbounded arena on the wall clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena with a byte budget and a clock (the [`BlobMap`]
    /// constructors split a store budget over shards and pass each share
    /// here).
    fn with_policy(budget: Option<u64>, clock: Arc<dyn MsClock>) -> Self {
        ValueArena {
            ledger: Mutex::new(Ledger::default()),
            stats: CachePadded::default(),
            cache: CachePadded::default(),
            budget,
            clock,
        }
    }

    /// Milliseconds on this arena's clock.
    fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Copies `value` into a fresh header-prefixed blob and returns its
    /// tagged handle. The payload is immutable from here on (readers rely
    /// on it); `expire_at_ms` (0 = none) sets the expiry word and the
    /// handle's TTL flag. Byte-budget accounting is the caller's job (see
    /// [`BlobMap`]'s reservation path).
    pub fn store(&self, key: u64, value: &[u8], expire_at_ms: u64) -> u64 {
        let layout = blob_layout(value.len());
        let ptr = ssmem::alloc_raw(layout);
        debug_assert_eq!(
            ptr as u64 & !ADDR_MASK,
            0,
            "blob pointers must fit the 48-bit/8-aligned tag layout"
        );
        // SAFETY: `ptr` is a fresh (or recycled past its grace period)
        // allocation of `layout`, which holds HEADER + value.len() bytes;
        // nothing else references it until we publish the handle. The
        // reference bit starts clear — only an actual read earns survival,
        // so a churn stream of never-read inserts evicts itself instead of
        // lapping the hand over (and past) the genuinely hot entries.
        unsafe {
            meta_cell(ptr).store(value.len() as u64, Ordering::Relaxed);
            expire_cell(ptr).store(expire_at_ms, Ordering::Relaxed);
            ptr.add(HEADER).copy_from_nonoverlapping(value.as_ptr(), value.len());
        }
        let generation = self.cache.generation.fetch_add(1, Ordering::Relaxed);
        let mut handle = (ptr as u64) | ((generation << 48) & TAG_GEN_MASK);
        if expire_at_ms != 0 {
            handle |= TAG_TTL;
            self.cache.ttl_live.fetch_add(1, Ordering::Relaxed);
        }
        self.ledger.lock().expect("arena ledger poisoned").insert(key, handle);
        self.stats.blobs_stored.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_stored.fetch_add(value.len() as u64, Ordering::Relaxed);
        handle
    }

    /// Payload length of a live (or protected) blob.
    ///
    /// # Safety
    ///
    /// Same contract as [`read_into`](Self::read_into).
    pub unsafe fn len_of(&self, handle: u64) -> usize {
        // SAFETY: forwarded caller contract; the meta word is word 0.
        (unsafe { meta_cell(blob_addr(handle)).load(Ordering::Relaxed) } & META_LEN_MASK) as usize
    }

    /// Appends the blob's payload bytes to `out`.
    ///
    /// # Safety
    ///
    /// The caller must hold an [`ssmem::protect`] guard that was created
    /// before `handle` was fetched from the shared index (or own the
    /// unlinked handle outright), and the handle must have been produced
    /// by [`store`](Self::store) on this or any other arena sharing the
    /// ssmem runtime.
    pub unsafe fn read_into(&self, handle: u64, out: &mut Vec<u8>) {
        let ptr = blob_addr(handle);
        // SAFETY: the guard (caller contract) keeps the blob from being
        // reclaimed; payloads are immutable after publish, so the length
        // and payload reads race with nothing.
        unsafe {
            let len = (meta_cell(ptr).load(Ordering::Relaxed) & META_LEN_MASK) as usize;
            out.extend_from_slice(std::slice::from_raw_parts(ptr.add(HEADER), len));
        }
    }

    /// [`read_into`](Self::read_into) for point reads: additionally sets
    /// the CLOCK reference bit — one relaxed bit-set in the header word
    /// the length load already pulled in, and only when a budget makes
    /// eviction live and the bit isn't already set. Same safety contract.
    unsafe fn read_into_marked(&self, handle: u64, out: &mut Vec<u8>) {
        let ptr = blob_addr(handle);
        // SAFETY: as `read_into`; the bit-set is atomic and races only
        // with other bit ops on the same word.
        unsafe {
            let meta = meta_cell(ptr).load(Ordering::Relaxed);
            let len = (meta & META_LEN_MASK) as usize;
            out.extend_from_slice(std::slice::from_raw_parts(ptr.add(HEADER), len));
            if self.budget.is_some() && meta & META_REF == 0 {
                meta_cell(ptr).fetch_or(META_REF, Ordering::Relaxed);
            }
        }
    }

    /// The blob's expiry deadline (0 = none). Same safety contract as
    /// [`read_into`](Self::read_into).
    unsafe fn expire_of(&self, handle: u64) -> u64 {
        // SAFETY: forwarded caller contract.
        unsafe { expire_cell(blob_addr(handle)).load(Ordering::Relaxed) }
    }

    /// `true` if the blob's deadline has passed on this arena's clock.
    /// Same safety contract as [`read_into`](Self::read_into).
    unsafe fn is_expired(&self, handle: u64) -> bool {
        // SAFETY: forwarded caller contract.
        let exp = unsafe { self.expire_of(handle) };
        exp != 0 && self.now_ms() >= exp
    }

    /// Rewrites the blob's expiry deadline (EXPIRE/PERSIST). Same safety
    /// contract as [`read_into`](Self::read_into).
    unsafe fn set_expire(&self, handle: u64, deadline_ms: u64) {
        // SAFETY: forwarded caller contract; the word is atomic, payloads
        // stay immutable.
        unsafe { expire_cell(blob_addr(handle)).store(deadline_ms, Ordering::Relaxed) };
    }

    /// Rewrites a live ledger entry's handle in place (EXPIRE retagging a
    /// deadline-free value) and keeps the TTL gauge coherent.
    fn retag(&self, handle: u64, new_handle: u64) {
        if !has_ttl(handle) && has_ttl(new_handle) {
            self.cache.ttl_live.fetch_add(1, Ordering::Relaxed);
        }
        self.ledger.lock().expect("arena ledger poisoned").retag(handle, new_handle);
    }

    /// Reserves `len` payload bytes against the gauge unconditionally
    /// (unbounded arenas, or a forced over-budget admission).
    fn add_live(&self, len: u64) {
        self.cache.live_now.fetch_add(len, Ordering::Relaxed);
    }

    /// Tries to reserve `len` payload bytes under the budget; `false`
    /// means the caller must evict (or force) first. With no budget the
    /// reservation always succeeds.
    fn try_reserve(&self, len: u64) -> bool {
        let Some(budget) = self.budget else {
            self.add_live(len);
            return true;
        };
        let mut cur = self.cache.live_now.load(Ordering::Relaxed);
        loop {
            if cur.saturating_add(len) > budget {
                return false;
            }
            match self.cache.live_now.compare_exchange_weak(
                cur,
                cur + len,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// CLOCK victim selection: advance the hand, clear reference bits on
    /// referenced entries, return the first unreferenced `(key, handle)`
    /// (forcing one after two full laps so concurrent re-referencing
    /// cannot starve the evictor). `None` if the ledger is empty.
    fn clock_victim(&self) -> Option<(u64, u64)> {
        let mut ledger = self.ledger.lock().expect("arena ledger poisoned");
        let n = ledger.entries.len();
        if n == 0 {
            return None;
        }
        for _ in 0..2 * n {
            let i = ledger.hand % n;
            ledger.hand = (i + 1) % n;
            let (key, handle) = ledger.entries[i];
            // SAFETY: the entry is in the ledger, and `retire` removes an
            // entry (under this lock) strictly before freeing its blob, so
            // the header is readable while we hold the lock.
            let meta = unsafe { meta_cell(blob_addr(handle)) };
            if meta.load(Ordering::Relaxed) & META_REF != 0 {
                meta.fetch_and(!META_REF, Ordering::Relaxed);
                continue;
            }
            return Some((key, handle));
        }
        let i = ledger.hand % n;
        ledger.hand = (i + 1) % n;
        Some(ledger.entries[i])
    }

    /// Collects up to `max` expired `(key, handle)` entries from the sweep
    /// cursor (the caller reclaims them after this lock is released).
    fn collect_expired(&self, max: usize, out: &mut Vec<(u64, u64)>) {
        let now = self.now_ms();
        let mut ledger = self.ledger.lock().expect("arena ledger poisoned");
        let n = ledger.entries.len();
        if n == 0 {
            return;
        }
        for _ in 0..max.min(n) {
            let i = ledger.sweep % n;
            ledger.sweep = (i + 1) % n;
            let (key, handle) = ledger.entries[i];
            if !has_ttl(handle) {
                continue;
            }
            // SAFETY: in-ledger entry under the ledger lock (see
            // `clock_victim`).
            let exp = unsafe { expire_cell(blob_addr(handle)).load(Ordering::Relaxed) };
            if exp != 0 && now >= exp {
                out.push((key, handle));
            }
        }
    }

    /// Retires a blob: its memory returns to the ssmem pool once every
    /// operation concurrent with this call has finished.
    ///
    /// # Safety
    ///
    /// `handle` must come from [`store`](Self::store), must already be
    /// unlinked from every shared index, and must not be retired twice.
    pub unsafe fn retire(&self, handle: u64) {
        let ptr = blob_addr(handle);
        // SAFETY: the handle is unlinked (caller contract), so this thread
        // owns the right to read its header and retire it.
        let len = (unsafe { meta_cell(ptr).load(Ordering::Relaxed) } & META_LEN_MASK) as usize;
        self.ledger.lock().expect("arena ledger poisoned").remove(handle);
        self.stats.blobs_retired.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_retired.fetch_add(len as u64, Ordering::Relaxed);
        // Saturating release of the reservation: direct arena users that
        // never reserved must not wrap the gauge.
        let _ = self.cache.live_now.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(len as u64))
        });
        if has_ttl(handle) {
            let _ = self.cache.ttl_live.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        }
        // SAFETY: unlinked and never retired before (caller contract);
        // layout is the same pure function of `len` used at allocation.
        unsafe { ssmem::retire_raw(ptr, blob_layout(len)) };
    }

    /// A copy of the arena's counters.
    pub fn stats(&self) -> ArenaStatsSnapshot {
        ArenaStatsSnapshot {
            blobs_stored: self.stats.blobs_stored.load(Ordering::Relaxed),
            blobs_retired: self.stats.blobs_retired.load(Ordering::Relaxed),
            bytes_stored: self.stats.bytes_stored.load(Ordering::Relaxed),
            bytes_retired: self.stats.bytes_retired.load(Ordering::Relaxed),
        }
    }

    /// A copy of the arena's cache-tier counters.
    fn cache_stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            budget_bytes: self.budget.unwrap_or(0),
            live_bytes: self.cache.live_now.load(Ordering::Relaxed),
            evictions: self.cache.evictions.load(Ordering::Relaxed),
            expired_lazy: self.cache.expired_lazy.load(Ordering::Relaxed),
            expired_swept: self.cache.expired_swept.load(Ordering::Relaxed),
            forced: self.cache.forced.load(Ordering::Relaxed),
            ttl_live: self.cache.ttl_live.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ValueArena {
    fn drop(&mut self) {
        // `&mut self`: no concurrent operations; every handle still in the
        // ledger is live (retired ones were removed at retire time and are
        // owned by the epoch collector).
        let ledger = std::mem::take(self.ledger.get_mut().expect("arena ledger poisoned"));
        for (_key, handle) in ledger.entries {
            let ptr = blob_addr(handle);
            // SAFETY: live blob, unreachable by any thread after Drop began.
            unsafe {
                let len = (meta_cell(ptr).load(Ordering::Relaxed) & META_LEN_MASK) as usize;
                ssmem::dealloc_raw_immediate(ptr, blob_layout(len));
            }
        }
    }
}

thread_local! {
    /// Scratch handle buffer for `multi_get`, so the server's MGET hot path
    /// performs no per-batch allocation for the handle pass.
    static HANDLE_SCRATCH: RefCell<Vec<Option<u64>>> = const { RefCell::new(Vec::new()) };
    /// Recycled per-value buffers: `multi_get_into` harvests the previous
    /// batch's `Vec<u8>`s from the caller's result buffer before clearing
    /// it, so a steady stream of batches reuses value capacity instead of
    /// allocating one vector per hit per frame.
    static VALUE_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Most recycled value buffers kept per thread (matches the largest batch
/// the serving tier dispatches at once).
const VALUE_POOL_CAP: usize = 1024;

/// Pooled buffers are shrunk to at most this capacity on return, so a
/// burst of maximum-size values cannot pin `VALUE_POOL_CAP × 64 KiB` of
/// heap per thread forever — the pool's worst case is bounded at
/// `VALUE_POOL_CAP × POOLED_VALUE_CAP_BYTES` (4 MiB). Values at or under
/// this size still recycle their full capacity.
const POOLED_VALUE_CAP_BYTES: usize = 4096;

/// Takes a recycled value buffer (empty) or a fresh one.
fn pool_take() -> Vec<u8> {
    VALUE_POOL.with(|pool| pool.borrow_mut().pop()).unwrap_or_default()
}

/// Returns an unneeded buffer to the pool for the next hit to reuse,
/// shrinking oversized ones so the pool's footprint stays bounded.
fn pool_put(mut value: Vec<u8>) {
    VALUE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < VALUE_POOL_CAP {
            value.clear();
            if value.capacity() > POOLED_VALUE_CAP_BYTES {
                value.shrink_to(POOLED_VALUE_CAP_BYTES);
            }
            pool.push(value);
        }
    });
}

/// Harvests the previous batch's value buffers out of a result vector into
/// the pool (capacity reuse across a stream of batches; oversized buffers
/// are shrunk, as in [`pool_put`]).
fn harvest_buffers(out: &mut [Option<Vec<u8>>]) {
    VALUE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        for slot in out.iter_mut() {
            if pool.len() >= VALUE_POOL_CAP {
                break;
            }
            if let Some(mut value) = slot.take() {
                value.clear();
                if value.capacity() > POOLED_VALUE_CAP_BYTES {
                    value.shrink_to(POOLED_VALUE_CAP_BYTES);
                }
                pool.push(value);
            }
        }
    });
}

/// How an expired value reached its reclaim (drives the counter split).
#[derive(Clone, Copy)]
enum Reclaim {
    /// A read found the corpse.
    Lazy,
    /// The piggybacked write/scan sweep found it.
    Swept,
}

/// Variable-length byte values over a [`ShardedMap`] of any backing: the
/// map stores arena handles, the per-shard [`ValueArena`]s store payloads,
/// and every read copies out under an epoch guard. With a [`CacheConfig`],
/// the map is a **bounded cache**: byte budgets enforced by CLOCK eviction
/// on the SET path, TTLs expired lazily on read plus an incremental sweep
/// (see the module docs).
///
/// `get`/`multi_get`/`scan` have **copy-out** semantics (the caller's
/// buffer is cleared and refilled), `set` **overwrites** (unlike the raw
/// structures' insert-if-absent — the displaced blob is retired), and
/// range scans are available when the backing is ordered.
pub struct BlobMap<M> {
    map: ShardedMap<M>,
    arenas: Box<[ValueArena]>,
    /// The blob map's *own* hot-key engine: it caches **payload bytes**
    /// (never arena handles — a cached handle could outlive a retire and
    /// dangle), so the inner index stays engine-less and the front cache
    /// sits above the epoch machinery entirely.
    hot: Option<Box<HotKeyEngine>>,
    /// TTL stamped on plain `set` calls (`None` = values don't expire).
    default_ttl_ms: Option<u64>,
}

impl<M: ConcurrentMap> BlobMap<M> {
    /// Builds a blob map over `shards` instances of the backing; `make(i)`
    /// constructs the `i`-th shard. No hot-key engine, inert cache tier.
    ///
    /// # Panics
    ///
    /// If `shards` is zero.
    pub fn new(shards: usize, make: impl FnMut(usize) -> M) -> Self {
        BlobMap {
            map: ShardedMap::new(shards, make),
            arenas: (0..shards).map(|_| ValueArena::new()).collect(),
            hot: None,
            default_ttl_ms: None,
        }
    }

    /// Like [`new`](Self::new), attaching a hot-key engine (see
    /// [`crate::hotkey`]): hot values up to
    /// [`crate::hotkey::FRONT_VALUE_CAP`] bytes are served from seqlock'd
    /// copies without touching the epoch guard, index, or arena, and hot
    /// writes delegate through a per-shard flat combiner. `cfg.k == 0`
    /// yields a plain map.
    pub fn with_hotkeys(shards: usize, cfg: HotKeyConfig, make: impl FnMut(usize) -> M) -> Self {
        let mut map = Self::new(shards, make);
        map.hot = HotKeyEngine::new(shards, cfg);
        map
    }

    /// The full constructor: hot-key engine plus cache-tier policy. The
    /// byte budget is split evenly over shards (each shard enforces its
    /// share, so the store-wide `live_bytes` can never exceed the total);
    /// the default TTL stamps every plain `set`.
    pub fn with_config(
        shards: usize,
        hot: HotKeyConfig,
        cache: CacheConfig,
        make: impl FnMut(usize) -> M,
    ) -> Self {
        let per_shard = cache.budget_bytes.map(|b| (b / shards as u64).max(1));
        BlobMap {
            map: ShardedMap::new(shards, make),
            arenas: (0..shards)
                .map(|_| ValueArena::with_policy(per_shard, cache.clock.clone()))
                .collect(),
            hot: HotKeyEngine::new(shards, hot),
            default_ttl_ms: cache.default_ttl_ms,
        }
    }

    /// The attached hot-key engine, if any.
    pub fn hotkey_engine(&self) -> Option<&HotKeyEngine> {
        self.hot.as_deref()
    }

    /// Hot-key engine counters, when an engine is attached.
    pub fn hotkey_stats(&self) -> Option<HotKeyStatsSnapshot> {
        self.hot.as_deref().map(HotKeyEngine::stats)
    }

    /// Current top-k hot keys (empty without an engine).
    pub fn hot_keys(&self) -> Vec<(u64, u64)> {
        self.hot.as_deref().map(HotKeyEngine::hot_keys).unwrap_or_default()
    }

    /// Cache-tier counters summed over shards (budget and live gauges are
    /// per-shard sums). Always available — an inert config reports a zero
    /// budget and zero policy counters but a live `live_bytes` gauge.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        let mut total = CacheStatsSnapshot::default();
        for a in self.arenas.iter() {
            total.merge(&a.cache_stats());
        }
        total
    }

    /// Applies a delegated op against the backing (index + arena). Called
    /// by whichever thread combines; must not touch the front cache (the
    /// engine does that, version-guarded, around this call).
    fn apply_hot(&self, op: &HotOp) -> HotOpResult {
        match op.kind {
            HotOpKind::Set => {
                // The publisher already stored the blob; publish its handle
                // (same loop as the plain `set` path).
                let arena = self.arena_of(op.key);
                let mut created = true;
                loop {
                    if self.map.insert(op.key, op.val_u64) {
                        return HotOpResult { ok: created, old: 0 };
                    }
                    if let Some(old) = self.map.remove(op.key) {
                        // Overwriting an already-dead value is a create.
                        // SAFETY: `remove` returned `old` to this thread
                        // alone; unlinked, readable, retired exactly once.
                        unsafe {
                            if !(has_ttl(old) && arena.is_expired(old)) {
                                created = false;
                            }
                            arena.retire(old);
                        }
                    }
                }
            }
            HotOpKind::Del => match self.map.remove(op.key) {
                Some(handle) => {
                    let arena = self.arena_of(op.key);
                    // SAFETY: unlinked by the remove, returned only to us.
                    let was_dead = unsafe { has_ttl(handle) && arena.is_expired(handle) };
                    // SAFETY: as above; retired exactly once.
                    unsafe { arena.retire(handle) };
                    if was_dead {
                        arena.cache.expired_lazy.fetch_add(1, Ordering::Relaxed);
                    }
                    HotOpResult { ok: !was_dead, old: 0 }
                }
                None => HotOpResult { ok: false, old: 0 },
            },
            HotOpKind::Insert => unreachable!("BlobMap never publishes u64 inserts"),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// The shard (and arena) index `key` routes to — the same routing the
    /// data path uses, exposed so observability layers can attribute an
    /// operation to a contended shard.
    pub fn shard_of(&self, key: u64) -> usize {
        self.map.shard_of(key)
    }

    #[inline]
    fn arena_of(&self, key: u64) -> &ValueArena {
        &self.arenas[self.map.shard_of(key)]
    }

    /// Keys currently present — including expired values whose corpses a
    /// read or sweep has not reclaimed yet (same consistency caveat as
    /// [`ConcurrentMap::size`]).
    pub fn len(&self) -> usize {
        self.map.size()
    }

    /// `true` if no keys are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Copies the value of `key` into `out` (cleared first); `true` if the
    /// key was present and alive. With a hot-key engine attached, fronted
    /// keys are answered from the engine's value copy (never older than
    /// the last completed write — see [`crate::hotkey`]) without touching
    /// the epoch guard, the index, or the arena; values carrying a TTL are
    /// never front-cached, so a front hit cannot outlive its deadline.
    pub fn get(&self, key: u64, out: &mut Vec<u8>) -> bool {
        out.clear();
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            match hot.read(key, out) {
                // Front-served reads skip the shard-stats RMWs (that's
                // the point of the front path); `total_stats` folds the
                // engine's own hit/absent counters back in.
                FrontRead::Hit => return true,
                FrontRead::Absent => return false,
                FrontRead::Pending(ticket) => {
                    let found = self.get_backing_ex(key, out);
                    match found {
                        // TTL'd values are never installed: dropping the
                        // lease leaves the slot pending, and every read
                        // keeps consulting the (expiry-checking) backing.
                        Some(true) => {}
                        Some(false) => hot.fill(&ticket, Some(out.as_slice())),
                        None => hot.fill(&ticket, None),
                    }
                    return found.is_some();
                }
                FrontRead::Miss => {}
            }
        }
        self.get_backing_ex(key, out).is_some()
    }

    /// The engine-less read path: epoch guard, index search, expiry check,
    /// arena copy. `Some(carries_ttl)` on a live hit; `None` on a miss
    /// (reclaiming the corpse when the miss was an expired value).
    fn get_backing_ex(&self, key: u64, out: &mut Vec<u8>) -> Option<bool> {
        out.clear();
        let arena = self.arena_of(key);
        let dead = {
            // Guard before the handle fetch: a concurrent DEL/overwrite
            // retires the blob, and this guard is what keeps it readable
            // until we're done copying.
            let _guard = ssmem::protect();
            match self.map.search(key) {
                None => return None,
                // SAFETY: guard created before the fetch (above).
                Some(handle) if has_ttl(handle) && unsafe { arena.is_expired(handle) } => handle,
                Some(handle) => {
                    // SAFETY: guard created before the fetch (above).
                    unsafe { arena.read_into_marked(handle, out) };
                    return Some(has_ttl(handle));
                }
            }
        };
        // Guard dropped: unlink and retire the corpse.
        self.expire_reclaim(key, dead, Reclaim::Lazy);
        None
    }

    /// Like [`get`](Self::get), returning a fresh vector.
    pub fn get_owned(&self, key: u64) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.get(key, &mut out).then_some(out)
    }

    /// `true` if the key is present and alive (expired-but-unreclaimed
    /// values answer `false`; this read-only probe does not reclaim them).
    pub fn contains(&self, key: u64) -> bool {
        let arena = self.arena_of(key);
        let _guard = ssmem::protect();
        match self.map.search(key) {
            // SAFETY: guard created before the fetch.
            Some(handle) => !(has_ttl(handle) && unsafe { arena.is_expired(handle) }),
            None => false,
        }
    }

    /// Stores `value` under `key`, overwriting any previous value (the
    /// displaced blob is retired) and stamping the config's default TTL,
    /// if any. Returns `true` if the key was newly created (an expired
    /// corpse counts as absent), `false` if a live value was replaced.
    /// Writes to a fronted key delegate through the flat combiner, which
    /// refreshes the front-cache copy write-through after the backing
    /// publish; TTL-stamped writes take the plain path and poison instead
    /// (TTL'd values are never front-cached).
    pub fn set(&self, key: u64, value: &[u8]) -> bool {
        self.set_with_ttl(key, value, self.default_ttl_ms)
    }

    /// [`set`](Self::set) with an explicit TTL (milliseconds; `0` = no
    /// expiry, overriding any config default).
    pub fn set_ex(&self, key: u64, value: &[u8], ttl_ms: u64) -> bool {
        self.set_with_ttl(key, value, (ttl_ms != 0).then_some(ttl_ms))
    }

    fn set_with_ttl(&self, key: u64, value: &[u8], ttl_ms: Option<u64>) -> bool {
        let shard = self.map.shard_of(key);
        let arena = &self.arenas[shard];
        self.maybe_sweep(shard);
        self.reserve(shard, value.len() as u64);
        let expire_at = match ttl_ms {
            // `.max(1)`: 0 is the no-deadline sentinel; a 0 ms TTL on a
            // clock still at 0 must still produce a real deadline.
            Some(t) => arena.now_ms().saturating_add(t).max(1),
            None => 0,
        };
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            if expire_at == 0 && hot.fronted(key) {
                // Store the blob up front (arena stores are uncontended);
                // only the index publish + slot refresh is delegated.
                let handle = arena.store(key, value, 0);
                let res =
                    hot.delegate(HotOp::set(key, handle, value), &mut |op| self.apply_hot(op));
                return res.ok;
            }
            let created = self.set_backing_at(key, value, expire_at);
            // The key may have been promoted while we wrote (and TTL'd
            // values are never front-cached): drop any cached copy so no
            // reader sees a value older than this write.
            hot.poison(key);
            return created;
        }
        self.set_backing_at(key, value, expire_at)
    }

    fn set_backing_at(&self, key: u64, value: &[u8], expire_at_ms: u64) -> bool {
        let arena = self.arena_of(key);
        let handle = arena.store(key, value, expire_at_ms);
        let mut created = true;
        loop {
            if self.map.insert(key, handle) {
                return created;
            }
            if let Some(old) = self.map.remove(key) {
                // Overwriting an expired corpse is a create, not a replace.
                // SAFETY: `remove` returned `old` to this thread alone, so
                // it is unlinked, readable, and retired exactly once.
                unsafe {
                    if !(has_ttl(old) && arena.is_expired(old)) {
                        created = false;
                    }
                    arena.retire(old);
                }
            }
            // Lost a race with a concurrent writer on this key in either
            // branch; retry until our handle is published.
        }
    }

    /// Removes `key`; `true` if a live value was present (the blob is
    /// retired either way — removing an expired corpse reports `false`).
    /// Same fronted-key handling as [`set`](Self::set).
    pub fn del(&self, key: u64) -> bool {
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            if hot.fronted(key) {
                return hot.delegate(HotOp::del(key), &mut |op| self.apply_hot(op)).ok;
            }
            let removed = self.del_backing(key);
            hot.poison(key);
            return removed;
        }
        self.del_backing(key)
    }

    fn del_backing(&self, key: u64) -> bool {
        match self.map.remove(key) {
            Some(handle) => {
                let arena = self.arena_of(key);
                // SAFETY: unlinked by the remove, returned only to us.
                let was_dead = unsafe { has_ttl(handle) && arena.is_expired(handle) };
                // SAFETY: as above; retired exactly once.
                unsafe { arena.retire(handle) };
                if was_dead {
                    arena.cache.expired_lazy.fetch_add(1, Ordering::Relaxed);
                }
                !was_dead
            }
            None => false,
        }
    }

    // -- expiry verbs ------------------------------------------------------

    /// Sets the expiry deadline of a live key to `ttl_ms` from now;
    /// `true` if the key was present and alive. A `ttl_ms` of 0 expires
    /// the value immediately (the next read or sweep reclaims it).
    /// Racing a concurrent overwrite of the same key resolves in an
    /// arbitrary order (module docs).
    pub fn expire(&self, key: u64, ttl_ms: u64) -> bool {
        let arena = self.arena_of(key);
        let deadline = arena.now_ms().saturating_add(ttl_ms).max(1);
        enum After {
            Done,
            Dead(u64),
            Retag(u64),
        }
        let after = {
            let _guard = ssmem::protect();
            match self.map.search(key) {
                None => return false,
                Some(h) if has_ttl(h) => {
                    // SAFETY: guard created before the fetch.
                    if unsafe { arena.is_expired(h) } {
                        After::Dead(h)
                    } else {
                        // SAFETY: as above; the expiry word is atomic.
                        unsafe { arena.set_expire(h, deadline) };
                        After::Done
                    }
                }
                Some(h) => After::Retag(h),
            }
        };
        match after {
            After::Done => true,
            After::Dead(h) => {
                self.expire_reclaim(key, h, Reclaim::Lazy);
                false
            }
            After::Retag(h) => self.retag_with_ttl(key, h, deadline),
        }
    }

    /// Republishes a deadline-free value with the TTL flag set (readers
    /// only consult the expiry word when the handle carries the flag).
    /// The remove/insert pair has the same transient-miss window as an
    /// overwrite.
    fn retag_with_ttl(&self, key: u64, h: u64, deadline: u64) -> bool {
        let arena = self.arena_of(key);
        match self.map.remove(key) {
            Some(got) if got == h => {
                // We own the value now: stamp the deadline, retag the
                // ledger entry, and republish with the TTL flag. Poison
                // first — the front cache may hold a copy from the value's
                // deadline-free life, which must not outlive the deadline.
                // SAFETY: unlinked by our remove, returned only to us.
                unsafe { arena.set_expire(got, deadline) };
                let tagged = got | TAG_TTL;
                arena.retag(got, tagged);
                if let Some(hot) = &self.hot {
                    hot.poison(key);
                }
                if !self.map.insert(key, tagged) {
                    // A concurrent SET won the key; our value was current
                    // until this EXPIRE raced the overwrite — retire it.
                    if let Some(hot) = &self.hot {
                        hot.poison(key);
                    }
                    // SAFETY: still unlinked and owned by us.
                    unsafe { arena.retire(tagged) };
                }
                true
            }
            Some(other) => {
                // Raced an overwrite: put the fresh value back untouched.
                if !self.map.insert(key, other) {
                    if let Some(hot) = &self.hot {
                        hot.poison(key);
                    }
                    // SAFETY: unlinked by our remove; an even fresher
                    // write now owns the key.
                    unsafe { arena.retire(other) };
                }
                true
            }
            None => false,
        }
    }

    /// Clears the expiry deadline of a live key; `true` if the key was
    /// present and alive (with or without a deadline to clear).
    pub fn persist(&self, key: u64) -> bool {
        let arena = self.arena_of(key);
        let dead = {
            let _guard = ssmem::protect();
            match self.map.search(key) {
                None => return false,
                Some(h) if !has_ttl(h) => return true,
                // SAFETY: guard created before the fetch.
                Some(h) if unsafe { arena.is_expired(h) } => h,
                Some(h) => {
                    // The TTL flag stays in the handle (republishing is an
                    // overwrite-shaped disruption); a zero expiry word
                    // reads as "no deadline".
                    // SAFETY: as above; the expiry word is atomic.
                    unsafe { arena.set_expire(h, 0) };
                    return true;
                }
            }
        };
        self.expire_reclaim(key, dead, Reclaim::Lazy);
        false
    }

    /// Remaining lifetime of `key`: `None` = missing (or expired),
    /// `Some(None)` = present with no deadline, `Some(Some(ms))` =
    /// milliseconds until expiry.
    pub fn ttl_ms(&self, key: u64) -> Option<Option<u64>> {
        let arena = self.arena_of(key);
        let dead = {
            let _guard = ssmem::protect();
            match self.map.search(key) {
                None => return None,
                Some(h) if !has_ttl(h) => return Some(None),
                Some(h) => {
                    // SAFETY: guard created before the fetch.
                    let exp = unsafe { arena.expire_of(h) };
                    if exp == 0 {
                        return Some(None); // PERSISTed
                    }
                    let now = arena.now_ms();
                    if now >= exp {
                        h
                    } else {
                        return Some(Some(exp - now));
                    }
                }
            }
        };
        self.expire_reclaim(key, dead, Reclaim::Lazy);
        None
    }

    // -- cache-tier internals ----------------------------------------------

    /// Reserves `len` payload bytes on `shard`, evicting via CLOCK until
    /// the reservation fits the shard's budget. Never blocks on readers;
    /// forces the admission (counted) after [`EVICT_FORCE_ATTEMPTS`]
    /// consecutive fruitless evictions so a value larger than the budget
    /// cannot wedge the write path.
    fn reserve(&self, shard: usize, len: u64) {
        let arena = &self.arenas[shard];
        let mut fruitless = 0u32;
        loop {
            if arena.try_reserve(len) {
                return;
            }
            if self.evict_one(shard) {
                fruitless = 0;
            } else {
                fruitless += 1;
                if fruitless >= EVICT_FORCE_ATTEMPTS {
                    arena.add_live(len);
                    arena.cache.forced.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Evicts one CLOCK victim from `shard`; `true` if bytes were freed.
    fn evict_one(&self, shard: usize) -> bool {
        let arena = &self.arenas[shard];
        let Some((key, handle)) = arena.clock_victim() else {
            return false;
        };
        match self.map.remove(key) {
            Some(got) if got == handle => {
                // Poison before retire: a fronted copy must die before the
                // backing value does (never-stale guarantee).
                if let Some(hot) = &self.hot {
                    hot.poison(key);
                }
                // SAFETY: unlinked by our remove, returned only to us.
                unsafe { arena.retire(got) };
                arena.cache.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(other) => {
                // The snapshot went stale (an overwrite raced us — the
                // generation tag makes a recycled pointer unmistakable):
                // republish the fresh value we just unlinked.
                if self.map.insert(key, other) {
                    false
                } else {
                    // An even fresher write claimed the key meanwhile; the
                    // value we hold lost that race — evicting it is legal.
                    if let Some(hot) = &self.hot {
                        hot.poison(key);
                    }
                    // SAFETY: unlinked by our remove, owned by us.
                    unsafe { arena.retire(other) };
                    arena.cache.evictions.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
            None => false,
        }
    }

    /// The piggybacked TTL sweep: every [`SWEEP_EVERY`]th `set` on a shard
    /// walks [`SWEEP_BATCH`] ledger entries from the sweep cursor and
    /// reclaims the expired ones. Free when no value carries a deadline.
    fn maybe_sweep(&self, shard: usize) {
        let arena = &self.arenas[shard];
        if arena.cache.ttl_live.load(Ordering::Relaxed) == 0 {
            return;
        }
        if arena.cache.sweep_tick.fetch_add(1, Ordering::Relaxed) % SWEEP_EVERY != 0 {
            return;
        }
        let mut expired: Vec<(u64, u64)> = Vec::with_capacity(SWEEP_BATCH);
        arena.collect_expired(SWEEP_BATCH, &mut expired);
        for (key, handle) in expired {
            self.expire_reclaim(key, handle, Reclaim::Swept);
        }
    }

    /// Unlinks and retires an expired value, tolerating every race: only
    /// the exact `(key → handle)` binding we observed is reclaimed; a
    /// fresh value that raced in is republished untouched. Nothing here
    /// dereferences the stale `handle` — the only blobs touched are the
    /// ones `remove` handed us exclusively.
    fn expire_reclaim(&self, key: u64, handle: u64, kind: Reclaim) {
        let arena = self.arena_of(key);
        match self.map.remove(key) {
            Some(got) if got == handle => {
                // Poison before retire (never-stale; see `evict_one`).
                if let Some(hot) = &self.hot {
                    hot.poison(key);
                }
                // SAFETY: unlinked by our remove, returned only to us.
                unsafe { arena.retire(got) };
                let counter = match kind {
                    Reclaim::Lazy => &arena.cache.expired_lazy,
                    Reclaim::Swept => &arena.cache.expired_swept,
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            Some(other) if !self.map.insert(key, other) => {
                if let Some(hot) = &self.hot {
                    hot.poison(key);
                }
                // SAFETY: unlinked by our remove, owned by us.
                unsafe { arena.retire(other) };
            }
            Some(_) | None => {}
        }
    }

    // -- batched ops -------------------------------------------------------

    /// Batched lookup with copy-out: clears `out` and refills it with
    /// per-key answers in input order. With a hot-key engine attached,
    /// fronted keys are answered from their front-cache copies and only
    /// the remainder takes the batched backing path (one epoch guard).
    pub fn multi_get_into(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>) {
        let Some(hot) = self.hot.as_deref() else {
            self.multi_get_backing(keys, out);
            return;
        };
        harvest_buffers(out);
        out.clear();
        out.resize(keys.len(), None);
        // `(input position, key, fill lease)` of every key the front cache
        // could not answer; they take the batched backing path below.
        let mut rest: Vec<(usize, u64, Option<FillTicket>)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            hot.record_access(key);
            let mut value = pool_take();
            match hot.read(key, &mut value) {
                // As in `get`: front-served keys skip the shard-stats
                // RMWs; `total_stats` folds the engine counters back in.
                FrontRead::Hit => {
                    out[i] = Some(value);
                }
                FrontRead::Absent => {
                    pool_put(value);
                }
                FrontRead::Pending(ticket) => {
                    pool_put(value);
                    rest.push((i, key, Some(ticket)));
                }
                FrontRead::Miss => {
                    pool_put(value);
                    rest.push((i, key, None));
                }
            }
        }
        if rest.is_empty() {
            return;
        }
        let mut dead: Vec<(u64, u64)> = Vec::new();
        HANDLE_SCRATCH.with(|scratch| {
            let mut handles = scratch.borrow_mut();
            let _guard = ssmem::protect();
            let rest_keys: Vec<u64> = rest.iter().map(|&(_, k, _)| k).collect();
            self.map.multi_get_into(&rest_keys, &mut handles);
            for (&(pos, key, ref ticket), handle) in rest.iter().zip(handles.iter()) {
                let arena = self.arena_of(key);
                let resolved = handle.and_then(|h| {
                    // SAFETY: guard created before the batched fetch.
                    if has_ttl(h) && unsafe { arena.is_expired(h) } {
                        dead.push((key, h));
                        return None;
                    }
                    let mut value = pool_take();
                    // SAFETY: guard created before the batched fetch.
                    unsafe { arena.read_into_marked(h, &mut value) };
                    Some((value, has_ttl(h)))
                });
                match resolved {
                    Some((value, ttl)) => {
                        if let Some(ticket) = ticket {
                            if !ttl {
                                hot.fill(ticket, Some(&value));
                            }
                        }
                        out[pos] = Some(value);
                    }
                    None => {
                        if let Some(ticket) = ticket {
                            hot.fill(ticket, None);
                        }
                    }
                }
            }
        });
        // Guard dropped (the closure ended): reclaim the corpses.
        for (key, h) in dead {
            self.expire_reclaim(key, h, Reclaim::Lazy);
        }
    }

    /// The engine-less batched read path (also serves the engine path's
    /// front-cache misses).
    fn multi_get_backing(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>) {
        // Harvest the previous batch's value buffers before clearing, so
        // repeated batches through one result buffer stop allocating per
        // hit once capacities have warmed up.
        harvest_buffers(out);
        out.clear();
        let mut dead: Vec<(u64, u64)> = Vec::new();
        HANDLE_SCRATCH.with(|scratch| {
            let mut handles = scratch.borrow_mut();
            let _guard = ssmem::protect();
            self.map.multi_get_into(keys, &mut handles);
            out.reserve(handles.len());
            for (&key, handle) in keys.iter().zip(handles.iter()) {
                let arena = self.arena_of(key);
                out.push(handle.and_then(|h| {
                    // SAFETY: guard created before the batched fetch.
                    if has_ttl(h) && unsafe { arena.is_expired(h) } {
                        dead.push((key, h));
                        return None;
                    }
                    let mut value = pool_take();
                    // SAFETY: guard created before the batched fetch.
                    unsafe { arena.read_into_marked(h, &mut value) };
                    Some(value)
                }));
            }
        });
        for (key, h) in dead {
            self.expire_reclaim(key, h, Reclaim::Lazy);
        }
    }

    /// Allocating wrapper over [`multi_get_into`](Self::multi_get_into).
    pub fn multi_get(&self, keys: &[u64]) -> Vec<Option<Vec<u8>>> {
        let mut out = Vec::new();
        self.multi_get_into(keys, &mut out);
        out
    }

    /// Batched overwrite in input order; `result[i]` tells whether
    /// `entries[i]` created its key. Per-key semantics are exactly a loop
    /// of [`set`](Self::set) calls (a duplicate key within one batch: later
    /// occurrences overwrite earlier ones).
    pub fn multi_set<B: AsRef<[u8]>>(&self, entries: &[(u64, B)]) -> Vec<bool> {
        entries.iter().map(|(k, v)| self.set(*k, v.as_ref())).collect()
    }

    /// Per-shard payload statistics.
    pub fn arena_stats(&self) -> Vec<ArenaStatsSnapshot> {
        self.arenas.iter().map(|a| a.stats()).collect()
    }

    /// Payload statistics aggregated over all shards.
    pub fn total_arena_stats(&self) -> ArenaStatsSnapshot {
        let mut total = ArenaStatsSnapshot::default();
        for a in self.arenas.iter() {
            total.merge(&a.stats());
        }
        total
    }

    /// Traffic counters of the underlying sharded index, plus the reads
    /// the hot-key front cache answered without touching a shard (folded
    /// into `searches`/`hits` here so a fronted GET still counts as a
    /// search; the per-shard snapshots deliberately exclude them).
    pub fn total_stats(&self) -> crate::stats::ShardStatsSnapshot {
        let mut total = self.map.total_stats();
        if let Some(h) = self.hotkey_stats() {
            total.searches = total.searches.saturating_add(h.front_hits + h.front_absent);
            total.hits = total.hits.saturating_add(h.front_hits);
        }
        total
    }
}

impl<M: OrderedMap> BlobMap<M> {
    /// Up to `n` `(key, value)` pairs with key `>= from` in ascending key
    /// order, values copied out. Inherits the non-snapshot scan semantics
    /// of [`OrderedMap`] (each pair was present at some point during the
    /// scan; payloads are never torn). Expired values are filtered out
    /// (and reclaimed — the scan doubles as a sweep pass), so a page may
    /// come back shorter than `n` even mid-keyspace; callers already
    /// resume from the last returned key + 1.
    pub fn scan(&self, from: u64, n: usize) -> Vec<(u64, Vec<u8>)> {
        self.scan_bounded(from, n, usize::MAX)
    }

    /// Like [`scan`](Self::scan), additionally stopping once the copied
    /// payload bytes reach `max_bytes` (a *soft* cap: the value that
    /// crosses the budget is still included, so a scan over huge values
    /// always makes progress). Serving tiers use this to bound per-reply
    /// memory; callers page by resuming from the last returned key + 1.
    pub fn scan_bounded(
        &self,
        from: u64,
        n: usize,
        max_bytes: usize,
    ) -> Vec<(u64, Vec<u8>)> {
        let mut dead: Vec<(u64, u64)> = Vec::new();
        let mut out;
        {
            // One guard across handle gather and payload copy-out.
            let _guard = ssmem::protect();
            let pairs = self.map.scan(from, n);
            out = Vec::with_capacity(pairs.len());
            let mut copied = 0usize;
            for (key, handle) in pairs {
                let arena = self.arena_of(key);
                // SAFETY: guard created before the scan fetched the handle.
                if has_ttl(handle) && unsafe { arena.is_expired(handle) } {
                    dead.push((key, handle));
                    continue;
                }
                let mut value = Vec::new();
                // SAFETY: guard created before the scan fetched the handle.
                unsafe { arena.read_into(handle, &mut value) };
                copied = copied.saturating_add(value.len());
                out.push((key, value));
                if copied >= max_bytes {
                    break;
                }
            }
        }
        // Guard dropped: the scan doubles as a sweep pass.
        for (key, h) in dead {
            self.expire_reclaim(key, h, Reclaim::Swept);
        }
        out
    }
}

impl<M: ConcurrentMap> std::fmt::Debug for BlobMap<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobMap")
            .field("shards", &self.shard_count())
            .field("len", &self.len())
            .field("payload", &self.total_arena_stats())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::FakeClock;
    use ascylib::hashtable::ClhtLb;
    use ascylib::skiplist::FraserOptSkipList;

    fn blob_map() -> BlobMap<FraserOptSkipList> {
        BlobMap::new(4, |_| FraserOptSkipList::new())
    }

    /// A single-shard map on a hand-cranked clock (TTL-focused tests).
    fn clocked_map(cfg: CacheConfig) -> (BlobMap<FraserOptSkipList>, Arc<FakeClock>) {
        let clock = Arc::new(FakeClock::new());
        let cfg = cfg.with_clock(clock.clone());
        let map =
            BlobMap::with_config(1, HotKeyConfig::default(), cfg, |_| FraserOptSkipList::new());
        (map, clock)
    }

    #[test]
    fn set_get_del_roundtrip_with_binary_payloads() {
        let map = blob_map();
        let payload = [0u8, 1, 2, b'\n', b'\r', 0, 255, 42];
        assert!(map.set(7, &payload));
        assert_eq!(map.len(), 1);
        let mut out = vec![9u8; 3]; // stale contents must be cleared
        assert!(map.get(7, &mut out));
        assert_eq!(out, payload);
        assert_eq!(map.get_owned(7), Some(payload.to_vec()));
        assert!(!map.get(8, &mut out));
        assert!(out.is_empty());
        assert!(map.del(7));
        assert!(!map.del(7));
        assert!(map.is_empty());
    }

    #[test]
    fn empty_and_large_values_roundtrip() {
        let map = blob_map();
        assert!(map.set(1, b""));
        assert_eq!(map.get_owned(1), Some(Vec::new()));
        let big = vec![0xA5u8; 64 * 1024];
        assert!(map.set(2, &big));
        assert_eq!(map.get_owned(2).unwrap(), big);
        let stats = map.total_arena_stats();
        assert_eq!(stats.live_blobs(), 2);
        assert_eq!(stats.live_bytes(), big.len() as u64);
        // The reservation gauge agrees with the arena accounting.
        assert_eq!(map.cache_stats().live_bytes, big.len() as u64);
    }

    #[test]
    fn overwrite_replaces_and_retires_the_old_blob() {
        let map = blob_map();
        assert!(map.set(5, b"first"), "fresh key creates");
        assert!(!map.set(5, b"second, longer value"), "overwrite reports replacement");
        assert_eq!(map.get_owned(5).unwrap(), b"second, longer value");
        assert_eq!(map.len(), 1);
        let stats = map.total_arena_stats();
        assert_eq!(stats.blobs_stored, 2);
        assert_eq!(stats.blobs_retired, 1);
        assert_eq!(stats.live_bytes(), b"second, longer value".len() as u64);
    }

    #[test]
    fn multi_ops_follow_input_order() {
        let map = blob_map();
        let outcomes = map.multi_set(&[
            (1, b"one".as_slice()),
            (2, b"two"),
            (1, b"uno"),
        ]);
        assert_eq!(outcomes, vec![true, true, false], "later duplicate overwrites");
        assert_eq!(
            map.multi_get(&[1, 3, 2, 1]),
            vec![
                Some(b"uno".to_vec()),
                None,
                Some(b"two".to_vec()),
                Some(b"uno".to_vec())
            ]
        );
        let mut out = Vec::new();
        map.multi_get_into(&[2], &mut out);
        assert_eq!(out, vec![Some(b"two".to_vec())]);
    }

    #[test]
    fn multi_get_into_recycles_value_buffers_across_batches() {
        let map = blob_map();
        map.set(1, &[0xAA; 300]);
        map.set(2, &[0xBB; 50]);
        let mut out = Vec::new();
        map.multi_get_into(&[1, 2, 3], &mut out);
        let first_ptr = out[0].as_ref().unwrap().as_ptr();
        assert_eq!(out[0].as_ref().unwrap(), &vec![0xAA; 300]);
        // The next batch (same thread, same result buffer) reuses the
        // harvested 300-byte buffer for a value that fits in it.
        map.multi_get_into(&[2, 1], &mut out);
        assert_eq!(out, vec![Some(vec![0xBB; 50]), Some(vec![0xAA; 300])]);
        let reused = out
            .iter()
            .flatten()
            .any(|v| std::ptr::eq(v.as_ptr(), first_ptr));
        assert!(reused, "warmed value capacity must be recycled, not reallocated");
    }

    #[test]
    fn value_pool_shrinks_oversized_buffers_and_stays_capped() {
        let map = blob_map();
        map.set(1, &vec![7u8; 64 * 1024]);
        map.set(2, b"small");
        let mut out = Vec::new();
        // Each batch materializes the 64 KiB value; the next call harvests
        // that buffer back into the pool, where it must be shrunk.
        for _ in 0..4 {
            map.multi_get_into(&[1, 2], &mut out);
        }
        map.multi_get_into(&[2], &mut out); // harvests the last big buffer
        VALUE_POOL.with(|pool| {
            let pool = pool.borrow();
            assert!(pool.len() <= VALUE_POOL_CAP);
            for v in pool.iter() {
                assert!(
                    v.capacity() <= POOLED_VALUE_CAP_BYTES,
                    "pooled buffer kept {} bytes of capacity",
                    v.capacity()
                );
            }
        });
    }

    #[test]
    fn scan_returns_key_ordered_payloads_across_shards() {
        let map = blob_map();
        for k in (2..=40u64).step_by(2) {
            map.set(k, format!("v{k}").as_bytes());
        }
        let got = map.scan(7, 4);
        assert_eq!(
            got,
            vec![
                (8, b"v8".to_vec()),
                (10, b"v10".to_vec()),
                (12, b"v12".to_vec()),
                (14, b"v14".to_vec())
            ]
        );
        assert!(map.scan(41, 8).is_empty());
    }

    #[test]
    fn scan_bounded_stops_at_the_payload_budget_but_always_progresses() {
        let map = blob_map();
        for k in 1..=10u64 {
            map.set(k, &[k as u8; 100]);
        }
        // Budget of 250 bytes: pairs of 100 bytes each — the third value
        // crosses the budget and is included (soft cap), then the scan
        // stops.
        let got = map.scan_bounded(1, 10, 250);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (1, vec![1u8; 100]));
        assert_eq!(got[2].0, 3);
        // A budget smaller than one value still returns that value.
        assert_eq!(map.scan_bounded(5, 10, 1).len(), 1);
        // Paging from the last key + 1 completes the sweep.
        let rest = map.scan_bounded(4, 10, usize::MAX);
        assert_eq!(rest.len(), 7);
        // No budget behaves like plain scan.
        assert_eq!(map.scan_bounded(1, 10, usize::MAX), map.scan(1, 10));
    }

    #[test]
    fn drop_frees_live_blobs_through_the_ledger() {
        // The hash backing cannot enumerate keys; the ledger must still
        // account (and free) every live blob. Observable here as exact
        // ledger bookkeeping; leaks would show up under ASan/valgrind runs.
        let map = BlobMap::new(3, |_| ClhtLb::with_capacity(64));
        for k in 1..=50u64 {
            map.set(k, &vec![k as u8; (k % 17) as usize]);
        }
        for k in 1..=20u64 {
            map.del(k);
        }
        for k in 10..=15u64 {
            map.set(k + 100, b"replacement");
        }
        let stats = map.total_arena_stats();
        assert_eq!(stats.live_blobs(), 36);
        let ledger_total: usize = map
            .arenas
            .iter()
            .map(|a| {
                let ledger = a.ledger.lock().unwrap();
                assert_eq!(ledger.entries.len(), ledger.index.len());
                ledger.entries.len()
            })
            .sum();
        assert_eq!(ledger_total as u64, stats.live_blobs());
        drop(map); // frees the 36 live blobs via the ledger
    }

    #[test]
    fn works_over_hash_backings_too() {
        let map = BlobMap::new(2, |_| ClhtLb::with_capacity(128));
        for k in 1..=100u64 {
            assert!(map.set(k, &k.to_le_bytes()));
        }
        for k in 1..=100u64 {
            assert_eq!(map.get_owned(k).unwrap(), k.to_le_bytes());
        }
        assert_eq!(map.len(), 100);
    }

    // -- cache tier --------------------------------------------------------

    #[test]
    fn handles_carry_tags_and_reads_mask_them() {
        let arena = ValueArena::new();
        let h1 = arena.store(1, b"alpha", 0);
        let h2 = arena.store(2, b"beta", 1234);
        assert!(!has_ttl(h1));
        assert!(has_ttl(h2));
        assert_ne!(h1 & TAG_GEN_MASK, h2 & TAG_GEN_MASK, "generations differ");
        let mut out = Vec::new();
        // SAFETY: both handles are live and owned by this test.
        unsafe {
            assert_eq!(arena.len_of(h1), 5);
            arena.read_into(h1, &mut out);
            assert_eq!(out, b"alpha");
            out.clear();
            arena.read_into(h2, &mut out);
            assert_eq!(out, b"beta");
            assert_eq!(arena.expire_of(h2), 1234);
            arena.retire(h1);
            arena.retire(h2);
        }
        assert_eq!(arena.stats().live_blobs(), 0);
    }

    #[test]
    fn ttl_expires_at_the_exact_boundary() {
        let (map, clock) = clocked_map(CacheConfig::unbounded());
        assert!(map.set_ex(1, b"short-lived", 100));
        assert!(map.get_owned(1).is_some());
        assert_eq!(map.ttl_ms(1), Some(Some(100)));
        clock.advance(99);
        assert!(map.get_owned(1).is_some(), "alive strictly before the deadline");
        assert_eq!(map.ttl_ms(1), Some(Some(1)));
        clock.advance(1);
        assert!(map.get_owned(1).is_none(), "dead exactly at the deadline");
        assert!(!map.contains(1));
        assert_eq!(map.ttl_ms(1), None);
        // The lazy read reclaimed the corpse: index entry and bytes gone.
        assert_eq!(map.len(), 0);
        assert_eq!(map.total_arena_stats().live_blobs(), 0);
        assert!(map.cache_stats().expired_lazy >= 1);
    }

    #[test]
    fn overwrite_resets_ttl_and_del_of_a_corpse_reports_absent() {
        let (map, clock) = clocked_map(CacheConfig::unbounded());
        map.set_ex(1, b"v1", 100);
        clock.advance(50);
        assert!(!map.set_ex(1, b"v2", 100), "live overwrite replaces");
        clock.advance(99);
        assert_eq!(map.get_owned(1).unwrap(), b"v2", "overwrite restarted the clock");
        clock.advance(1);
        assert!(map.get_owned(1).is_none());
        map.set_ex(2, b"w", 10);
        clock.advance(10);
        assert!(!map.del(2), "deleting an expired corpse is a no-op answer");
        assert!(map.set_ex(3, b"x", 10));
        clock.advance(10);
        assert!(map.set(3, b"y"), "overwriting a corpse is a create");
        assert!(map.get_owned(3).is_some());
    }

    #[test]
    fn default_ttl_stamps_plain_sets() {
        let (map, clock) =
            clocked_map(CacheConfig::unbounded().with_ttl_ms(50));
        map.set(1, b"fleeting");
        assert_eq!(map.ttl_ms(1), Some(Some(50)));
        clock.advance(50);
        assert!(map.get_owned(1).is_none());
        // An explicit 0 TTL overrides the default: the value persists.
        map.set_ex(2, b"durable", 0);
        assert_eq!(map.ttl_ms(2), Some(None));
        clock.advance(10_000);
        assert!(map.get_owned(2).is_some());
    }

    #[test]
    fn expire_persist_and_ttl_cover_both_handle_shapes() {
        let (map, clock) = clocked_map(CacheConfig::unbounded());
        // Retag path: the value was stored without a deadline.
        map.set(1, b"v");
        assert_eq!(map.ttl_ms(1), Some(None));
        assert!(map.expire(1, 100));
        assert_eq!(map.ttl_ms(1), Some(Some(100)));
        clock.advance(60);
        assert_eq!(map.ttl_ms(1), Some(Some(40)));
        // Fast path: the handle already carries the TTL flag.
        assert!(map.expire(1, 500));
        assert_eq!(map.ttl_ms(1), Some(Some(500)));
        // PERSIST clears the deadline; the value survives forever after.
        assert!(map.persist(1));
        assert_eq!(map.ttl_ms(1), Some(None));
        clock.advance(10_000);
        assert_eq!(map.get_owned(1).unwrap(), b"v");
        // Re-EXPIRE after PERSIST works through the zeroed word.
        assert!(map.expire(1, 10));
        clock.advance(10);
        assert!(!map.expire(1, 10), "expired corpse answers absent");
        assert!(!map.persist(1));
        assert!(!map.expire(2, 10), "missing key answers absent");
        assert!(!map.persist(2));
    }

    #[test]
    fn sweep_reclaims_corpses_without_reads() {
        let (map, clock) = clocked_map(CacheConfig::unbounded());
        for k in 1..=32u64 {
            map.set_ex(k, &[k as u8; 64], 100);
        }
        clock.advance(100);
        assert_eq!(map.total_arena_stats().live_blobs(), 32);
        // Writes to *other* keys drive the piggybacked sweep over the
        // corpses (SWEEP_EVERY=64, SWEEP_BATCH=8 — give it enough ticks).
        for i in 0..((SWEEP_EVERY as usize) * 40) {
            map.set(1000 + i as u64, b"driver");
        }
        let stats = map.cache_stats();
        assert!(
            stats.expired_swept >= 16,
            "sweep reclaimed only {} corpses",
            stats.expired_swept
        );
    }

    #[test]
    fn budget_is_enforced_by_clock_eviction() {
        let budget = 16 * 1024u64;
        let map = BlobMap::with_config(
            1,
            HotKeyConfig::default(),
            CacheConfig::unbounded().with_budget(budget),
            |_| FraserOptSkipList::new(),
        );
        // 256 keys × 256 B = 64 KiB of demand against a 16 KiB budget.
        for k in 1..=256u64 {
            map.set(k, &[k as u8; 256]);
        }
        let stats = map.cache_stats();
        assert_eq!(stats.budget_bytes, budget);
        assert!(stats.live_bytes <= budget, "live {} > budget {budget}", stats.live_bytes);
        assert!(stats.evictions >= 192, "only {} evictions", stats.evictions);
        assert_eq!(stats.forced, 0);
        assert_eq!(map.total_arena_stats().live_bytes(), stats.live_bytes);
        // Survivors still answer correctly.
        let mut present = 0;
        for k in 1..=256u64 {
            if let Some(v) = map.get_owned(k) {
                assert_eq!(v, vec![k as u8; 256]);
                present += 1;
            }
        }
        assert_eq!(present as u64, stats.live_bytes / 256);
    }

    #[test]
    fn clock_eviction_spares_referenced_values() {
        let map = BlobMap::with_config(
            1,
            HotKeyConfig::default(),
            CacheConfig::unbounded().with_budget(8 * 1024),
            |_| FraserOptSkipList::new(),
        );
        for k in 1..=16u64 {
            map.set(k, &[k as u8; 256]);
        }
        // Keep re-referencing key 1 while churning enough inserts that
        // CLOCK must lap the ledger repeatedly.
        for round in 0..64u64 {
            assert!(map.get_owned(1).is_some(), "hot key evicted at round {round}");
            map.set(100 + round, &[0u8; 256]);
        }
    }

    #[test]
    fn oversized_value_forces_admission_but_is_counted() {
        let map = BlobMap::with_config(
            1,
            HotKeyConfig::default(),
            CacheConfig::unbounded().with_budget(1024),
            |_| FraserOptSkipList::new(),
        );
        map.set(1, &[9u8; 4096]); // larger than the whole budget
        assert_eq!(map.get_owned(1).unwrap().len(), 4096);
        let stats = map.cache_stats();
        assert!(stats.forced >= 1);
        assert!(stats.live_bytes >= 4096);
    }

    #[test]
    fn eviction_poisons_fronted_keys_before_retiring() {
        // Covered end-to-end (promotion → fill → evict → must-miss) in
        // crates/shard/tests/cache.rs; this is the cheap in-module smoke:
        // eviction with an engine attached must not serve stale bytes.
        let map = BlobMap::with_config(
            1,
            HotKeyConfig::eager(8),
            CacheConfig::unbounded().with_budget(4 * 1024),
            |_| FraserOptSkipList::new(),
        );
        map.set(1, &[1u8; 128]);
        for _ in 0..64 {
            assert!(map.get_owned(1).is_some());
        }
        for k in 2..=256u64 {
            map.set(k, &[k as u8; 128]);
        }
        // Whatever happened above, a read of key 1 must answer either the
        // current backing truth or absence — never freed memory. If the
        // key was evicted, the front copy must have died with it.
        match map.get_owned(1) {
            Some(v) => assert_eq!(v, vec![1u8; 128]),
            None => assert!(!map.contains(1)),
        }
    }

    #[test]
    fn ttl_values_are_never_front_cached() {
        let (clock_map, clock) = {
            let clock = Arc::new(FakeClock::new());
            let cfg = CacheConfig::unbounded().with_clock(clock.clone());
            let map = BlobMap::with_config(1, HotKeyConfig::eager(8), cfg, |_| {
                FraserOptSkipList::new()
            });
            (map, clock)
        };
        clock_map.set_ex(7, b"ephemeral", 100);
        for _ in 0..128 {
            assert_eq!(clock_map.get_owned(7).unwrap(), b"ephemeral");
        }
        let stats = clock_map.hotkey_stats().unwrap();
        assert_eq!(stats.front_hits, 0, "TTL'd value leaked into the front cache");
        clock.advance(100);
        assert!(clock_map.get_owned(7).is_none(), "front copy outlived the deadline");
    }
}
